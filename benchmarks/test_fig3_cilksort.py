"""Figure 3 — the CU graph of cilksort() with fork/worker/barrier labels.

Section III-B walks through this graph: CU_0 forks four workers (the
recursive sorts); one merge is a barrier for sorts 1+2, another for sorts
3+4, and those two barriers can run in parallel; the final merge is a
barrier for both and can run in parallel with neither.
"""

import numpy as np
import pytest

from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.graphs.algorithms import has_path
from repro.reporting.dot import cu_graph_dot
from repro.runtime import run_program


@pytest.fixture(scope="module")
def task():
    result = analyze_benchmark("sort")
    region = result.program.function("cilksort").region_id
    return result.tasks[region]


@pytest.fixture(scope="module")
def roles(task):
    """Identify the figure's CUs by their callees and dependences."""
    sorts = [cu for cu in task.cus if cu.callees == ["cilksort"]]
    merges = [cu for cu in task.cus if cu.callees == ["cilkmerge"]]
    assert len(sorts) == 4, "four recursive quarter sorts"
    assert len(merges) == 3, "two half merges + the final merge"
    final = max(merges, key=lambda cu: cu.first_line)
    half_merges = [m for m in merges if m is not final]
    return sorts, half_merges, final


def test_fig3(benchmark, save_artifact, task):
    benchmark(lambda: analyze_benchmark("sort").tasks)
    save_artifact("fig3_cilksort.dot", cu_graph_dot(task, title="Figure 3 (reproduced)"))


class TestFigure3:
    def test_sort_actually_sorts(self):
        spec = get_benchmark("sort")
        rng = np.random.default_rng(5)
        data = rng.random(128)
        result = run_program(spec.program, "cilksort", [data, np.zeros(128), 0, 128])
        assert np.allclose(result.arrays["A"], np.sort(data))

    def test_quarter_computation_forks_the_four_sorts(self, task, roles):
        sorts, _, _ = roles
        # the CU holding the quarter computation (CU_0) feeds all four sorts
        feeders = [
            set(task.graph.predecessors(cu.cu_id)) for cu in sorts
        ]
        common = set.intersection(*feeders)
        assert common, "all four sorts share the forking CU_0"
        cu0 = min(common)
        assert task.marks[cu0] == "fork"

    def test_sorts_are_workers(self, task, roles):
        sorts, _, _ = roles
        for cu in sorts:
            assert task.marks[cu.cu_id] == "worker", cu.describe()

    def test_half_merges_are_barriers_for_two_sorts_each(self, task, roles):
        sorts, half_merges, _ = roles
        sort_ids = {cu.cu_id for cu in sorts}
        for merge in half_merges:
            assert task.marks[merge.cu_id] == "barrier"
            inputs = set(task.graph.predecessors(merge.cu_id)) & sort_ids
            assert len(inputs) == 2, f"{merge.label} waits on two sorts"

    def test_final_merge_is_a_barrier_for_the_half_merges(self, task, roles):
        _, half_merges, final = roles
        assert task.marks[final.cu_id] == "barrier"
        preds = set(task.graph.predecessors(final.cu_id))
        assert {m.cu_id for m in half_merges} <= preds

    def test_half_merges_can_run_in_parallel(self, task, roles):
        _, half_merges, _ = roles
        m1, m2 = (m.cu_id for m in half_merges)
        assert (min(m1, m2), max(m1, m2)) in task.parallel_barriers

    def test_final_merge_cannot_run_with_either(self, task, roles):
        _, half_merges, final = roles
        for m in half_merges:
            pair = (min(m.cu_id, final.cu_id), max(m.cu_id, final.cu_id))
            assert pair not in task.parallel_barriers
            assert has_path(task.graph, m.cu_id, final.cu_id)

    def test_sorts_pairwise_independent(self, task, roles):
        sorts, _, _ = roles
        ids = [cu.cu_id for cu in sorts]
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                assert not has_path(task.graph, a, b)
                assert not has_path(task.graph, b, a)
