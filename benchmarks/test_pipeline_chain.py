"""Section III-A's chain claim, end to end.

"If there is a chain dependence of n loops, it gives n pairs of
relationships.  A pipeline of n stages can be easily implemented by
merging the information provided by the tool."  This bench builds a
three-loop chain, checks the detector reports exactly the pairwise
relationships, reassembles them into a chain, and simulates the 3-stage
schedule.
"""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.patterns.pipeline import pipeline_chains
from repro.reporting.tables import format_table
from repro.sim import Machine, compose_speedup, simulate_pipeline_chain
from repro.sim.planner import loop_invocation_costs

CHAIN_SRC = """\
void chain(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0 + sqrt(i + 1.0);
    }
    for (int j = 1; j < n; j++) {
        B[j] = B[j - 1] * 0.5 + A[j];
    }
    for (int k = 1; k < n; k++) {
        C[k] = C[k - 1] * 0.25 + B[k] + sqrt(B[k] + 1.0);
    }
}
"""

N = 64


@pytest.fixture(scope="module")
def result():
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program

    program = parse_program(CHAIN_SRC)
    validate_program(program)
    return analyze(program, "chain", [[np.zeros(N), np.zeros(N), np.zeros(N), N]])


def test_pipeline_chain(benchmark, save_artifact, result):
    def simulate(p: int) -> float:
        chain = pipeline_chains(result.pipelines)[0]
        stage_costs = [
            loop_invocation_costs(result.profile, region)[0] for region in chain
        ]
        fits = []
        by_pair = {(r.loop_x, r.loop_y): r for r in result.pipelines}
        for x, y in zip(chain, chain[1:]):
            fit = by_pair[(x, y)]
            fits.append((fit.a, fit.b))
        outcome = simulate_pipeline_chain(
            stage_costs, fits, Machine(threads=p),
            streaming=result.profile.streaming_fraction,
        )
        return compose_speedup(float(result.profile.total_cost), [outcome])

    benchmark(lambda: simulate(8))
    rows = [[p, simulate(p)] for p in (1, 2, 4, 8, 16)]
    save_artifact(
        "pipeline_chain.txt",
        format_table(
            ["threads", "speedup"],
            rows,
            title="Three-stage multi-loop pipeline chain (Section III-A)",
        ),
    )


class TestChainClaims:
    def test_n_minus_one_pairwise_reports(self, result):
        # three chained loops -> exactly two pairwise relationships
        assert len(result.pipelines) == 2

    def test_chain_reassembled(self, result):
        chains = pipeline_chains(result.pipelines)
        assert len(chains) == 1
        assert len(chains[0]) == 3

    def test_pairwise_fits_are_one_to_one(self, result):
        for p in result.pipelines:
            assert p.a == pytest.approx(1.0, abs=0.02)

    def test_three_stage_schedule_beats_two(self, result):
        chain = pipeline_chains(result.pipelines)[0]
        stage_costs = [
            loop_invocation_costs(result.profile, region)[0] for region in chain
        ]
        machine = Machine(threads=4)
        three = simulate_pipeline_chain(
            stage_costs, [(1.0, -1.0), (1.0, -1.0)], machine, stage0_parallel=False
        )
        two = simulate_pipeline_chain(
            [stage_costs[0] + stage_costs[1], stage_costs[2]],
            [(1.0, -1.0)],
            machine,
            stage0_parallel=False,
        )
        assert three.speedup > two.speedup
