"""Learned baseline vs rule-based detectors on a held-out adversarial split.

The learned-detection counterpart of the Table III regeneration: train the
stdlib logistic/tree classifiers on the train side of a fixed-seed
adversarial corpus and report per-pattern precision/recall/F1 side by side
with the rule-based registry on the *same* held-out programs, written to
``benchmarks/output/learned_compare.txt``.

Acceptance criteria pinned here:

* the learned logistic model reaches F1 ≥ 0.8 on the held-out ``doall``
  and ``reduction`` dimensions;
* the evaluation document is byte-deterministic for fixed
  ``(corpus, model, seed)``;
* the adversarial templates do their job — the corpus contains negative
  programs for every rotation cycle, so precision cannot saturate by
  construction alone.
"""

import pytest

from repro.corpus import generate_corpus, load_corpus
from repro.corpus.templates import ADVERSARIAL_TEMPLATES, PATTERN_DIMENSIONS
from repro.learn import comparison_table, evaluate_corpus
from repro.profiling.serialize import canonical_json

COUNT = 40
CORPUS_SEED = 7
EVAL_SEED = 7
GATED_DIMENSIONS = ("doall", "reduction")
MIN_F1 = 0.8


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    out = tmp_path_factory.mktemp("learned-compare") / "corpus"
    generate_corpus(COUNT, CORPUS_SEED, out, adversarial=True)
    return load_corpus(out)


@pytest.fixture(scope="module")
def eval_doc(suite):
    return evaluate_corpus(suite, kind="logistic", seed=EVAL_SEED)


def test_learned_compare(benchmark, save_artifact, suite, eval_doc):
    doc = benchmark(lambda: evaluate_corpus(suite, kind="logistic",
                                            seed=EVAL_SEED))
    assert canonical_json(doc) == canonical_json(eval_doc)
    save_artifact("learned_compare.txt", comparison_table(eval_doc))


@pytest.mark.parametrize("dim", GATED_DIMENSIONS)
def test_learned_f1_gate(eval_doc, dim):
    f1 = eval_doc["learned"][dim]["f1"]
    assert f1 is not None and f1 >= MIN_F1


def test_rules_scored_on_the_same_split(eval_doc):
    held = eval_doc["split"]["held_out"]
    for dim in PATTERN_DIMENSIONS:
        for side in ("learned", "rules"):
            cell = eval_doc[side][dim]
            assert cell["tp"] + cell["fp"] + cell["fn"] + cell["tn"] == held


def test_corpus_carries_adversarial_negatives(suite):
    adversarial = {
        t.__name__.removeprefix("t_") for t in ADVERSARIAL_TEMPLATES
    }
    present = {e.template for e in suite.entries}
    assert adversarial <= present
    assert any(
        not any(e.truth.values())
        for e in suite.entries
        if e.template in adversarial
    )
