"""Ablation — detection stability across input *distributions*.

The paper's mitigation for input-sensitive dynamic analysis is profiling
several representative inputs and merging.  This bench stresses that: the
same benchmarks are re-analyzed under uniform / clustered / sorted /
adversarial inputs, and the detected primary pattern must not change —
dependence *structure* is a property of the algorithm, not the data.
What does change (and is reported) is the cost balance, e.g. cilksort's
merge work under pre-sorted input.
"""

import pytest

from repro.bench_programs import get_benchmark
from repro.bench_programs.workloads import arg_sets_for
from repro.patterns.engine import analyze, summarize_patterns
from repro.reporting.tables import format_table

CASES = {
    "sort": ("uniform", "sorted", "reversed", "clustered"),
    "kmeans": ("uniform", "clustered"),
    "gesummv": ("uniform", "clustered", "constant"),
}


@pytest.fixture(scope="module")
def grid():
    out = {}
    for name, distributions in CASES.items():
        spec = get_benchmark(name)
        for dist in distributions:
            (args,) = arg_sets_for(name, (dist,))
            result = analyze(
                spec.program,
                spec.entry,
                [args],
                hotspot_threshold=spec.hotspot_threshold,
            )
            out[(name, dist)] = (summarize_patterns(result), result.profile.total_cost)
    return out


def test_ablation_distributions(benchmark, save_artifact, grid):
    benchmark(
        lambda: analyze(
            get_benchmark("gesummv").program,
            "kernel_gesummv",
            [arg_sets_for("gesummv", ("uniform",))[0]],
        )
    )
    rows = [
        [name, dist, label, cost]
        for (name, dist), (label, cost) in sorted(grid.items())
    ]
    save_artifact(
        "ablation_distributions.txt",
        format_table(
            ["Application", "distribution", "detected pattern", "instructions"],
            rows,
            title="Ablation: input distribution vs detected pattern",
        ),
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_pattern_stable_across_distributions(name, grid):
    labels = {
        label for (n, _), (label, _) in grid.items() if n == name
    }
    assert len(labels) == 1, f"{name}: detection flipped across inputs: {labels}"


def test_labels_match_expected(grid):
    expected = {name: get_benchmark(name).expected_label for name in CASES}
    for (name, _dist), (label, _cost) in grid.items():
        assert label == expected[name]


def test_sorted_input_shifts_sort_cost(grid):
    """Pre-sorted input makes insertion-sort leaves cheap: the cost must
    differ measurably even though the detected pattern does not."""
    uniform_cost = grid[("sort", "uniform")][1]
    sorted_cost = grid[("sort", "sorted")][1]
    assert sorted_cost != uniform_cost
    assert sorted_cost < uniform_cost


def test_merged_multi_distribution_profile_detects_same(grid):
    spec = get_benchmark("sort")
    result = analyze(
        spec.program,
        spec.entry,
        arg_sets_for("sort", ("uniform", "sorted")),
        hotspot_threshold=spec.hotspot_threshold,
    )
    assert summarize_patterns(result) == spec.expected_label
