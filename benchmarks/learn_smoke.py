"""CI smoke for the learned detection baseline.

Three facts, end to end, on a fixed-seed adversarial corpus::

    PYTHONPATH=src python benchmarks/learn_smoke.py

* **byte determinism** — training the same ``(model, seed, corpus)``
  twice produces byte-identical JSON artifacts, and the tree-walking
  engine reproduces the compiled engine's artifact bit for bit;
* **held-out quality gate** — the logistic model must reach F1 ≥ 0.8 on
  the ``doall`` and ``reduction`` dimensions of the held-out split (the
  acceptance bar for the learned-baseline work);
* **comparison render** — the learned-vs-rules table and CSV must render
  with a row per pattern dimension, since the benchmark report embeds
  them.

Exit 0 on success.  Not collected by pytest (no ``test_`` prefix); the
in-process equivalents live in ``tests/test_learn.py`` and
``tests/test_determinism_regression.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

COUNT = 60
SEED = 7
EVAL_SEED = 7
HOLDOUT = 0.3
GATED_DIMENSIONS = ("doall", "reduction")
MIN_F1 = 0.8


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"[learn-smoke] {status}: {what}")
    if not ok:
        sys.exit(1)


def main() -> int:
    from repro.corpus import generate_corpus, load_corpus
    from repro.corpus.templates import PATTERN_DIMENSIONS
    from repro.learn import (
        comparison_csv,
        comparison_table,
        evaluate_corpus,
        train_on_corpus,
    )
    from repro.profiling.cache import ProfileCache

    with tempfile.TemporaryDirectory() as work:
        work = Path(work)
        manifest = generate_corpus(COUNT, SEED, work / "corpus",
                                   adversarial=True)
        suite = load_corpus(work / "corpus")
        cache = ProfileCache(work / "cache")

        # 1. training is a pure function of (corpus, seed) — run to run
        # and across profiling engines
        first = train_on_corpus(suite, kind="logistic", seed=EVAL_SEED,
                                holdout=HOLDOUT, cache=cache).to_json()
        again = train_on_corpus(suite, kind="logistic", seed=EVAL_SEED,
                                holdout=HOLDOUT, cache=cache).to_json()
        check(first == again,
              f"logistic training on {manifest['name']} is byte-deterministic "
              "run to run")
        tree_engine = train_on_corpus(suite, kind="logistic", seed=EVAL_SEED,
                                      holdout=HOLDOUT, engine="tree").to_json()
        check(first == tree_engine,
              "tree-engine profiles reproduce the artifact bit for bit")

        # 2. held-out F1 gate, scored through the corpus machinery
        doc = evaluate_corpus(suite, kind="logistic", seed=EVAL_SEED,
                              holdout=HOLDOUT, cache=cache)
        for dim in GATED_DIMENSIONS:
            f1 = doc["learned"][dim]["f1"]
            check(f1 is not None and f1 >= MIN_F1,
                  f"held-out learned {dim} F1 "
                  f"{'undefined' if f1 is None else f'{f1:.3f}'} >= {MIN_F1} "
                  f"({doc['split']['held_out']} held-out programs)")

        # 3. the learned-vs-rules comparison renders a row per dimension
        table = comparison_table(doc)
        csv_text = comparison_csv(doc)
        for dim in PATTERN_DIMENSIONS:
            check(dim in table and any(line.startswith(dim)
                                       for line in csv_text.splitlines()),
                  f"comparison table and CSV carry a {dim} row")
        for m in doc["learned_mismatches"]:
            print(f"[learn-smoke] note: learned mismatch "
                  f"{m['program']}/{m['dimension']}")
    print("[learn-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
