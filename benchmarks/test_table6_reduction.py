"""Table VI — reduction detection: our dynamic detector vs the icc-like
and Sambamba-like static baselines, on nqueens, kmeans, bicg, gesummv,
sum_local, and sum_module.

Expected grid (paper's Table VI):

    tool      nqueens kmeans bicg gesummv sum_local sum_module
    Sambamba  NA      NA     yes  yes     yes       no
    icc       no      no     no   no      yes       no
    DiscoPoP  yes     yes    yes  yes     yes       yes
"""

import pytest

from repro.baselines import IccLikeDetector, SambambaLikeDetector
from repro.baselines.static_reduction import Verdict
from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.bench_programs.synthetic import (
    SUM_LOCAL_SRC,
    SUM_MODULE_SRC,
    parsed_program,
    sum_local_args,
    sum_module_args,
)
from repro.patterns.engine import analyze
from repro.reporting.tables import format_table

BENCH_NAMES = ("nqueens", "kmeans", "bicg", "gesummv")

PAPER = {
    "sambamba": {
        "nqueens": "NA", "kmeans": "NA", "bicg": "found", "gesummv": "found",
        "sum_local": "found", "sum_module": "missed",
    },
    "icc": {
        "nqueens": "missed", "kmeans": "missed", "bicg": "missed",
        "gesummv": "missed", "sum_local": "found", "sum_module": "missed",
    },
    "discopop": {name: "found" for name in
                 ("nqueens", "kmeans", "bicg", "gesummv", "sum_local", "sum_module")},
}


@pytest.fixture(scope="module")
def programs():
    out = {name: get_benchmark(name).program for name in BENCH_NAMES}
    out["sum_local"] = parsed_program(SUM_LOCAL_SRC)
    out["sum_module"] = parsed_program(SUM_MODULE_SRC)
    return out


@pytest.fixture(scope="module")
def dynamic_results(programs):
    out = {}
    for name in BENCH_NAMES:
        result = analyze_benchmark(name)
        found = any(
            result.loop_classes.get(loop) is not None
            and (result.reductions.get(loop) or result.loop_classes[loop].reductions)
            for loop in result.loop_classes
        ) or bool(result.reductions)
        out[name] = "found" if found else "missed"
    out["sum_local"] = _dynamic_synthetic(programs["sum_local"], "sum_local", sum_local_args())
    out["sum_module"] = _dynamic_synthetic(programs["sum_module"], "sum_module", sum_module_args())
    return out


def _dynamic_synthetic(program, entry, arg_sets):
    result = analyze(program, entry, arg_sets, hotspot_threshold=0.05)
    any_reduction = bool(result.reductions) or any(
        lc.reductions for lc in result.loop_classes.values()
    )
    return "found" if any_reduction else "missed"


@pytest.fixture(scope="module")
def static_results(programs):
    out = {}
    for det in (SambambaLikeDetector(), IccLikeDetector()):
        for name, program in programs.items():
            verdict, _ = det.analyze(program)
            out[(det.name, name)] = verdict.value
    return out


def test_table6(benchmark, save_artifact, programs, dynamic_results, static_results):
    benchmark(lambda: IccLikeDetector().analyze(programs["bicg"]))
    names = list(programs)
    symbol = {"found": "yes", "missed": "X", "NA": "NA"}
    rows = [
        ["Sambamba"] + [symbol[static_results[("sambamba", n)]] for n in names],
        ["icc"] + [symbol[static_results[("icc", n)]] for n in names],
        ["DiscoPoP (ours)"] + [symbol[dynamic_results[n]] for n in names],
    ]
    save_artifact(
        "table6.txt",
        format_table(["Tool"] + names, rows, title="Table VI (reproduced)"),
    )


@pytest.mark.parametrize("name", BENCH_NAMES + ("sum_local", "sum_module"))
def test_dynamic_detects_everything(name, dynamic_results):
    assert dynamic_results[name] == PAPER["discopop"][name]


@pytest.mark.parametrize("name", BENCH_NAMES + ("sum_local", "sum_module"))
def test_icc_row(name, static_results):
    assert static_results[("icc", name)] == PAPER["icc"][name]


@pytest.mark.parametrize("name", BENCH_NAMES + ("sum_local", "sum_module"))
def test_sambamba_row(name, static_results):
    assert static_results[("sambamba", name)] == PAPER["sambamba"][name]


def test_cross_module_is_the_dynamic_advantage(dynamic_results, static_results):
    """The paper's punchline: only the dynamic approach sees sum_module."""
    assert dynamic_results["sum_module"] == "found"
    assert static_results[("icc", "sum_module")] == "missed"
    assert static_results[("sambamba", "sum_module")] == "missed"
