"""Figure 1 — division of code into CUs.

The figure's code reads two state variables, computes through local
temporaries a/b (for x) and c/d (for y), and writes the results back.
DiscoPoP forms exactly two CUs; the temporaries are absorbed, and CU_y's
lines are non-contiguous in the source — both properties are asserted.
"""

from repro.bench_programs.synthetic import FIGURE1_SRC, parsed_program
from repro.cu import detect_cus
from repro.reporting.tables import format_table


def _cus():
    program = parsed_program(FIGURE1_SRC)
    region = program.function("figure1").region_id
    return detect_cus(program, region)


def test_fig1(benchmark, save_artifact):
    cus = benchmark(_cus)
    rows = [
        [cu.label, ",".join(map(str, sorted(cu.lines))),
         ",".join(sorted(cu.reads)), ",".join(sorted(cu.writes))]
        for cu in cus
    ]
    save_artifact(
        "fig1_cus.txt",
        format_table(
            ["CU", "lines", "reads", "writes"],
            rows,
            title="Figure 1 (reproduced): CUs of the example code",
        ),
    )


class TestFigure1:
    def test_exactly_two_cus(self):
        assert len(_cus()) == 2

    def test_cu_x_groups_read_compute_write(self):
        cu_x = _cus()[0]
        # line 2 reads/writes x; lines 4-5 compute via a/b; line 6 writes x
        assert cu_x.lines == {2, 4, 5, 6}
        assert "x" in cu_x.writes

    def test_cu_y_lines_non_contiguous(self):
        cu_y = _cus()[1]
        assert cu_y.lines == {3, 7, 8, 9}
        lines = sorted(cu_y.lines)
        assert lines[1] - lines[0] > 1  # "code lines that are not contiguous"

    def test_temporaries_do_not_form_cus(self):
        for cu in _cus():
            state_writes = cu.writes & {"x", "y"}
            assert state_writes, "every CU anchors on program state"
