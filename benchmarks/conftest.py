"""Shared fixtures for the benchmark harness.

Every ``test_table*``/``test_fig*`` module regenerates one table or figure
of the paper: it benchmarks the computation that produces it, asserts the
acceptance criteria from DESIGN.md §6, and writes the reproduced artifact
to ``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(output_dir):
    def _save(name: str, text: str) -> None:
        (output_dir / name).write_text(text)
        print(f"\n{text}")

    return _save
