"""Validation bench — empirical confirmation of do-all classifications.

The paper validates detections by comparing against existing parallel
versions or hand-parallelizing.  Our mechanical analogue: for every
hotspot loop the detector classified do-all across the whole registry,
re-execute the benchmark with that loop's iterations reversed and
interleaved and require bit-compatible observable outputs.  Reduction
loops are validated up to floating-point reassociation (shuffled
accumulation order must agree within tolerance).
"""

import pytest

from repro.bench_programs import all_benchmarks, analyze_benchmark, get_benchmark
from repro.lang.ast_nodes import For
from repro.reporting.tables import format_table
from repro.runtime import run_program
from repro.runtime.replay import (
    ReplayError,
    results_equal,
    run_with_loop_order,
)

NAMES = [spec.name for spec in all_benchmarks()]


def _replayable_loops(result, want):
    out = []
    for region, lc in result.loop_classes.items():
        if want == "doall" and not lc.is_doall:
            continue
        if want == "reduction" and not lc.is_reduction:
            continue
        reg = result.program.regions.get(region)
        if reg is None or not isinstance(reg.node, For):
            continue
        out.append(region)
    return sorted(out)


@pytest.fixture(scope="module")
def validation():
    grid = {}
    for name in NAMES:
        spec = get_benchmark(name)
        result = analyze_benchmark(name)
        args = spec.arg_sets()[0]
        serial = run_program(spec.program, spec.entry, args)
        checked = failed = skipped = 0
        for region in _replayable_loops(result, "doall"):
            for order in ("reverse", "interleave"):
                try:
                    permuted = run_with_loop_order(
                        spec.program, spec.entry, args, region, order=order
                    )
                except ReplayError:
                    skipped += 1
                    continue
                checked += 1
                if not results_equal(serial, permuted, atol=1e-7):
                    failed += 1
        grid[name] = (checked, failed, skipped)
    return grid


def test_validation_replay(benchmark, save_artifact, validation):
    benchmark(lambda: analyze_benchmark("mvt").loop_classes)
    rows = [[name, c, f, s] for name, (c, f, s) in validation.items()]
    total = [sum(x) for x in zip(*[(c, f, s) for c, f, s in validation.values()])]
    rows.append(["TOTAL", *total])
    save_artifact(
        "validation_replay.txt",
        format_table(
            ["Application", "reorderings checked", "failures", "skipped"],
            rows,
            title="Empirical do-all validation via reordered execution",
        ),
    )


def test_no_doall_misclassifications(validation):
    for name, (_checked, failed, _skipped) in validation.items():
        assert failed == 0, f"{name}: do-all loop changed results under reordering"


def test_meaningful_coverage(validation):
    total_checked = sum(c for c, _, _ in validation.values())
    assert total_checked >= 30, "too few do-all loops were validated"


@pytest.mark.parametrize("name", ["fib", "mvt", "3mm", "strassen"])
def test_concurrent_tasks_commute(name):
    """Swapping any two detected concurrent tasks must not change the
    program's observable outputs — the task-parallelism analogue of the
    do-all replay check."""
    from repro.transform.reorder import validate_concurrent_tasks

    spec = get_benchmark(name)
    result = analyze_benchmark(name)
    task = result.best_task_parallelism()
    assert task is not None, name
    checked, failed = validate_concurrent_tasks(
        spec.program, spec.entry, spec.arg_sets()[0], task, atol=1e-7
    )
    assert checked >= 1, f"{name}: no swappable task pair"
    assert failed == 0, f"{name}: swapped tasks changed the result"


def test_reduction_loops_reorder_within_tolerance():
    """Shuffled accumulation must agree up to fp reassociation."""
    spec = get_benchmark("gesummv")
    result = analyze_benchmark("gesummv")
    args = spec.arg_sets()[0]
    serial = run_program(spec.program, spec.entry, args)
    regions = _replayable_loops(result, "reduction")
    assert regions
    for region in regions:
        permuted = run_with_loop_order(
            spec.program, spec.entry, args, region, order="shuffle", seed=11
        )
        assert results_equal(serial, permuted, atol=1e-6)
