"""Table V — task-parallelism detection: total vs critical-path
instructions and the estimated speedup for the six task benchmarks.

Instruction counts come from our cost model, so absolute values differ from
the paper; what must hold is the ratio structure: every estimate > 1.3 (a
real opportunity), the non-recursive kernels near the paper's ratios, and
fib's *single-step* estimate far below its simulated achievable speedup —
the paper's own caveat about not unrolling recursion.
"""

import pytest

from repro.bench_programs import analyze_benchmark
from repro.reporting.tables import format_table
from repro.sim import plan_and_simulate

PAPER_TABLE5 = {
    "fib": 3.25,
    "sort": 2.11,
    "strassen": 3.5,
    "3mm": 1.5,
    "mvt": 1.96,
    "fdtd-2d": 2.17,
}


@pytest.fixture(scope="module")
def tasks():
    out = {}
    for name in PAPER_TABLE5:
        result = analyze_benchmark(name)
        tp = result.best_task_parallelism()
        if tp is None:  # reduction-labelled programs still have task data
            tp = max(result.tasks.values(), key=lambda t: t.estimated_speedup)
        out[name] = tp
    return out


def test_table5(benchmark, save_artifact, tasks):
    benchmark(lambda: analyze_benchmark("mvt").best_task_parallelism())
    rows = []
    for name, tp in tasks.items():
        rows.append(
            [
                name,
                tp.total_instructions,
                tp.critical_path_instructions,
                tp.estimated_speedup,
                tp.single_step_speedup,
                PAPER_TABLE5[name],
            ]
        )
    save_artifact(
        "table5.txt",
        format_table(
            [
                "Application",
                "Total Instr",
                "Critical Path",
                "Est. Speedup",
                "Single-step",
                "Paper Est.",
            ],
            rows,
            title="Table V (reproduced; instruction counts from our cost model)",
        ),
    )


@pytest.mark.parametrize("name", sorted(PAPER_TABLE5))
def test_every_estimate_signals_real_parallelism(name, tasks):
    assert tasks[name].estimated_speedup > 1.3


class TestNonRecursiveRatios:
    """3mm/mvt/fdtd-2d estimates should sit close to the paper's."""

    def test_3mm(self, tasks):
        assert tasks["3mm"].estimated_speedup == pytest.approx(1.5, abs=0.35)

    def test_mvt(self, tasks):
        assert tasks["mvt"].estimated_speedup == pytest.approx(1.96, abs=0.4)

    def test_fdtd(self, tasks):
        assert tasks["fdtd-2d"].estimated_speedup == pytest.approx(2.17, abs=0.8)


class TestRecursiveCaveat:
    """Section IV-B: the one-recursive-step estimate underestimates fib."""

    def test_fib_single_step_underestimates(self, tasks):
        result = analyze_benchmark("fib")
        achievable = plan_and_simulate(result).best_speedup
        assert tasks["fib"].single_step_speedup < achievable / 2

    def test_fib_work_span_exceeds_single_step(self, tasks):
        tp = tasks["fib"]
        assert tp.estimated_speedup > tp.single_step_speedup

    def test_critical_path_below_total(self, tasks):
        for name, tp in tasks.items():
            assert 0 < tp.critical_path_instructions <= tp.total_instructions, name
