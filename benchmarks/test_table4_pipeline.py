"""Table IV — multi-loop pipeline coefficients for ludcmp, reg_detect, and
fluidanimate.

Acceptance (DESIGN.md §6): ludcmp exactly a=1, b=0, e=1; reg_detect a=1,
b=-1, e≈0.99; fluidanimate a≈1/20, b<0, e≥0.9.
"""

import pytest

from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.reporting.tables import format_table

PAPER_TABLE4 = {
    "ludcmp": (1.0, 0.0, 1.0),
    "reg_detect": (1.0, -1.0, 0.99),
    "fluidanimate": (0.05, -3.50, 0.97),
}


@pytest.fixture(scope="module")
def pipelines():
    out = {}
    for name in PAPER_TABLE4:
        result = analyze_benchmark(name)
        assert result.pipelines, f"no pipeline found in {name}"
        out[name] = result.clean_pipelines()[0]
    return out


def test_table4(benchmark, save_artifact, pipelines):
    benchmark(lambda: analyze_benchmark("reg_detect").pipelines)
    rows = []
    for name, p in pipelines.items():
        pa, pb, pe = PAPER_TABLE4[name]
        rows.append([name, p.a, p.b, p.efficiency, f"{pa}/{pb}/{pe}"])
    save_artifact(
        "table4.txt",
        format_table(
            ["Application", "a", "b", "e", "Paper a/b/e"],
            rows,
            title="Table IV (reproduced)",
        ),
    )


class TestLudcmp:
    def test_perfect_pipeline(self, pipelines):
        p = pipelines["ludcmp"]
        assert p.a == pytest.approx(1.0)
        assert p.b == pytest.approx(0.0)
        assert p.efficiency == pytest.approx(1.0, abs=0.03)
        assert p.is_perfect

    def test_stage_structure(self, pipelines):
        p = pipelines["ludcmp"]
        assert p.stage_x.is_doall          # first loop is do-all
        assert not p.stage_y.parallelizable  # second has inter-iteration deps


class TestRegDetect:
    def test_coefficients(self, pipelines):
        p = pipelines["reg_detect"]
        assert p.a == pytest.approx(1.0, abs=0.02)
        assert p.b == pytest.approx(-1.0, abs=0.1)

    def test_efficiency_slightly_below_one(self, pipelines):
        # "The value of e was slightly affected by the value of b" (IV-A)
        p = pipelines["reg_detect"]
        assert 0.90 <= p.efficiency < 1.0

    def test_stage_structure(self, pipelines):
        p = pipelines["reg_detect"]
        assert p.stage_x.is_doall
        assert not p.stage_y.parallelizable


class TestFluidanimate:
    def test_a_is_one_over_nbr(self, pipelines):
        # one iteration of loop y depends on ~20 iterations of loop x
        p = pipelines["fluidanimate"]
        assert 1 / p.a == pytest.approx(20.0, rel=0.15)

    def test_b_negative(self, pipelines):
        assert pipelines["fluidanimate"].b < 0

    def test_efficiency_high(self, pipelines):
        assert pipelines["fluidanimate"].efficiency >= 0.90

    def test_neither_loop_doall(self, pipelines):
        p = pipelines["fluidanimate"]
        assert not p.stage_x.is_doall
        assert not p.stage_y.is_doall
