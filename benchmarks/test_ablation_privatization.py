"""Ablation — how much of the detection depends on privatization analysis.

DiscoPoP treats variables that are written before read in every iteration
as privatizable (DESIGN.md §5.4).  Without that analysis, every loop-local
temporary's WAR/WAW blocks do-all classification; this bench measures the
collapse in do-all (and hence fusion/GD) detection across the registry.
"""

import pytest

from repro.bench_programs import all_benchmarks, analyze_benchmark
from repro.patterns.doall import classify_loop
from repro.reporting.tables import format_table

NAMES = [spec.name for spec in all_benchmarks()]


def _doall_counts(name: str) -> tuple[int, int]:
    result = analyze_benchmark(name)
    with_priv = without_priv = 0
    for loop in result.profile.loop_trips:
        if classify_loop(result.program, result.profile, loop).is_doall:
            with_priv += 1
        if classify_loop(
            result.program, result.profile, loop, use_privatization=False
        ).is_doall:
            without_priv += 1
    return with_priv, without_priv


@pytest.fixture(scope="module")
def counts():
    return {name: _doall_counts(name) for name in NAMES}


def test_ablation_privatization(benchmark, save_artifact, counts):
    benchmark(lambda: _doall_counts("2mm"))
    rows = [[name, w, wo] for name, (w, wo) in counts.items()]
    total_with = sum(w for w, _ in counts.values())
    total_without = sum(wo for _, wo in counts.values())
    rows.append(["TOTAL", total_with, total_without])
    save_artifact(
        "ablation_privatization.txt",
        format_table(
            ["Application", "do-all loops (with priv.)", "do-all loops (without)"],
            rows,
            title="Ablation: privatization analysis vs do-all detection rate",
        ),
    )


class TestPrivatizationMatters:
    def test_detection_rate_collapses_without_it(self, counts):
        total_with = sum(w for w, _ in counts.values())
        total_without = sum(wo for _, wo in counts.values())
        assert total_without < total_with / 2

    def test_fusion_benchmarks_lose_their_doall_stages(self, counts):
        # correlation's stages hold accumulators in privatizable scalars
        with_priv, without_priv = counts["correlation"]
        assert with_priv >= 2
        assert without_priv < with_priv

    def test_never_creates_false_doall(self, counts):
        for name, (w, wo) in counts.items():
            assert wo <= w, f"{name}: removing privatization added do-all loops"
