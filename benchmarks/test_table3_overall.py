"""Table III — overall pattern detection results for all 17 applications.

For every benchmark: the detected pattern label must equal the expected one
(all 17 match the paper's column, except fdtd-2d where we additionally
report "+ Do-all"; see EXPERIMENTS.md), and the simulated best speedup must
fall within a factor 3 band of the paper's measured speedup with the
peak-thread ordering preserved.
"""

import pytest

from repro.bench_programs import all_benchmarks, analyze_benchmark
from repro.patterns import summarize_patterns
from repro.patterns.engine import primary_pattern_share
from repro.reporting.tables import format_table
from repro.sim import plan_and_simulate

SPECS = {spec.name: spec for spec in all_benchmarks()}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, spec in SPECS.items():
        result = analyze_benchmark(name)
        out[name] = (result, summarize_patterns(result), plan_and_simulate(result))
    return out


def test_table3(benchmark, save_artifact, results):
    # the benchmarkable unit: one full thread sweep over a cached analysis
    benchmark(lambda: plan_and_simulate(analyze_benchmark("mvt")))
    rows = []
    for name, spec in SPECS.items():
        result, label, outcome = results[name]
        rows.append(
            [
                name,
                spec.suite,
                spec.loc,
                100 * primary_pattern_share(result),
                outcome.best_speedup,
                outcome.best_threads,
                label,
                f"{spec.paper.speedup}x@{spec.paper.threads}",
            ]
        )
    save_artifact(
        "table3.txt",
        format_table(
            [
                "Application",
                "Suite",
                "LOC",
                "Hotspot %",
                "Speedup",
                "Threads",
                "Detected Pattern",
                "Paper",
            ],
            rows,
            title="Table III (reproduced; speedups simulated, see DESIGN.md §2)",
        ),
    )


@pytest.mark.parametrize("name", sorted(SPECS))
def test_detected_pattern_matches(name, results):
    _, label, _ = results[name]
    assert label == SPECS[name].expected_label


@pytest.mark.parametrize("name", sorted(SPECS))
def test_speedup_band(name, results):
    _, _, outcome = results[name]
    paper = SPECS[name].paper.speedup
    assert outcome.best_speedup >= max(1.15, paper / 3), (
        f"{name}: simulated {outcome.best_speedup:.2f} below band of paper {paper}"
    )
    assert outcome.best_speedup <= paper * 3, (
        f"{name}: simulated {outcome.best_speedup:.2f} above band of paper {paper}"
    )


class TestPeakThreadOrdering:
    """The qualitative saturation structure of Table III."""

    def test_fluidanimate_saturates_early(self, results):
        _, _, outcome = results["fluidanimate"]
        assert outcome.best_threads <= 4

    def test_fine_grained_kernels_peak_below_max(self, results):
        for name in ("gesummv", "kmeans"):
            _, _, outcome = results[name]
            assert outcome.best_threads <= 16, name

    def test_bicg_declines_past_its_peak(self, results):
        _, _, outcome = results["bicg"]
        sweep = dict(outcome.sweep.as_rows())
        assert sweep[32] < outcome.best_speedup

    def test_scalable_kernels_reach_high_thread_counts(self, results):
        for name in ("fib", "2mm", "correlation", "mvt", "3mm", "nqueens"):
            _, _, outcome = results[name]
            assert outcome.best_threads >= 16, name

    def test_pipelines_stay_modest(self, results):
        for name in ("reg_detect", "fluidanimate"):
            _, _, outcome = results[name]
            assert outcome.best_speedup < 4.0, name

    def test_big_kernels_beat_small_ones(self, results):
        big = min(results[n][2].best_speedup for n in ("2mm", "rot-cc", "correlation"))
        small = max(results[n][2].best_speedup for n in ("reg_detect", "fluidanimate"))
        assert big > 2 * small
