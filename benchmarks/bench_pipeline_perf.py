"""End-to-end pipeline performance harness.

Measures wall-clock for every stage of the analysis pipeline — interpret,
profile, detect, simulate — across the full benchmark registry, plus three
end-to-end registry sweeps:

* ``cold_serial``   — fresh in-process analysis of all programs,
* ``warm_cache``    — the same sweep against a pre-populated profile cache
                      (zero re-interpretation; the two-phase CLI workflow),
* ``parallel``      — the sweep through ``repro.runtime.parallel``,

plus a **service-mode** comparison: N sequential submissions against a
warm ``repro serve`` daemon (one process, one cache, one registry load)
versus N cold CLI invocations of the same analysis (each re-paying
interpreter startup and import cost) — the daemon-vs-one-shot gap the
analysis service exists to close — a **service_scale** section racing
the thread and process execution backends under an 8-way burst of
distinct analyses (the GIL-escape case) — an **obs_overhead** section
pricing the
observability layer itself: best-of-3 warm-cache sweeps with metrics
live versus :func:`repro.obs.metrics.set_enabled` off, against a <5%
budget (negative measurements are clamped to zero and reported as the
``noise_floor_pct`` instead) — and an **engine_compare** section timing
the full profiling sweep through the compiled closure engine against the
tree-walking reference and asserting their profile digests agree — and a
**campaign_overhead** section pricing the experiment-campaign harness:
the harness's warm sweep — a digest-keyed rerun of a completed
default-grid campaign, which performs zero service calls — against the
same warm sweep through ``analyze_registry`` directly, with a <10%
overhead budget, plus the unbudgeted one-time cost of populating the
store through the daemon (``service_pass_overhead_pct``).

Results go to ``benchmarks/output/BENCH_pipeline.json`` together with the
recorded pre-PR baseline, so the speedup is measured against a fixed
reference and future changes have a perf trajectory to regress against.

Run with::

    PYTHONPATH=src python benchmarks/bench_pipeline_perf.py

Not collected by pytest (tier-1 stays fast); the quick equivalent is
``python -m repro bench --smoke``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import os
import sys
import tempfile
import time

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_pipeline.json"

#: End-to-end serial registry analysis measured on this container at the
#: seed commit (19f902d), before the fast-path/cache/parallel work: the
#: mean of three runs of the same sweep `cold_serial` measures below.
BASELINE = {
    "seconds": 8.981,
    "commit": "19f902d",
    "note": "pre-PR serial registry analysis (per-event sink dispatch, no cache)",
}


def _git_commit() -> str:
    """Short hash of the measured tree, so the perf trajectory is anchored."""
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


_SERVICE_SRC = """\
void kernel(float A[][], float x[], float y[], int n) {
    for (int i = 0; i < n; i++) {
        y[i] = 0.0;
        for (int j = 0; j < n; j++) {
            y[i] = y[i] + A[i][j] * x[j];
        }
    }
}
"""

_SERVICE_ARGS = [["rand", "A:24,24"], ["rand", "x:24"], ["rand", "y:24"], ["scalar", "24"]]


def _service_mode(n: int = 8) -> dict:
    """N submits against a warm daemon vs N cold one-shot CLI runs.

    Submissions are sequential (submit, wait, repeat): a concurrent burst
    of identical submissions would coalesce into one execution and the
    measurement would stop pricing the daemon round-trip.
    """
    import subprocess

    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        service = AnalysisService(
            port=0, workers=min(4, os.cpu_count() or 1), cache_dir=f"{tmp}/cache"
        )
        service.start_background()
        try:
            client = ServiceClient(service.url)
            client.wait_healthy(timeout=10.0)
            # one throwaway submission warms the daemon's profile cache
            warmup = client.submit_source(_SERVICE_SRC, "kernel", _SERVICE_ARGS)
            client.wait(warmup["id"], timeout=120.0)

            t0 = time.perf_counter()
            for _ in range(n):
                job = client.submit_source(_SERVICE_SRC, "kernel", _SERVICE_ARGS)
                assert client.wait(job["id"], timeout=120.0)["state"] == "done"
            daemon_s = time.perf_counter() - t0
        finally:
            service.shutdown()

        source_path = pathlib.Path(tmp) / "kernel.minic"
        source_path.write_text(_SERVICE_SRC)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(__file__).parent.parent / "src")
        cmd = [
            sys.executable, "-m", "repro", "detect", str(source_path),
            "--entry", "kernel", "--rand", "A:24,24", "--rand", "x:24",
            "--rand", "y:24", "--scalar", "24", "--json", "--compact",
            "--cache-dir", f"{tmp}/cli-cache",
        ]
        t0 = time.perf_counter()
        for _ in range(n):
            subprocess.run(cmd, env=env, capture_output=True, check=True)
        cli_s = time.perf_counter() - t0

    return {
        "n": n,
        "daemon_warm_s": round(daemon_s, 4),
        "cold_cli_s": round(cli_s, 4),
        "speedup": round(cli_s / daemon_s, 3),
    }


def _service_scale(n: int = 8) -> dict:
    """Thread vs process backend under an 8-way burst of *distinct* jobs.

    Distinct seeds defeat both the profile cache and coalescing, so every
    job pays a full analysis: the thread backend serializes on the GIL
    while the process backend spreads across cores.  This is the
    throughput case the process backend exists for (alongside restoring
    SIGALRM timeouts for source/bench jobs).
    """
    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    workers = min(4, os.cpu_count() or 1)
    timings = {}
    for backend in ("thread", "process"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
            service = AnalysisService(
                port=0, workers=workers, cache_dir=f"{tmp}/cache", backend=backend
            )
            service.start_background()
            try:
                client = ServiceClient(service.url)
                client.wait_healthy(timeout=10.0)
                # a warmup job absorbs one-time pool spin-up / import cost
                warmup = client.submit_source(
                    _SERVICE_SRC, "kernel", _SERVICE_ARGS, seed=10_000
                )
                assert client.wait(warmup["id"], timeout=120.0)["state"] == "done"

                t0 = time.perf_counter()
                jobs = [
                    client.submit_source(_SERVICE_SRC, "kernel", _SERVICE_ARGS, seed=seed)
                    for seed in range(n)
                ]
                for job in jobs:
                    assert client.wait(job["id"], timeout=120.0)["state"] == "done"
                timings[backend] = time.perf_counter() - t0
            finally:
                service.shutdown()

    return {
        "n": n,
        "workers": workers,
        "thread_s": round(timings["thread"], 4),
        "process_s": round(timings["process"], 4),
        "process_speedup": round(timings["thread"] / timings["process"], 3),
    }


def _campaign_overhead() -> dict:
    """The campaign harness's warm sweep vs a direct warm sweep.

    The campaign runner's warm path is the digest-keyed store: an
    identical rerun of a completed campaign re-emits every stored result
    without touching the service — zero submissions, zero profile runs
    (both asserted).  That rerun is what repeated sweeps actually cost
    once the harness is in place, and it carries the <10% budget against
    a direct warm ``analyze_registry`` sweep (in practice it is ~1000x
    *cheaper* — milliseconds of sqlite reads vs re-running detection).

    The first pass — the one that populates the store through the daemon
    — is reported alongside as ``service_pass_overhead_pct``: the real
    price of HTTP round-trips, job bookkeeping, and sqlite writes over
    the same warm profile cache (best-of-3 on both sides; unbudgeted,
    since on a 1-cpu container it is dominated by the daemon's fixed
    per-job cost, and it is paid once per new cell, not per sweep).
    """
    from repro.campaign import CampaignStore, default_grid, run_campaign
    from repro.runtime.parallel import analyze_registry
    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    budget_pct = 10.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        cache_dir = f"{tmp}/cache"
        analyze_registry(parallel=False, cache_dir=cache_dir)  # populate
        direct_s = []
        for _ in range(3):
            t0 = time.perf_counter()
            analyze_registry(parallel=False, cache_dir=cache_dir)
            direct_s.append(time.perf_counter() - t0)

        service = AnalysisService(port=0, workers=2, cache_dir=cache_dir)
        service.start_background()
        try:
            client = ServiceClient(service.url)
            client.wait_healthy(timeout=10.0)
            cells = default_grid()
            first_s = []
            for attempt in range(3):
                # a fresh store per attempt: digests in an existing store
                # would short-circuit the service pass being measured
                with CampaignStore(f"{tmp}/campaigns-{attempt}.sqlite") as store:
                    t0 = time.perf_counter()
                    first = run_campaign(store, client, "bench", cells, poll=0.01)
                    first_s.append(time.perf_counter() - t0)
                    assert first["submitted"] == len(cells), first

                    if attempt == 2:  # rerun against the last populated store
                        misses = service.executor.cache.stats.misses
                        t0 = time.perf_counter()
                        rerun = run_campaign(store, client, "bench", cells)
                        rerun_s = time.perf_counter() - t0
                        assert rerun["submitted"] == 0, rerun
                        assert service.executor.cache.stats.misses == misses
        finally:
            service.shutdown()

    direct_best, first_best = min(direct_s), min(first_s)
    overhead_pct = 100.0 * (rerun_s - direct_best) / direct_best
    return {
        "cells": len(cells),
        "direct_warm_s": round(direct_best, 4),
        "campaign_service_s": round(first_best, 4),
        "campaign_warm_s": round(rerun_s, 4),
        "service_pass_overhead_pct": round(
            100.0 * (first_best - direct_best) / direct_best, 2
        ),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": budget_pct,
        "within_budget": overhead_pct < budget_pct,
    }


def _stage_times() -> tuple[dict, dict]:
    """Per-stage and per-program wall clock over the whole registry.

    ``interpret`` is the bare (sink-less) run of the default compiled
    engine — the execution floor under the ``profile`` stage, which runs
    the same engine with the batched profiler attached.
    """
    from repro.bench_programs.registry import all_benchmarks
    from repro.patterns.engine import analyze_profile
    from repro.profiling.runner import profile_runs
    from repro.runtime.compile import CompiledEngine
    from repro.sim import plan_and_simulate

    stages = {"interpret": 0.0, "profile": 0.0, "detect": 0.0, "simulate": 0.0}
    programs = {}
    for spec in all_benchmarks():
        program = spec.program
        arg_sets = spec.arg_sets()

        t0 = time.perf_counter()
        for args in arg_sets:
            CompiledEngine(program, sink=None).run(spec.entry, args)
        t_interp = time.perf_counter() - t0

        t0 = time.perf_counter()
        profile = profile_runs(program, spec.entry, arg_sets)
        t_profile = time.perf_counter() - t0

        t0 = time.perf_counter()
        result = analyze_profile(
            program, profile,
            hotspot_threshold=spec.hotspot_threshold, min_pairs=spec.min_pairs,
        )
        t_detect = time.perf_counter() - t0

        t0 = time.perf_counter()
        plan_and_simulate(result)
        t_sim = time.perf_counter() - t0

        stages["interpret"] += t_interp
        stages["profile"] += t_profile
        stages["detect"] += t_detect
        stages["simulate"] += t_sim
        programs[spec.name] = {
            "interpret": round(t_interp, 4),
            "profile": round(t_profile, 4),
            "detect": round(t_detect, 4),
            "simulate": round(t_sim, 4),
        }
    return {k: round(v, 4) for k, v in stages.items()}, programs


def _engine_compare() -> dict:
    """Full-registry profiling sweep through each engine, plus the digest
    parity check the two-engine design is contracted to (byte-identical
    canonical profiles whichever engine executes the program)."""
    from repro.bench_programs.registry import all_benchmarks
    from repro.profiling.runner import profile_runs
    from repro.profiling.serialize import profile_digest

    specs = all_benchmarks()
    sweeps = {}
    digests: dict[str, dict[str, str]] = {}
    for engine in ("compiled", "tree"):
        t0 = time.perf_counter()
        digests[engine] = {
            spec.name: profile_digest(
                profile_runs(spec.program, spec.entry, spec.arg_sets(), engine=engine)
            )
            for spec in specs
        }
        sweeps[engine] = time.perf_counter() - t0
    return {
        "compiled_sweep_s": round(sweeps["compiled"], 4),
        "tree_sweep_s": round(sweeps["tree"], 4),
        "speedup": round(sweeps["tree"] / sweeps["compiled"], 3),
        "programs": len(specs),
        "digests_identical": digests["compiled"] == digests["tree"],
    }


def _learned_compare() -> dict:
    """Price the learned-baseline pipeline and record its held-out quality:
    corpus generation, feature extraction + training, and the
    learned-vs-rules evaluation on a fixed-seed adversarial corpus.  The
    F1 numbers double as a drift canary next to the CI gate in
    ``benchmarks/learn_smoke.py`` (which enforces >= 0.8)."""
    from repro.corpus import generate_corpus, load_corpus
    from repro.learn import evaluate_corpus, train_on_corpus

    with tempfile.TemporaryDirectory(prefix="repro-bench-learn-") as work:
        t0 = time.perf_counter()
        generate_corpus(40, 7, pathlib.Path(work) / "corpus", adversarial=True)
        suite = load_corpus(pathlib.Path(work) / "corpus")
        generate_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        model = train_on_corpus(suite, kind="logistic", seed=7, holdout=0.3)
        train_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        doc = evaluate_corpus(suite, kind="logistic", seed=7)
        eval_s = time.perf_counter() - t0

    return {
        "corpus": doc["corpus"],
        "programs": len(suite.entries),
        "held_out": doc["split"]["held_out"],
        "generate_s": round(generate_s, 4),
        "train_s": round(train_s, 4),
        "eval_s": round(eval_s, 4),
        "model_digest": model.model_digest,
        "learned_f1": {
            dim: doc["learned"][dim]["f1"] for dim in sorted(doc["learned"])
        },
        "rules_f1": {
            dim: doc["rules"][dim]["f1"] for dim in sorted(doc["rules"])
        },
    }


def _obs_overhead(repeats: int = 3) -> dict:
    """Price the observability layer itself: best-of-N warm-cache registry
    sweeps with instrumentation live versus :func:`set_enabled(False)`.

    The warm sweep is the instrumentation-dense path (every program takes a
    cache read span + counters + histograms but no interpretation), so it
    bounds the overhead of the whole layer.  Budget: <5%.
    """
    from repro.obs.metrics import set_enabled
    from repro.runtime.parallel import analyze_registry

    def best_of(cache_dir: str) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            analyze_registry(parallel=False, cache_dir=cache_dir)
            best = min(best, time.perf_counter() - t0)
        return best

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as cache_dir:
        analyze_registry(parallel=False, cache_dir=cache_dir)  # populate
        enabled_s = best_of(cache_dir)
        set_enabled(False)
        try:
            disabled_s = best_of(cache_dir)
        finally:
            set_enabled(True)

    raw = (enabled_s - disabled_s) / disabled_s if disabled_s else 0.0
    # A negative measurement just means the overhead is below run-to-run
    # noise: report it clamped to zero, and record the magnitude of the
    # negative swing as the measurement's noise floor so a "0.00%" result
    # reads as "below ~X% resolution", not as a vacuous pass.
    overhead = max(0.0, raw)
    return {
        "repeats": repeats,
        "enabled_s": round(enabled_s, 4),
        "disabled_s": round(disabled_s, 4),
        "overhead_pct": round(overhead * 100, 2),
        "raw_overhead_pct": round(raw * 100, 2),
        "noise_floor_pct": round(max(0.0, -raw) * 100, 2),
        "budget_pct": 5.0,
        "within_budget": overhead < 0.05,
    }


def _end_to_end() -> dict:
    from repro.runtime.parallel import analyze_registry

    t0 = time.perf_counter()
    cold = analyze_registry(parallel=False)
    cold_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        analyze_registry(parallel=False, cache_dir=cache_dir)  # populate
        t0 = time.perf_counter()
        warm = analyze_registry(parallel=False, cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = analyze_registry(parallel=True)
    par_s = time.perf_counter() - t0

    assert cold == warm == par, "end-to-end paths disagree on analysis results"
    return {
        "cold_serial": round(cold_s, 4),
        "warm_cache": round(warm_s, 4),
        "parallel": round(par_s, 4),
        "programs": len(cold),
    }


def main() -> int:
    # The end-to-end sweeps are the headline numbers: measure them first,
    # on a fresh process, before the auxiliary measurements (per-stage
    # breakdown, engine comparison, service mode) fill the heap and skew
    # the wall clock.
    e2e = _end_to_end()
    stages, programs = _stage_times()
    engines = _engine_compare()
    obs = _obs_overhead()
    campaign = _campaign_overhead()
    learned = _learned_compare()
    report = {
        "baseline": BASELINE,
        "commit": _git_commit(),
        "service_mode": _service_mode(),
        "service_scale": _service_scale(),
        "campaign_overhead": campaign,
        "obs_overhead": obs,
        "engine_compare": engines,
        "learned_compare": learned,
        "optimized": e2e,
        "speedup_vs_baseline": {
            "cold_serial": round(BASELINE["seconds"] / e2e["cold_serial"], 3),
            "warm_cache": round(BASELINE["seconds"] / e2e["warm_cache"], 3),
            "parallel": round(BASELINE["seconds"] / e2e["parallel"], 3),
        },
        "stages": stages,
        "per_program": programs,
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    best = max(report["speedup_vs_baseline"].values())
    print(f"\nbest end-to-end speedup vs baseline: {best:.2f}x -> {OUTPUT}")
    print(
        f"engine compare: compiled profiling sweep {engines['compiled_sweep_s']:.2f}s "
        f"vs tree {engines['tree_sweep_s']:.2f}s "
        f"({engines['speedup']:.2f}x, digests identical: {engines['digests_identical']})"
    )
    print(
        f"observability overhead on the warm sweep: {obs['overhead_pct']:.2f}% "
        f"(budget {obs['budget_pct']:.0f}%, noise floor {obs['noise_floor_pct']:.2f}%)"
    )
    scale = report["service_scale"]
    print(
        f"service scale ({scale['n']} distinct jobs, {scale['workers']} workers): "
        f"thread {scale['thread_s']:.2f}s vs process {scale['process_s']:.2f}s "
        f"({scale['process_speedup']:.2f}x)"
    )
    print(
        f"campaign overhead ({campaign['cells']} cells): digest-keyed warm "
        f"sweep {campaign['campaign_warm_s']*1000:.1f}ms vs direct "
        f"{campaign['direct_warm_s']:.2f}s ({campaign['overhead_pct']:+.1f}%, "
        f"budget {campaign['budget_pct']:.0f}%); one-time service pass "
        f"{campaign['campaign_service_s']:.2f}s "
        f"({campaign['service_pass_overhead_pct']:+.1f}%)"
    )
    print(
        f"learned compare ({learned['programs']} programs, "
        f"{learned['held_out']} held out): train {learned['train_s']:.2f}s, "
        f"eval {learned['eval_s']:.2f}s, doall/reduction F1 "
        f"{learned['learned_f1']['doall']:.2f}/"
        f"{learned['learned_f1']['reduction']:.2f}"
    )
    return (
        0
        if best >= 2.0
        and obs["within_budget"]
        and engines["digests_identical"]
        and campaign["within_budget"]
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
