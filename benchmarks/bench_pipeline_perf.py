"""End-to-end pipeline performance harness.

Measures wall-clock for every stage of the analysis pipeline — interpret,
profile, detect, simulate — across the full benchmark registry, plus three
end-to-end registry sweeps:

* ``cold_serial``   — fresh in-process analysis of all programs,
* ``warm_cache``    — the same sweep against a pre-populated profile cache
                      (zero re-interpretation; the two-phase CLI workflow),
* ``parallel``      — the sweep through ``repro.runtime.parallel``.

Results go to ``benchmarks/output/BENCH_pipeline.json`` together with the
recorded pre-PR baseline, so the speedup is measured against a fixed
reference and future changes have a perf trajectory to regress against.

Run with::

    PYTHONPATH=src python benchmarks/bench_pipeline_perf.py

Not collected by pytest (tier-1 stays fast); the quick equivalent is
``python -m repro bench --smoke``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import os
import sys
import tempfile
import time

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_pipeline.json"

#: End-to-end serial registry analysis measured on this container at the
#: seed commit (19f902d), before the fast-path/cache/parallel work: the
#: mean of three runs of the same sweep `cold_serial` measures below.
BASELINE = {
    "seconds": 8.981,
    "commit": "19f902d",
    "note": "pre-PR serial registry analysis (per-event sink dispatch, no cache)",
}


def _stage_times() -> tuple[dict, dict]:
    """Per-stage and per-program wall clock over the whole registry."""
    from repro.bench_programs.registry import all_benchmarks
    from repro.patterns.engine import analyze_profile
    from repro.profiling.runner import profile_runs
    from repro.runtime.interpreter import Interpreter
    from repro.sim import plan_and_simulate

    stages = {"interpret": 0.0, "profile": 0.0, "detect": 0.0, "simulate": 0.0}
    programs = {}
    for spec in all_benchmarks():
        program = spec.program
        arg_sets = spec.arg_sets()

        t0 = time.perf_counter()
        for args in arg_sets:
            Interpreter(program, sink=None).run(spec.entry, args)
        t_interp = time.perf_counter() - t0

        t0 = time.perf_counter()
        profile = profile_runs(program, spec.entry, arg_sets)
        t_profile = time.perf_counter() - t0

        t0 = time.perf_counter()
        result = analyze_profile(
            program, profile,
            hotspot_threshold=spec.hotspot_threshold, min_pairs=spec.min_pairs,
        )
        t_detect = time.perf_counter() - t0

        t0 = time.perf_counter()
        plan_and_simulate(result)
        t_sim = time.perf_counter() - t0

        stages["interpret"] += t_interp
        stages["profile"] += t_profile
        stages["detect"] += t_detect
        stages["simulate"] += t_sim
        programs[spec.name] = {
            "interpret": round(t_interp, 4),
            "profile": round(t_profile, 4),
            "detect": round(t_detect, 4),
            "simulate": round(t_sim, 4),
        }
    return {k: round(v, 4) for k, v in stages.items()}, programs


def _end_to_end() -> dict:
    from repro.runtime.parallel import analyze_registry

    t0 = time.perf_counter()
    cold = analyze_registry(parallel=False)
    cold_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        analyze_registry(parallel=False, cache_dir=cache_dir)  # populate
        t0 = time.perf_counter()
        warm = analyze_registry(parallel=False, cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = analyze_registry(parallel=True)
    par_s = time.perf_counter() - t0

    assert cold == warm == par, "end-to-end paths disagree on analysis results"
    return {
        "cold_serial": round(cold_s, 4),
        "warm_cache": round(warm_s, 4),
        "parallel": round(par_s, 4),
        "programs": len(cold),
    }


def main() -> int:
    stages, programs = _stage_times()
    e2e = _end_to_end()
    report = {
        "baseline": BASELINE,
        "optimized": e2e,
        "speedup_vs_baseline": {
            "cold_serial": round(BASELINE["seconds"] / e2e["cold_serial"], 3),
            "warm_cache": round(BASELINE["seconds"] / e2e["warm_cache"], 3),
            "parallel": round(BASELINE["seconds"] / e2e["parallel"], 3),
        },
        "stages": stages,
        "per_program": programs,
        "machine": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    best = max(report["speedup_vs_baseline"].values())
    print(f"\nbest end-to-end speedup vs baseline: {best:.2f}x -> {OUTPUT}")
    return 0 if best >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
