"""Ablation — input-size sensitivity of the pipeline regression.

Dynamic analysis is input-sensitive (Section II); this bench re-profiles
the reg_detect kernel at growing sizes and checks the fitted coefficients
are stable while the efficiency factor converges toward 1 from below
(the fixed b = -1 matters less as the loop gets longer).
"""

import numpy as np
import pytest

from repro.bench_programs import get_benchmark
from repro.patterns.engine import analyze
from repro.reporting.tables import format_table

SIZES = (12, 24, 48, 96)


def _fit(n: int):
    spec = get_benchmark("reg_detect")
    rng = np.random.default_rng(11)
    m = 16
    result = analyze(
        spec.program,
        spec.entry,
        [[rng.random((n, m)), np.zeros(n), np.zeros(n), n, m]],
        hotspot_threshold=spec.hotspot_threshold,
    )
    assert result.pipelines
    return result.pipelines[0]


@pytest.fixture(scope="module")
def fits():
    return {n: _fit(n) for n in SIZES}


def test_ablation_inputs(benchmark, save_artifact, fits):
    benchmark(lambda: _fit(24))
    rows = [[n, p.n_pairs, p.a, p.b, p.efficiency] for n, p in fits.items()]
    save_artifact(
        "ablation_inputs.txt",
        format_table(
            ["n", "pairs", "a", "b", "e"],
            rows,
            title="Ablation: reg_detect regression vs input size",
        ),
    )


class TestStability:
    def test_coefficients_input_independent(self, fits):
        for n, p in fits.items():
            assert p.a == pytest.approx(1.0, abs=0.02), n
            assert p.b == pytest.approx(-1.0, abs=0.2), n

    def test_efficiency_converges_to_one(self, fits):
        efficiencies = [fits[n].efficiency for n in SIZES]
        assert all(e < 1.0 for e in efficiencies)
        assert efficiencies == sorted(efficiencies)  # monotone in size
        assert efficiencies[-1] > 0.97

    def test_pair_count_tracks_trip_count(self, fits):
        for n, p in fits.items():
            assert p.n_pairs == n - 2  # loop y runs from 1 to n-2

    def test_merged_profiles_match_single_run(self):
        """Merging two different-size profiles keeps the same fit."""
        spec = get_benchmark("reg_detect")
        rng = np.random.default_rng(11)
        m = 16
        arg_sets = [
            [rng.random((24, m)), np.zeros(24), np.zeros(24), 24, m],
            [rng.random((48, m)), np.zeros(48), np.zeros(48), 48, m],
        ]
        result = analyze(spec.program, spec.entry, arg_sets)
        assert result.pipelines
        p = result.pipelines[0]
        assert p.a == pytest.approx(1.0, abs=0.02)
        assert p.b == pytest.approx(-1.0, abs=0.3)
