"""Table I — mapping of algorithm structure patterns to supporting
structures.  The mapping is a static fact of the library; this bench
renders it and checks it against the paper's table verbatim."""

from repro.patterns.result import PATTERN_TYPE, SUPPORTING_STRUCTURE
from repro.reporting.tables import format_table

PAPER_TABLE1 = {
    "Task parallelism": ("Task", "Master/worker"),
    "Geometric decomposition": ("Data", "SPMD"),
    "Reduction": ("Data", "SPMD"),
    "Multi-loop pipeline": ("Flow of data", "SPMD"),
}


def test_table1(benchmark, save_artifact):
    def build():
        rows = [
            [pattern, PATTERN_TYPE[pattern], SUPPORTING_STRUCTURE[pattern]]
            for pattern in SUPPORTING_STRUCTURE
        ]
        return format_table(
            ["Algorithm structure", "Type", "Supporting structure"],
            rows,
            title="Table I (reproduced)",
        )

    table = benchmark(build)
    save_artifact("table1.txt", table)
    for pattern, (ptype, structure) in PAPER_TABLE1.items():
        assert PATTERN_TYPE[pattern] == ptype
        assert SUPPORTING_STRUCTURE[pattern] == structure
