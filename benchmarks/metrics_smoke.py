"""Metrics smoke test against an already-running analysis daemon.

CI starts ``repro serve`` in the background (same daemon the service
smoke uses), points this script at it, and tears the daemon down
afterwards::

    PYTHONPATH=src python -m repro serve --port 8123 &
    PYTHONPATH=src python benchmarks/metrics_smoke.py --url http://127.0.0.1:8123

The smoke submits one source analysis, waits for it, then scrapes
``/v1/metrics`` and asserts the Prometheus exposition is well-formed and
actually moved: job counters incremented, the run-duration histogram has
a sample for the submitted kind, cache counters recorded the cold miss +
store, the pool gauges read live executor state, and every detector
stage's histogram fired.  Exit 0 on success.

Not collected by pytest (no ``test_`` prefix); the in-process
equivalents live in ``tests/test_service_http.py``.
"""

from __future__ import annotations

import argparse
import sys

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

ARGS = [["rand", "A:64"], ["scalar", "64"]]

#: Series that must exist with a nonzero value after one source job.
REQUIRED_NONZERO = (
    "repro_jobs_submitted_total",
    "repro_jobs_completed_total",
    "repro_profile_cache_misses_total",
    "repro_profile_cache_stores_total",
    "repro_analyses_total",
    "repro_pool_workers",
)


def _sample(text: str, name: str) -> float:
    """The first sample value of *name* (any label set); raises if absent."""
    for line in text.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name!r} missing from /v1/metrics")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--url", default=None, help="daemon address")
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    client.wait_healthy(timeout=args.startup_timeout)
    print(f"daemon healthy at {client.url}")

    job = client.submit_source(SRC, entry="total", args=ARGS)
    record = client.wait(job["id"], timeout=300.0)
    assert record["state"] == "done", record.get("error")

    text = client.metrics()
    assert text.endswith("\n"), "exposition must end with a newline"
    for name in REQUIRED_NONZERO:
        value = _sample(text, name)
        assert value > 0, f"{name} = {value}, expected > 0"

    # histograms: the source job's run duration and at least the stage-1
    # detector must each have one observation
    assert _sample(text, 'repro_job_run_seconds_count{kind="source"}') >= 1
    assert _sample(text, 'repro_detector_stage_seconds_count{stage="loop-classes"}') >= 1
    assert "# TYPE repro_job_queue_wait_seconds histogram" in text
    assert "repro_jobs_queue_depth" in text

    # exposition hygiene: every sample line's metric appears under a TYPE
    typed = {
        line.split()[2] for line in text.splitlines() if line.startswith("# TYPE ")
    }
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        base = line.split("{")[0].split(" ")[0]
        stripped = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                stripped = base[: -len(suffix)]
                break
        assert stripped in typed, f"sample {base!r} has no # TYPE line"

    print(
        f"OK: {int(_sample(text, 'repro_jobs_completed_total'))} job(s) completed, "
        f"{len(typed)} metric families exposed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
