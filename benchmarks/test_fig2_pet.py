"""Figure 2 — an execution tree (PET) with control regions.

A driver loop calls a helper with its own loop; the PET must show the
function/loop nesting with merged loop iterations, invocation counts, and
per-node instruction counts.  The DOT rendering is saved as the figure.
"""

import numpy as np

from repro.bench_programs.synthetic import FIGURE2_SRC, parsed_program
from repro.profiling import profile_run
from repro.reporting.dot import pet_dot


def _profile():
    program = parsed_program(FIGURE2_SRC)
    profile, _ = profile_run(program, "figure2", [np.ones(16), np.zeros(16), 16])
    return program, profile


def test_fig2(benchmark, save_artifact):
    program, profile = benchmark(_profile)
    save_artifact("fig2_pet.dot", pet_dot(profile.pet, title="Figure 2 (reproduced)"))


class TestPETStructure:
    def test_tree_shape(self):
        program, profile = _profile()
        root = profile.pet
        assert root.kind == "function"
        assert root.region == program.function("figure2").region_id
        (outer_loop,) = root.children
        assert outer_loop.kind == "loop"
        kinds = sorted(c.kind for c in outer_loop.children)
        assert kinds == ["function", "loop"]

    def test_loop_iterations_merged_with_trip_counts(self):
        _, profile = _profile()
        (outer_loop,) = profile.pet.children
        assert outer_loop.total_trips == 3
        inner_b = next(c for c in outer_loop.children if c.kind == "loop")
        assert inner_b.total_trips == 3 * 16  # merged across invocations

    def test_helper_invocations_counted(self):
        _, profile = _profile()
        (outer_loop,) = profile.pet.children
        helper = next(c for c in outer_loop.children if c.kind == "function")
        assert helper.invocations == 3

    def test_instruction_counts_nest(self):
        _, profile = _profile()
        for node in profile.pet.walk():
            child_sum = sum(c.inclusive_cost for c in node.children)
            assert node.inclusive_cost >= child_sum
            assert node.inclusive_cost == node.exclusive_cost + child_sum
