"""Component micro-benchmarks: throughput of each pipeline stage.

Not a paper table — this tracks the reproduction's own performance so
regressions in the lexer/parser/interpreter/profiler show up in CI.
"""

import numpy as np
import pytest

from repro.bench_programs import get_benchmark
from repro.cu import build_cu_graph, detect_cus
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.patterns.regression import efficiency_factor, fit_iteration_pairs
from repro.profiling import profile_run
from repro.runtime import run_program

_SRC = get_benchmark("2mm").source


@pytest.fixture(scope="module")
def mm_args():
    return get_benchmark("2mm").arg_sets()[0]


def test_perf_lexer(benchmark):
    tokens = benchmark(tokenize, _SRC * 4)
    assert len(tokens) > 100


def test_perf_parser(benchmark):
    program = benchmark(parse_program, _SRC)
    assert program.has_function("kernel_2mm")


def test_perf_interpreter(benchmark, mm_args):
    program = parse_program(_SRC)
    result = benchmark(run_program, program, "kernel_2mm", mm_args)
    assert result.total_cost > 10_000


def test_perf_profiler(benchmark, mm_args):
    program = parse_program(_SRC)

    def profiled():
        profile, _ = profile_run(program, "kernel_2mm", mm_args)
        return profile

    profile = benchmark(profiled)
    assert profile.deps


def test_perf_cu_detection(benchmark):
    program = parse_program(get_benchmark("sort").source)
    region = program.function("cilksort").region_id
    cus = benchmark(detect_cus, program, region)
    assert len(cus) >= 8


def test_perf_cu_graph(benchmark, mm_args):
    program = parse_program(_SRC)
    profile, _ = profile_run(program, "kernel_2mm", mm_args)
    region = program.function("kernel_2mm").region_id
    cus = detect_cus(program, region)
    graph = benchmark(build_cu_graph, cus, profile, region)
    assert len(graph) == len(cus)


def test_perf_regression_fit(benchmark):
    rng = np.random.default_rng(0)
    pairs = [(i, i + int(rng.integers(0, 3))) for i in range(10_000)]

    def fit():
        f = fit_iteration_pairs(pairs)
        return efficiency_factor(f.a, f.b, 10_000, 10_000)

    e = benchmark(fit)
    assert 0.0 <= e <= 2.0
