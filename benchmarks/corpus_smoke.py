"""CI smoke for the labeled corpus subsystem.

Three facts, end to end, on a 25-program fixed-seed corpus::

    PYTHONPATH=src python benchmarks/corpus_smoke.py

* **byte determinism** — the corpus generated twice into different
  directories compares equal file by file (``cmp`` semantics, done in
  Python so the script is portable);
* **service integration** — the registered corpus sweeps through a live
  in-process daemon exactly like registry benchmarks (the
  ``REPRO_CORPUS_PATH`` bridge that process-backend workers rely on);
* **accuracy gate** — scoring the swept corpus against its ground truth
  must reach ≥ 0.95 accuracy on the ``wavefront`` and ``doall``
  dimensions (the detector-validation acceptance for the corpus work).

Exit 0 on success.  Not collected by pytest (no ``test_`` prefix); the
in-process equivalents live in ``tests/test_corpus.py`` and
``tests/test_wavefront_detection.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

COUNT = 25
SEED = 7
GATED_DIMENSIONS = ("wavefront", "doall")
MIN_ACCURACY = 0.95


def _tree(root: Path) -> dict[str, bytes]:
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"[corpus-smoke] {status}: {what}")
    if not ok:
        sys.exit(1)


def main() -> int:
    from repro.corpus import generate_corpus, register_corpus, unregister_corpus
    from repro.corpus.score import score_entries
    from repro.profiling.cache import ProfileCache
    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    with tempfile.TemporaryDirectory() as work:
        work = Path(work)

        # 1. byte determinism: same (count, seed) twice -> identical trees
        manifest = generate_corpus(COUNT, SEED, work / "a")
        generate_corpus(COUNT, SEED, work / "b")
        check(_tree(work / "a") == _tree(work / "b"),
              f"{COUNT}-program seed-{SEED} corpus is byte-deterministic "
              f"(digest {manifest['corpus_digest'][:12]})")

        suite = register_corpus(work / "a")
        try:
            # 2. the whole corpus sweeps through a live daemon
            svc = AnalysisService(port=0, workers=2, cache_dir=str(work / "cache"))
            svc.start_background()
            try:
                client = ServiceClient(svc.url)
                client.wait_healthy(timeout=10.0)
                job = client.submit_sweep(names=suite.names())
                record = client.wait(job["id"], timeout=600.0)
                check(record["state"] == "done",
                      f"sweep of {len(suite.names())} corpus programs through "
                      f"the daemon (job {job['id']})")
                results = {r["name"]: r for r in record["result"]}
                check(sorted(results) == sorted(suite.names()),
                      "sweep covered every corpus program")
            finally:
                svc.shutdown()

            # 3. score against the ground truth through the daemon's own
            # profile cache — the sweep above already warmed every entry
            score = score_entries(suite, cache=ProfileCache(work / "cache"))
            for dim in GATED_DIMENSIONS:
                accuracy = score["detectors"][dim]["accuracy"]
                check(accuracy >= MIN_ACCURACY,
                      f"{dim} accuracy {accuracy:.3f} >= {MIN_ACCURACY} "
                      f"over {score['programs']} programs")
            if score["mismatches"]:
                for m in score["mismatches"]:
                    print(f"[corpus-smoke] note: mismatch {m['program']}/{m['dimension']}")
        finally:
            unregister_corpus(work / "a")
    print("[corpus-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
