"""Ablation — machine-model sensitivity of the simulated Table III.

Two knobs are swept:

* synchronization overheads (spawn/barrier) — compute-bound kernels should
  be insensitive, fine-grained ones (reg_detect's pipeline handoffs,
  kmeans' chunk scheduling) should degrade as overheads grow;
* the memory-bandwidth roofline — removing it should let the streaming
  kernels (gesummv) scale past their paper peak, demonstrating that the
  roofline term is what reproduces the ~8-thread saturation.
"""

import dataclasses

import pytest

from repro.bench_programs import analyze_benchmark
from repro.reporting.tables import format_table
from repro.sim import plan_and_simulate
from repro.sim.machine import DEFAULT_MACHINE

SCALES = (0.25, 1.0, 4.0)


def _with_overhead_scale(scale: float):
    return dataclasses.replace(
        DEFAULT_MACHINE,
        spawn_cost=DEFAULT_MACHINE.spawn_cost * scale,
        barrier_base=DEFAULT_MACHINE.barrier_base * scale,
        barrier_per_thread=DEFAULT_MACHINE.barrier_per_thread * scale,
        pipeline_sync=DEFAULT_MACHINE.pipeline_sync * scale,
        chunk_cost=DEFAULT_MACHINE.chunk_cost * scale,
    )


def _best(name: str, machine) -> float:
    return plan_and_simulate(analyze_benchmark(name), machine=machine).best_speedup


@pytest.fixture(scope="module")
def overhead_grid():
    names = ("2mm", "reg_detect", "kmeans", "gesummv", "fdtd-2d")
    return {
        name: {scale: _best(name, _with_overhead_scale(scale)) for scale in SCALES}
        for name in names
    }


def test_ablation_machine(benchmark, save_artifact, overhead_grid):
    benchmark(lambda: _best("2mm", DEFAULT_MACHINE))
    rows = [
        [name] + [grid[scale] for scale in SCALES]
        for name, grid in overhead_grid.items()
    ]
    save_artifact(
        "ablation_machine.txt",
        format_table(
            ["Application"] + [f"overhead x{s}" for s in SCALES],
            rows,
            title="Ablation: sync-overhead scaling vs best simulated speedup",
        ),
    )


class TestOverheadSensitivity:
    def test_speedups_monotone_in_overhead(self, overhead_grid):
        for name, grid in overhead_grid.items():
            values = [grid[s] for s in SCALES]
            assert values[0] >= values[1] >= values[2], name

    def test_compute_bound_kernel_insensitive(self, overhead_grid):
        grid = overhead_grid["2mm"]
        assert grid[4.0] > 0.7 * grid[0.25]

    def test_fine_grained_kernels_sensitive(self, overhead_grid):
        # fdtd-2d pays several barriers per time step: overheads bite hard
        grid = overhead_grid["fdtd-2d"]
        assert grid[4.0] < 0.5 * grid[0.25]


class TestRooflineAblation:
    def test_removing_roofline_unleashes_streaming_kernels(self):
        no_bw = dataclasses.replace(DEFAULT_MACHINE, streaming_cost=0.0)
        result = analyze_benchmark("gesummv")
        capped = plan_and_simulate(result)
        uncapped = plan_and_simulate(result, machine=no_bw)
        assert uncapped.best_speedup > 1.5 * capped.best_speedup
        assert uncapped.best_threads >= capped.best_threads

    def test_roofline_barely_affects_high_reuse_kernels(self):
        no_bw = dataclasses.replace(DEFAULT_MACHINE, streaming_cost=0.0)
        result = analyze_benchmark("3mm")
        capped = plan_and_simulate(result)
        uncapped = plan_and_simulate(result, machine=no_bw)
        assert uncapped.best_speedup < 1.35 * capped.best_speedup
