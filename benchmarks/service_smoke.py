"""Client smoke test against an already-running analysis daemon.

CI starts ``repro serve`` in the background, points this script at it,
and tears the daemon down afterwards::

    PYTHONPATH=src python -m repro serve --port 8123 &
    PYTHONPATH=src python benchmarks/service_smoke.py --url http://127.0.0.1:8123

The smoke submits one Table III benchmark, polls to completion, and
asserts the result matches the registry's expected detection label plus
the simulated speedup fields — the same facts ``repro table3`` prints —
then checks `/v1/version` and `/v1/stats` coherence.  Exit 0 on success.

Not collected by pytest (no ``test_`` prefix); the in-process equivalents
live in ``tests/test_service_http.py``.
"""

from __future__ import annotations

import argparse
import sys

BENCHMARK = "reg_detect"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--url", default=None, help="daemon address")
    parser.add_argument("--benchmark", default=BENCHMARK)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    import repro
    from repro.bench_programs.registry import get_benchmark
    from repro.patterns.schema import SCHEMA_VERSION
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    client.wait_healthy(timeout=args.startup_timeout)
    print(f"daemon healthy at {client.url}")

    version = client.version()
    assert version["version"] == repro.__version__, version
    assert version["schema_version"] == SCHEMA_VERSION, version

    job = client.submit_benchmark(args.benchmark)
    print(f"submitted {args.benchmark} as job {job['id']}")
    record = client.wait(job["id"], timeout=300.0)
    assert record["state"] == "done", record.get("error")

    spec = get_benchmark(args.benchmark)
    result = record["result"]
    assert result["label"] == spec.expected_label, (
        f"daemon detected {result['label']!r}, registry expects "
        f"{spec.expected_label!r}"
    )
    assert result["schema_version"] == SCHEMA_VERSION
    assert result["best_speedup"] > 1.0 and result["best_threads"] >= 2, result

    stats = client.stats()
    assert stats["jobs"]["states"]["done"] >= 1, stats
    print(
        f"OK: {args.benchmark} -> {result['label']} "
        f"({result['best_speedup']:.2f}x at {result['best_threads']} threads); "
        f"cache {stats['cache']['hits']} hit(s) / {stats['cache']['stores']} store(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
