"""Smoke tests for the analysis daemon: basic, restart, saturation.

``--mode basic`` (the default) runs against an already-running daemon;
CI starts ``repro serve`` in the background, points this script at it,
and tears the daemon down afterwards::

    PYTHONPATH=src python -m repro serve --port 8123 --backend process &
    PYTHONPATH=src python benchmarks/service_smoke.py --url http://127.0.0.1:8123

It submits one Table III benchmark, polls to completion, and asserts the
result matches the registry's expected detection label plus the
simulated speedup fields — the same facts ``repro table3`` prints —
then checks `/v1/version` and `/v1/stats` coherence.

``--mode restart``, ``--mode saturation``, and ``--mode campaign`` boot
their own in-process daemons (no ``--url`` needed):

* **restart** — submit jobs against a sqlite-backed daemon, kill it with
  the queue non-empty, restart on the same database, and assert the
  interrupted jobs are recovered and complete.
* **saturation** — flood a ``--max-queue``-bounded daemon until it
  answers 429 + ``Retry-After``, then verify a retrying client still
  lands its work once the queue drains.
* **campaign** — run an 8-cell (2 programs × 2 machine models × 2
  detector thresholds) campaign end to end through the harness, assert
  every cell lands in the results store, then rerun it and assert the
  rerun is served entirely from digest-keyed warm results (zero
  submissions, zero cold profile runs) and that its queries aggregate.

Exit 0 on success.  Not collected by pytest (no ``test_`` prefix); the
in-process equivalents live in ``tests/test_service_http.py`` and
``tests/test_service_durability.py``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time

BENCHMARK = "reg_detect"

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]

# slow enough (~1s) that a flood outruns the single worker
SLOW_SRC = """\
void mm(float A[][], float B[][], float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            C[i][j] = 0.0;
            for (int k = 0; k < n; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
}
"""

SLOW_ARGS = [
    ["rand", "A:24,24"], ["rand", "B:24,24"], ["zeros", "C:24,24"], ["scalar", "24"],
]


def _mode_basic(args) -> int:
    import repro
    from repro.bench_programs.registry import get_benchmark
    from repro.patterns.schema import SCHEMA_VERSION
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    client.wait_healthy(timeout=args.startup_timeout)
    print(f"daemon healthy at {client.url}")

    version = client.version()
    assert version["version"] == repro.__version__, version
    assert version["schema_version"] == SCHEMA_VERSION, version

    job = client.submit_benchmark(args.benchmark)
    print(f"submitted {args.benchmark} as job {job['id']}")
    record = client.wait(job["id"], timeout=300.0)
    assert record["state"] == "done", record.get("error")

    spec = get_benchmark(args.benchmark)
    result = record["result"]
    assert result["label"] == spec.expected_label, (
        f"daemon detected {result['label']!r}, registry expects "
        f"{spec.expected_label!r}"
    )
    assert result["schema_version"] == SCHEMA_VERSION
    assert result["best_speedup"] > 1.0 and result["best_threads"] >= 2, result

    stats = client.stats()
    assert stats["jobs"]["states"]["done"] >= 1, stats
    print(
        f"OK: {args.benchmark} -> {result['label']} "
        f"({result['best_speedup']:.2f}x at {result['best_threads']} threads); "
        f"cache {stats['cache']['hits']} hit(s) / {stats['cache']['stores']} store(s)"
    )
    return 0


def _mode_restart(args, workdir: str) -> int:
    """Kill a sqlite-backed daemon mid-queue; the restart reruns the work."""
    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    db = f"{workdir}/jobs.sqlite"
    cache = f"{workdir}/cache"
    first = AnalysisService(port=0, workers=1, cache_dir=cache, db_path=db)
    # serve HTTP with the workers parked so the queue stays full at "death"
    threading.Thread(
        target=first.httpd.serve_forever, kwargs={"poll_interval": 0.2}, daemon=True
    ).start()
    client = ServiceClient(first.url)
    client.wait_healthy(timeout=args.startup_timeout)
    submitted = [
        client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=seed)
        for seed in range(3)
    ]
    assert all(r["state"] == "queued" for r in submitted), submitted
    first.httpd.shutdown()
    first.httpd.server_close()
    first.store.dispose()  # abrupt death: no draining, no completion
    print(f"killed daemon with {len(submitted)} queued job(s)")

    second = AnalysisService(port=0, workers=2, cache_dir=cache, db_path=db)
    second.start_background()
    try:
        assert second.store.recovered == len(submitted), second.store.counts()
        client2 = ServiceClient(second.url)
        client2.wait_healthy(timeout=args.startup_timeout)
        for record in submitted:
            final = client2.wait(record["id"], timeout=300.0)
            assert final["state"] == "done", final.get("error")
            assert final["info"]["recovered"] is True, final
        print(f"OK: restart recovered and completed {len(submitted)} job(s)")
    finally:
        second.shutdown()
    return 0


def _mode_saturation(args, workdir: str) -> int:
    """Flood a bounded queue into 429s, then recover with a retrying client."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.server import AnalysisService

    svc = AnalysisService(
        port=0, workers=1, cache_dir=f"{workdir}/cache", max_queue=2
    )
    svc.start_background()
    try:
        strict = ServiceClient(svc.url, retry_limit=0, client_id="flooder")
        strict.wait_healthy(timeout=args.startup_timeout)
        rejections = 0
        accepted = []
        for seed in range(8):
            try:
                accepted.append(
                    strict.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=seed)
                )
            except ServiceError as exc:
                assert exc.status == 429, exc
                assert exc.retry_after is not None and exc.retry_after >= 1, exc
                rejections += 1
        assert rejections > 0, "queue never saturated"
        print(f"saturated: {rejections} rejection(s), {len(accepted)} accepted")

        stats = svc.stats()
        assert stats["admission"]["rejected"] == rejections, stats["admission"]
        assert stats["clients"]["flooder"]["rejected"] == rejections, stats["clients"]

        # a retry-after-honoring client lands its work once the queue drains
        patient = ServiceClient(
            svc.url, retry_limit=50, retry_after_cap=0.5, client_id="patient"
        )
        job = patient.submit_source(SRC, entry="total", args=SRC_ARGS, seed=99)
        record = patient.wait(job["id"], timeout=300.0)
        assert record["state"] == "done", record.get("error")
        for early in accepted:
            final = patient.wait(early["id"], timeout=300.0)
            assert final["state"] == "done", final.get("error")
        print("OK: retrying client landed its job after the queue drained")
    finally:
        svc.shutdown()
    return 0


def _mode_campaign(args, workdir: str) -> int:
    """An 8-cell campaign end to end, plus the warm-rerun guarantee."""
    from repro.campaign import CampaignStore, expand_grid, run_campaign
    from repro.campaign.query import group_records, query_records, records_to_csv
    from repro.service.client import ServiceClient
    from repro.service.server import AnalysisService

    svc = AnalysisService(port=0, workers=2, cache_dir=f"{workdir}/cache")
    svc.start_background()
    try:
        client = ServiceClient(svc.url)
        client.wait_healthy(timeout=args.startup_timeout)
        cells = expand_grid(
            ["gesummv", "sort"],
            machines=("default", "slow_sync"),
            thresholds=(None, 0.25),
        )
        assert len(cells) == 8, len(cells)
        with CampaignStore(f"{workdir}/campaigns.sqlite") as store:
            first = run_campaign(store, client, "smoke", cells)
            assert first["submitted"] == 8 and first["failed"] == 0, first
            assert store.status("smoke")["complete"], store.status("smoke")
            print(f"campaign ran: {first['submitted']} cell(s) submitted")

            misses = svc.executor.cache.stats.misses
            second = run_campaign(store, client, "smoke", cells)
            assert second["submitted"] == 0, second
            assert second["reused_resume"] == 8, second
            assert svc.executor.cache.stats.misses == misses, (
                "rerun caused cold profile runs"
            )
            print("rerun served warm: 0 submissions, 0 cold profile runs")

            records = query_records(store, campaign="smoke")
            assert len(records) == 8 and all(
                r["result"]["best_speedup"] > 0 for r in records
            ), records
            groups = group_records(records, ["machine"])
            assert {g["machine"] for g in groups} == {"default", "slow_sync"}
            assert all(g["geomean_speedup"] > 0 for g in groups), groups
            csv_lines = records_to_csv(records).splitlines()
            assert len(csv_lines) == 9, csv_lines  # header + 8 cells
            print(
                "OK: query/aggregation over 8 cells; geomeans "
                + ", ".join(f"{g['machine']}={g['geomean_speedup']:.2f}x" for g in groups)
            )
    finally:
        svc.shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--mode",
        choices=("basic", "restart", "saturation", "campaign"),
        default="basic",
    )
    parser.add_argument("--url", default=None, help="daemon address (basic mode)")
    parser.add_argument("--benchmark", default=BENCHMARK)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    start = time.monotonic()
    if args.mode == "basic":
        code = _mode_basic(args)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as workdir:
            if args.mode == "restart":
                code = _mode_restart(args, workdir)
            elif args.mode == "campaign":
                code = _mode_campaign(args, workdir)
            else:
                code = _mode_saturation(args, workdir)
    print(f"{args.mode} smoke finished in {time.monotonic() - start:.1f}s")
    return code


if __name__ == "__main__":
    sys.exit(main())
