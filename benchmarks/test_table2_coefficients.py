"""Table II — the effects of coefficients a and b on multi-loop pipelines.

Five synthetic loop pairs are engineered so each exercises one row of the
table; the bench runs the full detection path on each and checks the fitted
coefficients land in the row's regime.
"""

import numpy as np
import pytest

from repro.bench_programs.synthetic import COEFFICIENT_DEMOS, parsed_program
from repro.patterns.engine import analyze
from repro.patterns.interpretation import interpret_a, interpret_b
from repro.reporting.tables import format_table

N = 24


def _analyze(name: str):
    program = parsed_program(COEFFICIENT_DEMOS[name])
    arrays = {
        "a1_b0": [np.zeros(N), np.zeros(N), N],
        "a_lt_1": [np.zeros(4 * N), np.zeros(N), N],
        "a_gt_1": [np.zeros(N), np.zeros(4 * N), N],
        "b_neg": [np.zeros(N + 5), np.zeros(N), N],
        "b_pos": [np.zeros(N), np.zeros(N + 5), N],
    }[name]
    return analyze(program, "demo", [arrays], hotspot_threshold=0.01, min_pairs=3)


@pytest.fixture(scope="module")
def fits():
    out = {}
    for name in COEFFICIENT_DEMOS:
        result = _analyze(name)
        assert result.pipelines, f"no pipeline detected for {name}"
        out[name] = result.pipelines[0]
    return out


def test_table2(benchmark, save_artifact, fits):
    benchmark(lambda: _analyze("a1_b0"))
    rows = []
    for name, p in fits.items():
        rows.append([name, p.a, p.b, p.efficiency, interpret_a(p.a)[:48]])
    save_artifact(
        "table2.txt",
        format_table(
            ["case", "a", "b", "e", "interpretation"],
            rows,
            title="Table II regimes (reproduced with engineered loop pairs)",
        ),
    )


class TestRows:
    def test_a_equal_1(self, fits):
        p = fits["a1_b0"]
        assert p.a == pytest.approx(1.0)
        assert p.b == pytest.approx(0.0)
        assert p.efficiency == pytest.approx(1.0, abs=0.05)

    def test_a_less_than_1(self, fits):
        p = fits["a_lt_1"]
        # one iteration of y depends on 1/a = 4 iterations of x
        assert p.a == pytest.approx(0.25, rel=0.05)

    def test_a_greater_than_1(self, fits):
        p = fits["a_gt_1"]
        # 4 iterations of y unlock per iteration of x
        assert p.a == pytest.approx(4.0, rel=0.05)

    def test_b_negative(self, fits):
        p = fits["b_neg"]
        assert p.a == pytest.approx(1.0, rel=0.05)
        assert p.b == pytest.approx(-5.0, abs=0.5)
        # no iteration of y depends on the first 5 iterations of x

    def test_b_positive(self, fits):
        p = fits["b_pos"]
        assert p.a == pytest.approx(1.0, rel=0.05)
        assert p.b == pytest.approx(5.0, abs=0.5)
        # e > 1: the first iterations of y wait for nothing (Section III-A)
        assert p.efficiency > 1.0

    def test_interpretations_mention_regime(self, fits):
        assert "exactly" in interpret_a(fits["a1_b0"].a)
        assert "4" in interpret_a(fits["a_lt_1"].a)
        assert "4" in interpret_a(fits["a_gt_1"].a)
        assert "first 5" in interpret_b(fits["b_neg"].b)
        assert "first 5" in interpret_b(fits["b_pos"].b)
