"""The learned detection baseline: features, models, eval, CLI, schema.

The properties locked here are the ones the subsystem exists to provide:
feature vectors are versioned and finite, training is a pure function of
``(corpus, seed)`` (byte-identical artifacts run-to-run), the model
artifact round-trips through its content-addressed JSON form, and
``learn eval`` judges the learned classifiers and the rule-based
detectors on the *same* held-out programs through the same scoring
machinery.
"""

import json
import math

import pytest

from repro.cli import main as cli_main
from repro.corpus import generate_corpus, load_corpus
from repro.corpus.templates import PATTERN_DIMENSIONS
from repro.learn import (
    DEFAULT_HOLDOUT,
    FEATURE_NAMES,
    FEATURES_VERSION,
    LearnedModel,
    comparison_csv,
    comparison_table,
    corpus_features,
    evaluate_corpus,
    features_csv,
    features_table,
    holdout_split,
    model_digest,
    train_model,
    train_on_corpus,
    validate_model_record,
)
from repro.patterns.schema import (
    LEARNED_BLOCK_KEY,
    attach_learned_verdicts,
    learned_verdicts_from_dict,
)
from repro.profiling.serialize import canonical_json


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    out = tmp_path_factory.mktemp("learn") / "corpus"
    generate_corpus(20, 11, out, adversarial=True)
    return load_corpus(out)


@pytest.fixture(scope="module")
def features_doc(suite):
    return corpus_features(suite)


class TestFeatures:
    def test_vector_is_versioned_ordered_and_finite(self, features_doc):
        assert features_doc["features_version"] == FEATURES_VERSION
        assert tuple(features_doc["feature_names"]) == FEATURE_NAMES
        assert len(features_doc["programs"]) == 20
        for row in features_doc["programs"]:
            assert tuple(row["features"]) == FEATURE_NAMES
            assert all(math.isfinite(v) for v in row["features"].values())
            assert set(row["truth"]) == set(PATTERN_DIMENSIONS)

    def test_document_is_byte_deterministic(self, suite, features_doc):
        again = corpus_features(suite)
        assert canonical_json(again) == canonical_json(features_doc)

    def test_renderers_cover_every_program(self, features_doc):
        table = features_table(features_doc)
        csv_text = features_csv(features_doc)
        for row in features_doc["programs"]:
            assert row["name"] in table
            assert row["name"] in csv_text
        header = csv_text.splitlines()[0]
        assert header.split(",")[2:] == list(FEATURE_NAMES)


class TestHoldoutSplit:
    def test_split_is_deterministic_and_order_preserving(self):
        names = [f"p{i}" for i in range(10)]
        train, held = holdout_split(names, seed=3)
        train2, held2 = holdout_split(names, seed=3)
        assert (train, held) == (train2, held2)
        assert train == [n for n in names if n in set(train)]
        assert held == [n for n in names if n in set(held)]
        assert sorted(train + held) == sorted(names)

    def test_seed_moves_the_split(self):
        names = [f"p{i}" for i in range(12)]
        assert holdout_split(names, seed=1) != holdout_split(names, seed=2)

    def test_both_sides_nonempty_when_possible(self):
        names = ["a", "b"]
        train, held = holdout_split(names, seed=0, holdout=0.01)
        assert len(train) == 1 and len(held) == 1
        train, held = holdout_split(names, seed=0, holdout=0.99)
        assert len(train) == 1 and len(held) == 1

    def test_zero_holdout_keeps_everything(self):
        names = ["a", "b", "c"]
        assert holdout_split(names, seed=0, holdout=0.0) == (names, [])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError, match="holdout"):
            holdout_split(["a"], seed=0, holdout=1.0)


class TestModel:
    @pytest.fixture(scope="class", params=["logistic", "tree"])
    def model(self, request, features_doc):
        return train_model(
            features_doc["programs"], kind=request.param, seed=7,
            trained_on={"corpus": "test"},
        )

    def test_training_is_byte_deterministic(self, features_doc, model):
        again = train_model(
            features_doc["programs"], kind=model.kind, seed=7,
            trained_on={"corpus": "test"},
        )
        assert again.to_json() == model.to_json()
        assert again.model_digest == model.model_digest

    def test_artifact_round_trips(self, tmp_path, model):
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearnedModel.load(path)
        assert loaded.to_json() == model.to_json()
        row = {name: 0.5 for name in FEATURE_NAMES}
        assert loaded.predict(row) == model.predict(row)

    def test_predictions_cover_every_dimension(self, model, features_doc):
        pred = model.predict(features_doc["programs"][0]["features"])
        assert set(pred) == set(PATTERN_DIMENSIONS)
        assert all(isinstance(v, bool) for v in pred.values())

    def test_digest_is_content_addressed(self, model):
        doc = json.loads(model.to_json())
        assert model_digest(doc) == doc["model_digest"]
        doc["seed"] += 1
        with pytest.raises(ValueError, match="digest"):
            validate_model_record(doc)

    def test_validate_rejects_alien_feature_names(self, model):
        doc = json.loads(model.to_json())
        doc["feature_names"] = list(doc["feature_names"][:-1]) + ["bogus"]
        doc["model_digest"] = model_digest(doc)
        with pytest.raises(ValueError, match="feature"):
            validate_model_record(doc)

    def test_predict_refuses_wrong_features_version(self, model):
        doc = json.loads(model.to_json())
        doc["features_version"] = FEATURES_VERSION + 1
        stale = LearnedModel(doc)
        with pytest.raises(ValueError, match="version"):
            stale.predict({name: 0.0 for name in FEATURE_NAMES})

    def test_unknown_kind_rejected(self, features_doc):
        with pytest.raises(ValueError, match="kind"):
            train_model(features_doc["programs"], kind="forest", seed=0,
                        trained_on={})


class TestEvaluate:
    @pytest.fixture(scope="class")
    def doc(self, suite):
        return evaluate_corpus(suite, kind="logistic", seed=7)

    def test_document_shape(self, suite, doc):
        assert doc["record"] == "learn_eval"
        assert doc["corpus_digest"] == suite.corpus_digest
        assert doc["holdout"] == DEFAULT_HOLDOUT
        split = doc["split"]
        assert split["train"] + split["held_out"] == len(suite.entries)
        assert len(split["held_out_names"]) == split["held_out"]
        for side in ("learned", "rules"):
            assert set(doc[side]) == set(PATTERN_DIMENSIONS)

    def test_both_systems_scored_on_the_same_held_out_set(self, doc):
        held = doc["split"]["held_out"]
        for dim in PATTERN_DIMENSIONS:
            for side in ("learned", "rules"):
                cell = doc[side][dim]
                assert cell["tp"] + cell["fp"] + cell["fn"] + cell["tn"] == held

    def test_eval_is_byte_deterministic(self, suite, doc):
        again = evaluate_corpus(suite, kind="logistic", seed=7)
        assert canonical_json(again) == canonical_json(doc)

    def test_train_on_corpus_matches_the_eval_models_digest(self, suite, doc):
        model = train_on_corpus(
            suite, kind="logistic", seed=7, holdout=DEFAULT_HOLDOUT
        )
        assert model.model_digest == doc["model_digest"]

    def test_renderers(self, doc):
        table = comparison_table(doc)
        assert "lrn_f1" in table and "rule_f1" in table
        lines = comparison_csv(doc).splitlines()
        assert lines[0].startswith("pattern,learned_precision")
        assert len(lines) == 1 + len(PATTERN_DIMENSIONS)

    def test_single_program_corpus_rejected(self, tmp_path):
        out = tmp_path / "tiny"
        generate_corpus(1, 0, out)
        with pytest.raises(ValueError, match="empty side|>= 2"):
            evaluate_corpus(load_corpus(out))


class TestLearnedSchemaBlock:
    def test_round_trip(self):
        doc = {"schema_version": 1}
        attach_learned_verdicts(
            doc, model_kind="logistic", model_digest="abc",
            features_version=FEATURES_VERSION,
            verdicts={"doall": True, "reduction": False},
        )
        block = learned_verdicts_from_dict(doc)
        assert block["verdicts"] == {"doall": True, "reduction": False}
        assert block["model"] == "logistic"

    def test_absent_block_reads_as_none(self):
        assert learned_verdicts_from_dict({"schema_version": 1}) is None

    def test_rule_pipeline_never_emits_the_key(self, suite):
        # Table III byte-identity depends on this: the analysis document
        # gains the learned block only when a consumer opts in.
        from repro.corpus.score import analyze_entry
        from repro.patterns.schema import analysis_to_dict

        result = analyze_entry(suite.entries[0])
        assert LEARNED_BLOCK_KEY not in analysis_to_dict(result)

    def test_malformed_blocks_rejected(self):
        with pytest.raises(ValueError, match="verdict"):
            attach_learned_verdicts(
                {}, model_kind="tree", model_digest="d",
                features_version=1, verdicts={},
            )
        with pytest.raises(ValueError, match="bool"):
            attach_learned_verdicts(
                {}, model_kind="tree", model_digest="d",
                features_version=1, verdicts={"doall": 1},
            )
        with pytest.raises(ValueError, match="missing"):
            learned_verdicts_from_dict({LEARNED_BLOCK_KEY: {"model": "x"}})


class TestCli:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli") / "corpus"
        generate_corpus(12, 2, out, adversarial=True)
        return out

    def test_features_csv_round_trip(self, corpus_dir, capsys):
        assert cli_main(["learn", "features", str(corpus_dir),
                         "--no-cache", "--csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 13
        assert lines[0].split(",")[2:] == list(FEATURE_NAMES)

    def test_train_writes_a_loadable_artifact(self, corpus_dir, tmp_path,
                                              capsys):
        out = tmp_path / "model.json"
        assert cli_main(["learn", "train", str(corpus_dir), "--no-cache",
                         "--model", "tree", "--out", str(out)]) == 0
        assert "digest" in capsys.readouterr().out
        model = LearnedModel.load(out)
        assert model.kind == "tree"
        validate_model_record(model.doc)

    def test_eval_emits_json_document(self, corpus_dir, capsys):
        assert cli_main(["learn", "eval", str(corpus_dir), "--no-cache",
                         "--json", "--compact"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["record"] == "learn_eval"
        assert set(doc["learned"]) == set(PATTERN_DIMENSIONS)

    def test_missing_corpus_exits_2(self, tmp_path, capsys):
        assert cli_main(["learn", "eval", str(tmp_path / "nope")]) == 2
        assert "cannot load" in capsys.readouterr().err
