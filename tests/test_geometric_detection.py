"""Geometric decomposition detection tests (Algorithm 2)."""

import numpy as np

from repro.patterns.geometric import detect_geometric_decomposition
from repro.profiling import profile_run

from conftest import parsed

GD_SRC = """\
void chunk_work(float A[], float out[], int n) {
    for (int i = 0; i < n; i++) {
        out[i] = A[i] * 2.0;
    }
    for (int i = 0; i < n; i++) {
        out[i] = out[i] + 1.0;
    }
}
void driver(float A[], float out[], int n, int chunks) {
    for (int c = 0; c < chunks; c++) {
        chunk_work(A, out, n);
    }
}
"""


def gd_of(src, entry, args, func):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    return detect_geometric_decomposition(prog, profile, prog.function(func).region_id)


class TestDetection:
    def test_multi_doall_function_detected(self):
        gd = gd_of(GD_SRC, "driver", [np.ones(8), np.zeros(8), 8, 4], "chunk_work")
        assert gd is not None
        assert gd.function == "chunk_work"
        assert len(gd.analyzed_loops) == 2
        assert all(lc.is_doall for lc in gd.analyzed_loops.values())

    def test_reduction_loops_also_allowed(self):
        src = """\
void stats(float A[], float &mean, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    for (int i = 0; i < n; i++) {
        A[i] = A[i] - s / n;
    }
    mean = s / n;
}
void driver(float A[], float &m, int reps, int n) {
    for (int r = 0; r < reps; r++) {
        stats(A, m, n);
    }
}
"""
        gd = gd_of(src, "driver", [np.ones(8), 0.0, 3, 8], "stats")
        assert gd is not None
        assert gd.has_reduction_loops

    def test_sequential_loop_blocks(self):
        src = """\
void bad(float A[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] + 1.0;
    }
    for (int i = 0; i < n; i++) {
        A[i] = A[i] * 2.0;
    }
}
void driver(float A[], int n, int reps) {
    for (int r = 0; r < reps; r++) {
        bad(A, n);
    }
}
"""
        assert gd_of(src, "driver", [np.zeros(8), 8, 3], "bad") is None

    def test_called_function_loops_examined(self):
        src = """\
void helper(float A[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] * 0.5;
    }
}
void outer_fn(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        B[i] = A[i] + 1.0;
    }
    helper(A, n);
    for (int i = 0; i < n; i++) {
        B[i] = B[i] * 2.0;
    }
}
void driver(float A[], float B[], int n, int reps) {
    for (int r = 0; r < reps; r++) {
        outer_fn(A, B, n);
    }
}
"""
        # the directly-called helper has a sequential loop -> no GD
        assert gd_of(src, "driver", [np.ones(8), np.zeros(8), 8, 3], "outer_fn") is None


class TestGuards:
    def test_single_loop_function_rejected(self):
        src = """\
void one(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
}
void driver(float A[], int n, int reps) {
    for (int r = 0; r < reps; r++) {
        one(A, n);
    }
}
"""
        assert gd_of(src, "driver", [np.zeros(8), 8, 3], "one") is None

    def test_single_invocation_rejected(self):
        prog = parsed(GD_SRC)
        profile, _ = profile_run(prog, "chunk_work", [np.ones(8), np.zeros(8), 8])
        gd = detect_geometric_decomposition(
            prog, profile, prog.function("chunk_work").region_id
        )
        assert gd is None  # it is the entry / called once

    def test_loop_region_rejected(self):
        prog = parsed(GD_SRC)
        profile, _ = profile_run(prog, "driver", [np.ones(8), np.zeros(8), 8, 4])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        assert detect_geometric_decomposition(prog, profile, loop) is None

    def test_unexecuted_function_rejected(self):
        prog = parsed(GD_SRC + "\nvoid never(float A[], int n) { }\n")
        profile, _ = profile_run(prog, "driver", [np.ones(8), np.zeros(8), 8, 4])
        assert (
            detect_geometric_decomposition(
                prog, profile, prog.function("never").region_id
            )
            is None
        )

    def test_called_function_names_recorded(self):
        src = """\
void inner_fn(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; }
    for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; }
}
void mid(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = A[i] - 1.0; }
    inner_fn(A, n);
}
void driver(float A[], int n, int reps) {
    for (int r = 0; r < reps; r++) {
        mid(A, n);
    }
}
"""
        gd = gd_of(src, "driver", [np.ones(8), 8, 3], "mid")
        assert gd is not None
        assert "inner_fn" in gd.called_functions
