"""The labeled corpus subsystem: generation, labels, registration, scoring.

Determinism is asserted byte-for-byte (two generations of the same
``(count, seed)`` compare equal file by file); registration is exercised
through the public registry API including the ``REPRO_CORPUS_PATH``
environment bridge that sweep worker processes rely on; scoring is checked
both synthetically (confusion counting) and end-to-end (one full template
rotation analyzed and scored perfectly against its ground truth).
"""

import json
import os
import random

import pytest

from repro.bench_programs import registry
from repro.corpus import (
    generate_corpus,
    generate_programs,
    load_corpus,
    register_corpus,
    score_corpus,
    score_csv,
    score_entries,
    score_table,
    unregister_corpus,
)
from repro.corpus.labels import (
    corpus_digest,
    source_digest,
    validate_label_record,
    validate_manifest_record,
)
from repro.corpus.suite import ENV_VAR
from repro.corpus.templates import PATTERN_DIMENSIONS, TEMPLATES
from repro.corpus.transforms import insert_dead_statements, rename_identifiers
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program


@pytest.fixture
def corpus_dir(tmp_path):
    out = tmp_path / "corpus"
    generate_corpus(len(TEMPLATES), 7, out)
    return out


@pytest.fixture
def registered(corpus_dir):
    suite = register_corpus(corpus_dir)
    try:
        yield suite
    finally:
        unregister_corpus(corpus_dir)


def _tree(root):
    """{relative path: bytes} for every file under *root*."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestGeneration:
    def test_generation_is_byte_deterministic(self, tmp_path):
        generate_corpus(14, 7, tmp_path / "a")
        generate_corpus(14, 7, tmp_path / "b")
        assert _tree(tmp_path / "a") == _tree(tmp_path / "b")

    def test_seed_changes_the_corpus(self, tmp_path):
        a = generate_corpus(7, 7, tmp_path / "a")
        b = generate_corpus(7, 8, tmp_path / "b")
        assert a["corpus_digest"] != b["corpus_digest"]

    def test_prefix_stability(self):
        # program i depends only on (seed, i): growing the corpus never
        # reshuffles existing programs
        short = generate_programs(5, 7)
        long = generate_programs(10, 7)
        assert [p.source for p in short] == [p.source for p in long[:5]]

    def test_round_robin_covers_every_template(self):
        programs = generate_programs(len(TEMPLATES), 0)
        assert [p.template for p in programs] == [
            t(random.Random("x")).template for t in TEMPLATES
        ]

    def test_every_program_parses_and_validates(self):
        for tp in generate_programs(2 * len(TEMPLATES), 3):
            program = parse_program(tp.source)
            validate_program(program)
            assert set(tp.truth) == set(PATTERN_DIMENSIONS)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            generate_programs(0, 0)


class TestRecords:
    def test_manifest_and_labels_validate(self, corpus_dir):
        manifest = validate_manifest_record(
            json.loads((corpus_dir / "manifest.json").read_text())
        )
        assert manifest["count"] == len(TEMPLATES)
        for item in manifest["programs"]:
            label = validate_label_record(
                json.loads(
                    (corpus_dir / "labels" / f"{item['name']}.json").read_text()
                )
            )
            source = (corpus_dir / "programs" / f"{item['name']}.c").read_text()
            assert label["source_digest"] == source_digest(source)

    def test_corpus_digest_is_order_independent(self):
        digests = [source_digest(s) for s in ("a", "b", "c")]
        assert corpus_digest(digests) == corpus_digest(list(reversed(digests)))

    def test_load_rejects_tampered_source(self, corpus_dir):
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        victim = corpus_dir / "programs" / f"{manifest['programs'][0]['name']}.c"
        victim.write_text(victim.read_text() + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            load_corpus(corpus_dir)

    def test_load_rejects_tampered_manifest(self, corpus_dir):
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        manifest["programs"][0]["source_digest"] = "0" * 64
        (corpus_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="digest"):
            load_corpus(corpus_dir)

    def test_label_validation_rejects_malformed(self, corpus_dir):
        suite = load_corpus(corpus_dir)
        name = suite.entries[0].name
        good = json.loads((corpus_dir / "labels" / f"{name}.json").read_text())
        for mutation in (
            {"schema_version": 99},
            {"record": "job"},
            {"name": ""},
            {"truth": {"doall": True}},  # missing dimensions
            {"args": [["rand"]]},  # not a pair
        ):
            with pytest.raises(ValueError):
                validate_label_record({**good, **mutation})


class TestTransforms:
    def test_rename_is_alpha_conversion(self):
        tp = generate_programs(1, 99)[0]
        renamed = rename_identifiers(tp.source)
        validate_program(parse_program(renamed))
        assert "arr_p" in renamed or renamed == tp.source

    def test_dead_statements_preserve_validity(self):
        for index, tp in enumerate(generate_programs(len(TEMPLATES), 5)):
            mutated = insert_dead_statements(tp.source, random.Random(index))
            validate_program(parse_program(mutated))
            assert "dead" in mutated

    def test_transforms_recorded_in_labels(self, corpus_dir):
        suite = load_corpus(corpus_dir)
        applied = {t for entry in suite.entries for t in entry.transforms}
        # over a full rotation at seed 7 both transforms fire at least once
        assert applied <= {"rename", "dead-statements"}
        assert applied


class TestRegistration:
    def test_registered_programs_resolve_as_benchmarks(self, registered):
        for name in registered.names():
            spec = registry.get_benchmark(name)
            assert spec.suite == registered.name
            assert spec.program is not None  # parses + validates
            assert spec.arg_sets()  # build_call_args materializes

    def test_registration_exports_and_unregister_cleans_env(self, corpus_dir):
        suite = register_corpus(corpus_dir)
        root = str(corpus_dir.resolve())
        try:
            assert root in os.environ.get(ENV_VAR, "").split(os.pathsep)
        finally:
            unregister_corpus(corpus_dir)
        assert root not in os.environ.get(ENV_VAR, "").split(os.pathsep)
        known = {spec.name for spec in registry.all_benchmarks()}
        assert not known & set(suite.names())

    def test_registration_is_idempotent(self, corpus_dir):
        try:
            first = register_corpus(corpus_dir)
            second = register_corpus(corpus_dir)
            assert first.names() == second.names()
            known = [spec.name for spec in registry.all_benchmarks()]
            for name in first.names():
                assert known.count(name) == 1
        finally:
            unregister_corpus(corpus_dir)

    def test_autoload_skips_stale_directories(self, tmp_path, monkeypatch):
        from repro.corpus.suite import autoload_registered

        monkeypatch.setenv(ENV_VAR, str(tmp_path / "does-not-exist"))
        autoload_registered()  # must not raise
        # benchmark lookups keep working with the stale env var in place
        assert registry.get_benchmark("reg_detect").name == "reg_detect"


class TestScoring:
    def test_score_corpus_counts_confusion(self, corpus_dir):
        suite = load_corpus(corpus_dir)
        predictions = {e.name: dict(e.truth) for e in suite.entries}
        # flip one dimension on one program: exactly one mismatch
        victim = suite.entries[0].name
        predictions[victim]["reduction"] = not predictions[victim]["reduction"]
        score = score_corpus(suite, predictions)
        assert score["record"] == "corpus_score"
        assert score["programs"] == len(suite.entries)
        assert len(score["mismatches"]) == 1
        assert score["mismatches"][0]["program"] == victim
        assert score["mismatches"][0]["dimension"] == "reduction"
        red = score["detectors"]["reduction"]
        assert red["fp"] + red["fn"] == 1
        assert red["accuracy"] < 1.0
        # untouched dimensions stay perfect
        assert score["detectors"]["doall"]["accuracy"] == 1.0

    def test_unscored_entries_are_skipped(self, corpus_dir):
        suite = load_corpus(corpus_dir)
        predictions = {suite.entries[0].name: dict(suite.entries[0].truth)}
        score = score_corpus(suite, predictions)
        assert score["programs"] == 1

    def test_render_table_and_csv(self, corpus_dir):
        suite = load_corpus(corpus_dir)
        score = score_corpus(
            suite, {e.name: dict(e.truth) for e in suite.entries}
        )
        text = score_table(score)
        assert "Corpus score" in text and "wavefront" in text
        csv_text = score_csv(score)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("detector,")
        assert len(lines) == 1 + len(PATTERN_DIMENSIONS)

    def test_full_rotation_scores_perfectly(self, corpus_dir):
        # one program per template, transforms applied, analyzed for real:
        # the detectors must agree with the constructed ground truth
        suite = load_corpus(corpus_dir)
        score = score_entries(suite)
        assert score["mismatches"] == []
        for dim in PATTERN_DIMENSIONS:
            assert score["detectors"][dim]["precision"] == 1.0
            assert score["detectors"][dim]["recall"] == 1.0


class TestCli:
    def test_generate_and_score_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli-corpus")
        assert main([
            "corpus", "generate", "--count", str(len(TEMPLATES)),
            "--seed", "7", "--out", out, "--json", "--compact",
        ]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["record"] == "corpus_manifest"

        # regeneration is byte-identical (the CLI determinism acceptance)
        assert main([
            "corpus", "generate", "--count", str(len(TEMPLATES)),
            "--seed", "7", "--out", str(tmp_path / "again"),
        ]) == 0
        capsys.readouterr()
        assert _tree(tmp_path / "cli-corpus") == _tree(tmp_path / "again")

        assert main([
            "corpus", "score", out, "--json", "--compact",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        score = json.loads(capsys.readouterr().out)
        assert score["mismatches"] == []
        assert score["corpus_digest"] == manifest["corpus_digest"]

    def test_score_cli_rejects_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["corpus", "score", str(tmp_path / "nope")]) == 2
        assert "cannot load" in capsys.readouterr().err


@pytest.mark.slow
class TestCampaignIntegration:
    """Campaign/daemon round-trips: excluded from the fast CI lane."""

    def test_campaign_runs_over_a_corpus_directory(self, corpus_dir, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "c.sqlite")
        argv = [
            "campaign", "run", "--name", "corpus-campaign",
            "--corpus", str(corpus_dir),
            "--db", db, "--cache-dir", str(tmp_path / "cache"),
        ]
        try:
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert f"{len(TEMPLATES)} cell(s)" in out
            assert f"{len(TEMPLATES)} submitted" in out

            # identical rerun resumes every cell — digest reuse intact
            assert main(argv) == 0
            assert f"{len(TEMPLATES)} already done" in capsys.readouterr().out
        finally:
            unregister_corpus(corpus_dir)

    def test_corpus_sweep_through_the_service(self, registered, tmp_path):
        # the env bridge: service workers resolve corpus names themselves
        from repro.service.client import ServiceClient
        from repro.service.server import AnalysisService

        svc = AnalysisService(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
        svc.start_background()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=10.0)
            names = registered.names()[:3]
            job = client.submit_sweep(names=names)
            record = client.wait(job["id"], timeout=120.0)
            assert record["state"] == "done"
            assert [r["name"] for r in record["result"]] == names
        finally:
            svc.shutdown()
