"""Execution backends: thread/process parity, timeouts, degradation."""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.patterns.schema import SCHEMA_VERSION, strip_trace_timings
from repro.profiling.cache import ProfileCache
from repro.profiling.serialize import canonical_json
from repro.runtime.parallel import FailedOutcome
from repro.service.backends import (
    BACKENDS,
    ProcessBackend,
    ThreadBackend,
    execute_job,
    make_backend,
)
from repro.service.client import ServiceClient
from repro.service.jobs import Job
from repro.service.server import AnalysisService

#: Everything here drives a live daemon or worker pool: excluded from the
#: fast CI lane (-m "not slow").
pytestmark = pytest.mark.slow

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]

SLOW_SRC = """\
void mm(float A[][], float B[][], float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            C[i][j] = 0.0;
            for (int k = 0; k < n; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
}
"""

SLOW_ARGS = [
    ["rand", "A:32,32"], ["rand", "B:32,32"], ["zeros", "C:32,32"], ["scalar", "32"],
]


def _source_payload(**extra):
    return {"source": SRC, "entry": "total", "args": SRC_ARGS, "seed": 0, **extra}


@pytest.fixture
def process_service(tmp_path):
    svc = AnalysisService(
        port=0, workers=2, cache_dir=str(tmp_path / "cache"), backend="process"
    )
    svc.start_background()
    try:
        client = ServiceClient(svc.url)
        client.wait_healthy(timeout=5.0)
        yield svc, client
    finally:
        svc.shutdown()


class TestBackendFactory:
    def test_known_backends(self, tmp_path):
        cache = ProfileCache(root=str(tmp_path / "cache"))
        assert isinstance(make_backend("thread", cache), ThreadBackend)
        process = make_backend("process", cache, workers=1)
        assert isinstance(process, ProcessBackend)
        process.shutdown()
        assert set(BACKENDS) == {"thread", "process"}

    def test_unknown_backend_rejected(self, tmp_path):
        cache = ProfileCache(root=str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("fiber", cache)
        with pytest.raises(ValueError, match="backend"):
            AnalysisService(port=0, backend="fiber")


class TestBackendParity:
    def test_thread_and_process_results_are_byte_identical(self, tmp_path):
        """The backend moves work, not meaning: identical documents out."""
        results = {}
        for name in BACKENDS:
            cache = ProfileCache(root=str(tmp_path / f"cache-{name}"))
            backend = make_backend(name, cache, workers=1)
            try:
                outcome = backend.run(Job(id=1, kind="source", payload=_source_payload()))
            finally:
                backend.shutdown()
            assert not isinstance(outcome, FailedOutcome)
            result, info = outcome
            assert info["profile_cache_hit"] is False
            results[name] = canonical_json(strip_trace_timings(result))
        assert results["thread"] == results["process"]

    def test_process_service_matches_detect_json_bytes(self, process_service, tmp_path):
        """Same acceptance bar the thread backend already meets: the daemon's
        document is byte-identical to `detect --json --compact`, modulo
        trace wall-clock timings."""
        svc, client = process_service
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        buf = io.StringIO()
        with redirect_stdout(buf):
            assert main([
                "detect", str(path), "--entry", "total", "--rand", "A:16",
                "--scalar", "16", "--json", "--compact",
                "--cache-dir", str(tmp_path / "cli-cache"),
            ]) == 0
        cli_doc = json.loads(buf.getvalue())

        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        record = client.wait(job["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["backend"] == "process"
        assert canonical_json(strip_trace_timings(record["result"])) == \
            canonical_json(strip_trace_timings(cli_doc))


class TestProcessBackendBehavior:
    def test_crash_becomes_failed_record_and_pool_survives(self, process_service):
        svc, client = process_service
        bad = client.submit_source("void f() { x = 1; }", entry="f")
        record = client.wait(bad["id"], timeout=60.0)
        assert record["state"] == "failed"
        assert record["error"]["failed"] is True
        assert record["error"]["error_type"] == "ValidationError"
        assert record["error"]["schema_version"] == SCHEMA_VERSION
        # the pool keeps serving after the failure
        good = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        assert client.wait(good["id"], timeout=120.0)["state"] == "done"

    def test_sigalrm_timeout_fires_for_source_jobs(self, process_service):
        """The reason the process backend exists: per-job timeouts work
        again because analysis runs on a worker process's main thread."""
        svc, client = process_service
        job = client.submit_source(
            SLOW_SRC, entry="mm", args=SLOW_ARGS, timeout=0.2
        )
        record = client.wait(job["id"], timeout=120.0)
        assert record["state"] == "failed"
        assert record["error"]["error_type"] == "AnalysisTimeout"

    def test_worker_cache_stats_reach_daemon_metrics(self, process_service):
        """A worker's cache counters cross the process boundary with the
        result and land in the daemon's stats + registry."""
        svc, client = process_service
        cold = client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=5)
        client.wait(cold["id"], timeout=120.0)
        stats = client.stats()
        assert stats["backend"] == "process"
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["stores"] >= 1
        # warm repeat reports the hit even though it ran in another process
        warm = client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=5)
        record = client.wait(warm["id"], timeout=120.0)
        assert record["info"]["profile_cache_hit"] is True
        assert client.stats()["cache"]["hits"] >= 1

    def test_broken_pool_degrades_to_in_thread_execution(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        cache = ProfileCache(root=str(tmp_path / "cache"))
        backend = ProcessBackend(cache, workers=1)
        try:
            def explode(job, queue_wait_s):
                raise BrokenProcessPool("pool died under the job")

            backend._submit = explode
            outcome = backend.run(Job(id=1, kind="source", payload=_source_payload()))
            assert not isinstance(outcome, FailedOutcome)
            result, info = outcome
            assert info["backend_degraded"] is True
            assert backend.degraded == 1
            assert result["schema_version"] == SCHEMA_VERSION
        finally:
            backend.shutdown()


class TestExecuteJob:
    def test_never_raises_returns_failed_outcome(self, tmp_path):
        cache = ProfileCache(root=str(tmp_path / "cache"))
        outcome = execute_job(
            "source", {"source": "void f() { x = 1; }", "entry": "f"}, cache
        )
        assert isinstance(outcome, FailedOutcome)
        assert outcome.to_dict()["error_type"] == "ValidationError"

    def test_payload_retries_override_defaults(self, tmp_path):
        cache = ProfileCache(root=str(tmp_path / "cache"))
        outcome = execute_job(
            "source",
            {"source": "void f() { x = 1; }", "entry": "f", "retries": 2},
            cache,
            backoff=0.01,
        )
        assert outcome.to_dict()["attempts"] == 3
