"""n-stage pipeline chain simulation tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import Machine
from repro.sim.pipeline import simulate_pipeline, simulate_pipeline_chain

M = Machine()


class TestChainSim:
    def test_two_stage_chain_close_to_pairwise(self):
        cx = [100.0] * 20
        cy = [20.0] * 20
        pairwise = simulate_pipeline(cx, cy, 1.0, 0.0, M, threads=8)
        chain = simulate_pipeline_chain([cx, cy], [(1.0, 0.0)], M, threads=8)
        assert chain.parallel_time == pytest.approx(pairwise.parallel_time, rel=0.05)

    def test_three_stages_better_than_serial(self):
        stages = [[50.0] * 16, [50.0] * 16, [50.0] * 16]
        fits = [(1.0, 0.0), (1.0, 0.0)]
        out = simulate_pipeline_chain(
            stages, fits, M, threads=8, stage0_parallel=False
        )
        # three equal sequential stages overlapping: ~3x minus sync
        assert 1.8 < out.speedup <= 3.0

    def test_chain_drains_every_stage(self):
        # last stage is tiny; time must still cover stage 0's full work
        stages = [[100.0] * 16, [1.0] * 16]
        out = simulate_pipeline_chain(
            stages, [(1.0, 0.0)], M, threads=2, stage0_parallel=False
        )
        assert out.parallel_time >= 1600.0

    def test_blocking_fit_serializes(self):
        stages = [[50.0] * 10, [50.0] * 10]
        out = simulate_pipeline_chain(
            stages, [(1.0, -10.0)], M, threads=4, stage0_parallel=False
        )
        assert out.speedup < 1.1

    def test_single_thread_serial(self):
        stages = [[10.0] * 4, [10.0] * 4]
        out = simulate_pipeline_chain(stages, [(1.0, 0.0)], M, threads=1)
        assert out.parallel_time == out.serial_time

    def test_argument_validation(self):
        with pytest.raises(SimulationError):
            simulate_pipeline_chain([[1.0]], [], M, threads=2)
        with pytest.raises(SimulationError):
            simulate_pipeline_chain(
                [[1.0], [1.0]], [(1.0, 0.0), (1.0, 0.0)], M, threads=2
            )

    def test_parallel_stage0_helps(self):
        stages = [[100.0] * 32, [10.0] * 32]
        serial0 = simulate_pipeline_chain(
            stages, [(1.0, 0.0)], M, threads=8, stage0_parallel=False
        )
        parallel0 = simulate_pipeline_chain(
            stages, [(1.0, 0.0)], M, threads=8, stage0_parallel=True
        )
        assert parallel0.parallel_time < serial0.parallel_time
