"""Engine precedence and label tests (Table III's 'Detected Pattern')."""

import numpy as np

from repro.patterns.engine import (
    analyze,
    primary_pattern_regions,
    primary_pattern_share,
    summarize_patterns,
)

from conftest import parsed


def label_of(src, entry, args, **kw):
    prog = parsed(src)
    result = analyze(prog, entry, [args], **kw)
    return result, summarize_patterns(result)


class TestPrecedence:
    def test_fusion_beats_pipeline(self):
        _, label = label_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0 + sqrt(i + 1.0); }
    for (int j = 0; j < n; j++) { B[j] = A[j] * 2.0 + sqrt(A[j] + 1.0); }
}
""",
            "f",
            [np.zeros(32), np.zeros(32), 32],
        )
        assert label == "Fusion"

    def test_pipeline_when_stage2_sequential(self):
        _, label = label_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0 + sqrt(i + 1.0); }
    for (int j = 1; j < n; j++) { B[j] = B[j - 1] * 0.5 + A[j]; }
}
""",
            "f",
            [np.zeros(32), np.zeros(32), 32],
        )
        assert label == "Multi-loop pipeline"

    def test_tasks_when_loops_independent(self):
        _, label = label_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0 + sqrt(i + 2.0); }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0 + sqrt(j + 3.0); }
}
""",
            "f",
            [np.zeros(32), np.zeros(32), 32],
        )
        assert label == "Task parallelism + Do-all"

    def test_reduction_for_single_accumulating_loop(self):
        _, label = label_of(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i] * A[i];
    }
    return s;
}
""",
            "f",
            [np.ones(32), 32],
        )
        assert label == "Reduction"

    def test_doall_for_plain_parallel_loop(self):
        _, label = label_of(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = i * 1.0; } }",
            "f",
            [np.zeros(32), 32],
        )
        assert label == "Do-all"

    def test_none_for_sequential_program(self):
        _, label = label_of(
            "void f(float A[], int n) { for (int i = 1; i < n; i++) { A[i] = A[i - 1] + 1.0; } }",
            "f",
            [np.zeros(32), 32],
        )
        assert label == "None"

    def test_low_efficiency_pipeline_not_primary(self):
        # loop y's first read needs ALL of loop x: e ~ 0 -> fall through
        result, label = label_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = B[j] + A[n - 1 - j]; }
}
""",
            "f",
            [np.zeros(32), np.zeros(32), 32],
        )
        assert result.pipelines  # detected and reported...
        assert label != "Multi-loop pipeline"  # ...but not the primary label


class TestGrainGuard:
    def test_statement_level_tasks_rejected(self):
        # two independent accumulations inside an innermost loop body are
        # below any sensible task grain (the bicg shape)
        _, label = label_of(
            """\
void f(float A[][], float s[], float q[], float p[], float r[], int nx, int ny) {
    for (int i = 0; i < nx; i++) {
        float acc = 0.0;
        for (int j = 0; j < ny; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            acc += A[i][j] * p[j];
        }
        q[i] = acc;
    }
}
""",
            "f",
            [np.ones((20, 20)), np.zeros(20), np.zeros(20), np.ones(20), np.ones(20), 20, 20],
        )
        assert not label.startswith("Task parallelism")


class TestPrimaryShare:
    def test_share_of_detected_regions(self):
        result, label = label_of(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
""",
            "f",
            [np.ones(32), 32],
        )
        regions = primary_pattern_regions(result)
        assert regions
        share = primary_pattern_share(result)
        assert 0.5 < share <= 1.0

    def test_share_bounded(self):
        result, _ = label_of(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = 1.0; } }",
            "f",
            [np.zeros(16), 16],
        )
        assert 0.0 <= primary_pattern_share(result) <= 1.0


class TestCleanPipelines:
    def test_multi_source_consumer_not_clean(self):
        result, _ = label_of(
            """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0; }
    for (int k = 0; k < n; k++) { C[k] = A[k] + B[n - 1 - k]; }
}
""",
            "f",
            [np.zeros(24), np.zeros(24), np.zeros(24), 24],
        )
        k_loop = max(r.region_id for r in result.program.regions.values() if r.kind == "loop")
        clean_ys = {p.loop_y for p in result.clean_pipelines()}
        assert k_loop not in clean_ys
