"""Reordered-execution validation tests: the do-all oracle."""

import numpy as np
import pytest

from repro.runtime import run_program
from repro.runtime.replay import (
    ReplayError,
    results_equal,
    run_with_loop_order,
    validate_doall,
)

from conftest import parsed


def first_loop(prog):
    return next(r.region_id for r in prog.regions.values() if r.kind == "loop")


DOALL_SRC = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0 + 1.0;
    }
}
"""

SEQ_SRC = """\
void f(float A[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] + A[i];
    }
}
"""


class TestOrders:
    @pytest.mark.parametrize("order", ["reverse", "shuffle", "interleave"])
    def test_doall_loop_stable_under_any_order(self, order):
        prog = parsed(DOALL_SRC)
        args = [np.arange(16.0), np.zeros(16), 16]
        serial = run_program(prog, "f", args)
        permuted = run_with_loop_order(prog, "f", args, first_loop(prog), order=order)
        assert results_equal(serial, permuted)

    def test_sequential_loop_breaks_under_reversal(self):
        prog = parsed(SEQ_SRC)
        args = [np.arange(1.0, 9.0), 8]
        serial = run_program(prog, "f", args)
        reversed_run = run_with_loop_order(prog, "f", args, first_loop(prog), order="reverse")
        assert not results_equal(serial, reversed_run)

    def test_unknown_order_rejected(self):
        prog = parsed(DOALL_SRC)
        with pytest.raises(ReplayError):
            run_with_loop_order(
                prog, "f", [np.zeros(4), np.zeros(4), 4], first_loop(prog), order="zigzag"
            )

    def test_shuffle_is_seeded(self):
        prog = parsed(DOALL_SRC)
        args = [np.arange(8.0), np.zeros(8), 8]
        r1 = run_with_loop_order(prog, "f", args, first_loop(prog), "shuffle", seed=1)
        r2 = run_with_loop_order(prog, "f", args, first_loop(prog), "shuffle", seed=1)
        assert results_equal(r1, r2)


class TestValidateDoall:
    def test_accepts_true_doall(self):
        prog = parsed(DOALL_SRC)
        assert validate_doall(prog, "f", [np.arange(12.0), np.zeros(12), 12], first_loop(prog))

    def test_rejects_recurrence(self):
        prog = parsed(SEQ_SRC)
        assert not validate_doall(prog, "f", [np.arange(1.0, 13.0), 12], first_loop(prog))

    def test_rejects_order_sensitive_scalar(self):
        prog = parsed(
            """\
float f(float A[], int n) {
    float last = 0.0;
    for (int i = 0; i < n; i++) {
        last = A[i];
    }
    return last;
}
"""
        )
        assert not validate_doall(prog, "f", [np.arange(8.0), 8], first_loop(prog))

    def test_detected_doall_classifications_hold_empirically(self):
        """End-to-end oracle: what the detector calls do-all must be
        reorder-stable on the profiled input."""
        from repro.patterns.engine import analyze

        src = """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) {
        float t = A[i] * 3.0;
        B[i] = t + 1.0;
    }
    for (int j = 1; j < n; j++) {
        C[j] = C[j - 1] * 0.5 + B[j];
    }
}
"""
        prog = parsed(src)
        args = [np.arange(10.0), np.zeros(10), np.zeros(10), 10]
        result = analyze(prog, "f", [args])
        for region, lc in result.loop_classes.items():
            if lc.is_doall:
                assert validate_doall(prog, "f", args, region), region


class TestCanonicalGuards:
    def test_while_loop_not_replayable(self):
        prog = parsed("void f(int n) { while (n > 0) { n = n - 1; } }")
        loop = first_loop(prog)
        with pytest.raises(ReplayError):
            run_with_loop_order(prog, "f", [4], loop)

    def test_break_inside_rejected(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        if (A[i] > 2.0) {
            break;
        }
        A[i] = A[i] + 1.0;
    }
}
"""
        )
        with pytest.raises(ReplayError):
            run_with_loop_order(prog, "f", [np.arange(8.0), 8], first_loop(prog), "reverse")

    def test_non_target_loops_run_normally(self):
        prog = parsed(
            """\
void f(float A[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            A[i][j] = i * 10.0 + j;
        }
    }
}
"""
        )
        outer = first_loop(prog)
        serial = run_program(prog, "f", [np.zeros((4, 4)), 4])
        permuted = run_with_loop_order(prog, "f", [np.zeros((4, 4)), 4], outer, "reverse")
        assert results_equal(serial, permuted)

    def test_decrementing_loop(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    for (int i = n - 1; i >= 0; i -= 1) {
        A[i] = i * 1.0;
    }
}
"""
        )
        serial = run_program(prog, "f", [np.zeros(8), 8])
        permuted = run_with_loop_order(prog, "f", [np.zeros(8), 8], first_loop(prog), "reverse")
        assert results_equal(serial, permuted)

    def test_induction_value_after_loop_matches_serial(self):
        prog = parsed(
            """\
int f(int n) {
    int i = 0;
    int last = 0;
    for (i = 0; i < n; i++) {
        last = last | 0;
    }
    return i;
}
""".replace("|", "+")
        )
        loop = first_loop(prog)
        serial = run_program(prog, "f", [7])
        permuted = run_with_loop_order(prog, "f", [7], loop, "reverse")
        assert permuted.value == serial.value == 7
