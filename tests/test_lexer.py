"""Lexer unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def kinds(src):
    return [(t.type, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type is TokenType.EOF

    def test_identifier(self):
        assert kinds("foo_bar1") == [(TokenType.IDENT, "foo_bar1")]

    def test_keyword_vs_identifier(self):
        assert kinds("int inty")[0] == (TokenType.KEYWORD, "int")
        assert kinds("int inty")[1] == (TokenType.IDENT, "inty")

    def test_int_literal(self):
        assert kinds("42") == [(TokenType.INT_LIT, "42")]

    def test_float_literal(self):
        assert kinds("3.75") == [(TokenType.FLOAT_LIT, "3.75")]

    def test_float_exponent(self):
        assert kinds("1e3")[0][0] is TokenType.FLOAT_LIT
        assert kinds("2.5e-4")[0][0] is TokenType.FLOAT_LIT

    def test_all_keywords_tokenize_as_keywords(self):
        for kw in ("int", "float", "void", "if", "else", "for", "while",
                   "return", "break", "continue"):
            assert kinds(kw) == [(TokenType.KEYWORD, kw)]

    def test_multichar_operators_win_over_single(self):
        assert kinds("<=") == [(TokenType.OP, "<=")]
        assert kinds("==") == [(TokenType.OP, "==")]
        assert kinds("+=") == [(TokenType.OP, "+=")]
        assert kinds("++") == [(TokenType.OP, "++")]
        assert kinds("&&") == [(TokenType.OP, "&&")]

    def test_adjacent_operators(self):
        assert kinds("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OP, "<="),
            (TokenType.IDENT, "b"),
        ]

    def test_punctuation(self):
        assert [k for k, _ in kinds("(){}[];,")] == [TokenType.PUNCT] * 8


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment_skipped(self):
        assert kinds("a /* x */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_multiline_block_comment_tracks_lines(self):
        toks = tokenize("a /* one\ntwo\nthree */ b")
        assert toks[1].line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1
        assert toks[1].col == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_bad_numeric_literal(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_carries_line(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n@")
        assert exc.value.line == 2


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_integer_roundtrip(self, value):
        toks = tokenize(str(value))
        assert toks[0].type is TokenType.INT_LIT
        assert int(toks[0].text) == value

    @given(
        st.floats(
            min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
        )
    )
    def test_float_roundtrip(self, value):
        toks = tokenize(repr(value))
        assert toks[0].type in (TokenType.FLOAT_LIT, TokenType.INT_LIT)
        assert float(toks[0].text) == pytest.approx(value)

    @given(st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,20}", fullmatch=True))
    def test_identifier_roundtrip(self, name):
        toks = tokenize(name)
        assert len(toks) == 2
        assert toks[0].text == name
