"""Differential tests: the compiled closure engine vs the tree walker.

The closure compiler (``repro.runtime.compile``) must be observationally
indistinguishable from the reference interpreter: same return value, same
total cost, same final memory, and — the property the profiling pipeline
stands on — a byte-identical canonical profile for every program.  These
tests sweep the full benchmark registry plus a deterministic family of
seeded generated programs (loops, conditionals, calls, recursion, break /
continue / early return, truncating division) through both engines and
compare ``profile_digest`` on each, so any divergence in event streams is
caught at the serialized-profile level.

C-style truncating division and modulo (``_c_int_div`` / ``_c_int_mod``)
get direct unit coverage for negative operands — the one place MiniC
semantics differ from Python's floor division — and the non-local control
signals (break, continue, return) are exercised through both engines from
every nesting shape the compiler handles specially.
"""

import random

import numpy as np
import pytest

from repro.bench_programs.registry import all_benchmarks
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.profiling import Profiler
from repro.profiling.runner import profile_run, profile_runs
from repro.profiling.serialize import profile_digest
from repro.runtime.compile import CompiledEngine, run_compiled
from repro.runtime.interpreter import Interpreter, InterpreterError, _c_int_div, _c_int_mod

# ---------------------------------------------------------------------------
# helpers


def _compile(source: str):
    program = parse_program(source)
    validate_program(program)
    return program


def _run_both(program, entry, args):
    """Run through both engines; return the two (RunResult, digest) pairs."""
    prof_tree = Profiler(record_calltree=True)
    res_tree = Interpreter(program, sink=prof_tree).run(entry, args)
    prof_comp = Profiler(record_calltree=True)
    res_comp = CompiledEngine(program, sink=prof_comp).run(entry, args)
    return (
        (res_tree, profile_digest(prof_tree.profile)),
        (res_comp, profile_digest(prof_comp.profile)),
    )


def _assert_equivalent(program, entry, args):
    (res_t, dig_t), (res_c, dig_c) = _run_both(program, entry, args)
    assert dig_c == dig_t, "profile digests diverge between engines"
    assert res_c.value == res_t.value
    assert res_c.total_cost == res_t.total_cost
    assert res_c.scalars == res_t.scalars
    assert set(res_c.arrays) == set(res_t.arrays)
    for name in res_t.arrays:
        np.testing.assert_array_equal(res_c.arrays[name], res_t.arrays[name])
    assert set(res_c.globals) == set(res_t.globals)
    for name in res_t.globals:
        np.testing.assert_array_equal(
            np.asarray(res_c.globals[name]), np.asarray(res_t.globals[name])
        )


# ---------------------------------------------------------------------------
# full-registry differential sweep


@pytest.mark.parametrize(
    "spec", all_benchmarks(), ids=lambda spec: spec.name
)
def test_registry_profiles_identical_across_engines(spec):
    compiled = profile_runs(spec.program, spec.entry, spec.arg_sets(), engine="compiled")
    tree = profile_runs(spec.program, spec.entry, spec.arg_sets(), engine="tree")
    assert profile_digest(compiled) == profile_digest(tree)


def test_unknown_engine_rejected():
    spec = all_benchmarks()[0]
    with pytest.raises(ValueError, match="unknown engine"):
        profile_run(spec.program, spec.entry, spec.arg_sets()[0], engine="jit")


# ---------------------------------------------------------------------------
# seeded generated programs

_N_GENERATED = 60

# Statement templates over scalars s/t, index vars, and arrays A (input),
# B (output).  {i} is the innermost loop index, {k} a unique suffix for
# fresh declarations.
_STMTS = (
    "B[{i}] = A[{i}] * 2 + s;",
    "B[{i}] = B[{i}] + A[n - 1 - {i}];",
    "s += A[{i}] - t;",
    "s = s + B[{i}] % 5;",
    "t = A[{i}] / 3 + B[{i}] / (0 - 2);",
    "t = (0 - A[{i}]) % 3;",
    "int x{k} = A[{i}] * t; B[{i}] = x{k} - s;",
    "s = helper(A[{i}], t);",
    "B[{i}] = fib(A[{i}] % 4 + 2);",
    "if (A[{i}] % 2 == 0) {{ s += 1; }} else {{ t -= 1; }}",
)

# Control shapes wrapping a body; break/continue/return exercise the
# compiled engine's non-local signal handling inside loops.
_GUARDS = (
    "if (s > 100) {{ break; }}\n            {body}",
    "if (A[{i}] % 3 == 0) {{ continue; }}\n            {body}",
    "if (s < 0 - 50) {{ return s; }}\n            {body}",
    "{body}",
    "{body}",
)

_HELPERS = """\
int helper(int a, int b) {
    int r = 0;
    while (a > 0) {
        r += a % 7;
        a = a / 2;
        if (r > 40) { break; }
    }
    return r + b;
}

int fib(int k) {
    if (k <= 1) { return k; }
    return fib(k - 1) + fib(k - 2);
}
"""


def _generate_program(rng: random.Random) -> str:
    """One random but always-valid MiniC program with two array params."""
    depth = rng.choice([1, 1, 2])
    inner = "i" if depth == 1 else "j"
    stmts = [
        rng.choice(_STMTS).format(i=inner, k=k)
        for k in range(rng.randint(2, 4))
    ]
    body = "\n            ".join(stmts)
    guarded = rng.choice(_GUARDS).format(body=body, i=inner)
    if depth == 2:
        loop = (
            "for (int i = 0; i < n; i++) {{\n"
            "        for (int j = 0; j < n; j++) {{\n"
            "            {g}\n"
            "        }}\n"
            "    }}"
        ).format(g=guarded)
    else:
        loop = (
            "for (int i = 0; i < n; i++) {{\n"
            "            {g}\n"
            "    }}"
        ).format(g=guarded)
    return (
        _HELPERS
        + "\nint f(int A[], int B[], int n) {\n"
        + "    int s = 3;\n    int t = 0 - 2;\n    "
        + loop
        + "\n    return s * 10 + t;\n}\n"
    )


def _generated_cases():
    rng = random.Random(20260808)
    return [(idx, _generate_program(rng)) for idx in range(_N_GENERATED)]


@pytest.mark.parametrize(
    "idx,source", _generated_cases(), ids=lambda case: str(case) if isinstance(case, int) else None
)
def test_generated_programs_identical_across_engines(idx, source):
    program = _compile(source)
    n = 10
    args = [
        np.arange(-n // 2, n - n // 2, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        n,
    ]
    _assert_equivalent(program, "f", args)


def _corpus_cases():
    from repro.corpus import generate_programs

    return [(tp.template, idx, tp) for idx, tp in enumerate(generate_programs(105, 7))]


@pytest.mark.parametrize(
    "template,idx,tp", _corpus_cases(),
    ids=lambda v: v if isinstance(v, str) else (str(v) if isinstance(v, int) else None),
)
def test_corpus_programs_identical_across_engines(template, idx, tp):
    # the corpus templates reach shapes the ad-hoc generator above never
    # emits (2-D fields, wavefront skews, task DAGs); digest parity must
    # hold across all of them, transforms included
    from repro.service.jobs import build_call_args

    program = _compile(tp.source)
    _assert_equivalent(program, tp.entry, build_call_args(tp.arg_specs, seed=0))


# ---------------------------------------------------------------------------
# C truncating division / modulo with negative operands


@pytest.mark.parametrize(
    "a,b,quotient,remainder",
    [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (1, 3, 0, 1),
        (-1, 3, 0, -1),
        (6, 3, 2, 0),
        (-6, 3, -2, 0),
        (0, 5, 0, 0),
    ],
)
def test_c_truncating_div_mod(a, b, quotient, remainder):
    assert _c_int_div(a, b, line=1) == quotient
    assert _c_int_mod(a, b, line=1) == remainder
    # invariant C guarantees: (a/b)*b + a%b == a
    assert quotient * b + remainder == a


def test_c_div_mod_by_zero_raises():
    with pytest.raises(InterpreterError, match="division by zero"):
        _c_int_div(1, 0, line=7)
    with pytest.raises(InterpreterError, match="modulo by zero"):
        _c_int_mod(1, 0, line=7)


_DIVMOD_SRC = """\
int f(int a, int b) {
    int q = a / b;
    int r = a % b;
    return q * 1000 + r * 10 + (0 - 13) / 4 + (0 - 13) % 4;
}
"""


@pytest.mark.parametrize("engine", ["compiled", "tree"])
@pytest.mark.parametrize("a,b", [(-7, 2), (7, -2), (-7, -2), (-13, 4)])
def test_negative_div_mod_through_engines(engine, a, b):
    program = _compile(_DIVMOD_SRC)
    profile, result = profile_run(program, "f", [a, b], engine=engine)
    q, r = _c_int_div(a, b, 1), _c_int_mod(a, b, 1)
    # -13/4 truncates to -3 (not -4) and -13%4 is -1 (not 3) in C
    assert result.value == q * 1000 + r * 10 + (-3) + (-1)


@pytest.mark.parametrize("engine", ["compiled", "tree"])
def test_div_by_zero_raises_in_both_engines(engine):
    program = _compile(_DIVMOD_SRC)
    with pytest.raises(InterpreterError, match="division by zero"):
        profile_run(program, "f", [1, 0], engine=engine)


# ---------------------------------------------------------------------------
# break / continue / return signal handling, mirrored across engines

_SIGNAL_SOURCES = {
    "break_inner": """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (j > i) { break; }
            s += 1;
        }
    }
    return s;
}
""",
    "continue_skips": """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 3 == 0) { continue; }
        s += i;
    }
    return s;
}
""",
    "return_from_nested_loop": """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s += 1;
            if (s >= 7) { return s; }
        }
    }
    return 0 - s;
}
""",
    "break_in_while": """\
int f(int n) {
    int s = 0;
    while (1 == 1) {
        s += 1;
        if (s >= n) { break; }
    }
    return s;
}
""",
    "continue_in_while": """\
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        i += 1;
        if (i % 2 == 0) { continue; }
        s += i;
    }
    return s;
}
""",
    "return_through_call": """\
int inner(int x) {
    for (int i = 0; i < 10; i++) {
        if (i == x) { return i * i; }
    }
    return 0 - 1;
}

int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += inner(i);
    }
    return s;
}
""",
}


@pytest.mark.parametrize("name", sorted(_SIGNAL_SOURCES), ids=str)
def test_signal_handling_identical_across_engines(name):
    program = _compile(_SIGNAL_SOURCES[name])
    _assert_equivalent(program, "f", [9])


# ---------------------------------------------------------------------------
# CLI parity: `detect --json` agrees byte-for-byte across --engine values


def test_cli_detect_json_identical_across_engines(tmp_path, capsys):
    import json

    from repro.cli import main
    from repro.patterns.schema import strip_trace_timings
    from repro.profiling.serialize import canonical_json

    src = tmp_path / "kernel.c"
    src.write_text(_SIGNAL_SOURCES["return_through_call"])
    docs = {}
    for engine in ("compiled", "tree"):
        # separate cache roots so both engines really execute (profiles are
        # engine-invariant, so a shared cache would hand the second engine
        # the first one's profile)
        cache = tmp_path / f"cache-{engine}"
        rc = main(
            [
                "detect", str(src),
                "--entry", "f", "--scalar", "9",
                "--cache-dir", str(cache),
                "--engine", engine,
                "--json", "--compact",
            ]
        )
        assert rc == 0
        docs[engine] = json.loads(capsys.readouterr().out)
    stripped = {
        engine: canonical_json(strip_trace_timings(doc))
        for engine, doc in docs.items()
    }
    assert stripped["compiled"] == stripped["tree"]


def test_run_compiled_matches_interpreter_without_sink():
    program = _compile(_SIGNAL_SOURCES["return_from_nested_loop"])
    plain = Interpreter(program).run("f", [9])
    compiled = run_compiled(program, "f", [9])
    assert compiled.value == plain.value
    assert compiled.total_cost == plain.total_cost
