"""Fault tolerance of the registry sweep: crashes, timeouts, broken pools.

The injected workers are module-level so the pool (fork start method) can
pickle them by reference; each dispatches on marker names and defers to the
real ``analyze_one`` for genuine registry programs, so the surviving slots
carry real, digest-checkable outcomes.
"""

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.runtime.parallel import (
    AnalysisTimeout,
    BenchmarkOutcome,
    FailedOutcome,
    analyze_one,
    analyze_registry,
    outcome_from_dict,
)

GOOD = "gesummv"
OTHER = "reg_detect"


def _crash_on_marker(name, cache_dir=None):
    if name == "boom":
        raise ValueError("injected worker failure")
    return analyze_one(name, cache_dir)


def _sleep_on_marker(name, cache_dir=None):
    if name == "slow":
        time.sleep(30)
    return analyze_one(name, cache_dir)


def _fail_first_attempt(name, cache_dir=None):
    # cache_dir doubles as the cross-process scratch dir for the flag file.
    flag = Path(cache_dir) / f"{name}.attempted"
    if not flag.exists():
        flag.write_text("")
        raise RuntimeError("injected transient failure")
    return analyze_one(name, None)


def _always_fail(name, cache_dir=None):
    raise RuntimeError(f"injected persistent failure for {name}")


def _exit_in_pool_child(name, cache_dir=None):
    if name == "kaboom":
        if multiprocessing.parent_process() is not None:
            os._exit(17)  # kill the worker -> BrokenProcessPool in the parent
        raise RuntimeError("injected: pool child died; running serially")
    return analyze_one(name, cache_dir)


class TestWorkerCrash:
    def test_crash_yields_partial_results_plus_failure_record(self):
        outcomes = analyze_registry(
            [GOOD, "boom", OTHER], parallel=True, analyze_fn=_crash_on_marker
        )
        assert [o.name for o in outcomes] == [GOOD, "boom", OTHER]
        good, boom, other = outcomes
        assert isinstance(good, BenchmarkOutcome)
        assert isinstance(other, BenchmarkOutcome)
        assert isinstance(boom, FailedOutcome) and not boom.ok
        assert boom.error_type == "ValueError"
        assert "injected worker failure" in boom.message
        assert boom.attempts == 1
        assert boom.traceback_summary  # points into the worker code

        # the surviving programs are byte-identical to a clean serial run
        reference = analyze_registry([GOOD, OTHER], parallel=False)
        assert [good, other] == reference

    def test_unknown_name_is_failure_not_abort(self):
        """End-to-end injection with the *default* worker: a bogus registry
        name raises KeyError in the child and must not kill the sweep."""
        outcomes = analyze_registry([GOOD, "no_such_benchmark"], parallel=True)
        assert isinstance(outcomes[0], BenchmarkOutcome)
        failure = outcomes[1]
        assert isinstance(failure, FailedOutcome)
        assert failure.error_type == "KeyError"
        assert "no_such_benchmark" in failure.message

    def test_serial_and_parallel_agree_on_failures(self):
        serial = analyze_registry(
            [GOOD, "boom"], parallel=False, analyze_fn=_crash_on_marker
        )
        parallel = analyze_registry(
            [GOOD, "boom"], parallel=True, analyze_fn=_crash_on_marker
        )
        assert serial[0] == parallel[0]  # full outcome incl. profile digest
        assert (serial[1].name, serial[1].error_type, serial[1].attempts) == (
            parallel[1].name,
            parallel[1].error_type,
            parallel[1].attempts,
        )


class TestTimeout:
    def test_timed_out_program_fails_others_complete(self):
        outcomes = analyze_registry(
            ["slow", GOOD],
            parallel=True,
            timeout=0.5,
            analyze_fn=_sleep_on_marker,
        )
        slow, good = outcomes
        assert isinstance(slow, FailedOutcome)
        assert slow.error_type == "AnalysisTimeout"
        assert "exceeded 0.5s" in slow.message
        assert isinstance(good, BenchmarkOutcome)

    def test_serial_timeout_path(self):
        (slow,) = analyze_registry(
            ["slow"], parallel=False, timeout=0.5, analyze_fn=_sleep_on_marker
        )
        assert isinstance(slow, FailedOutcome)
        assert slow.error_type == "AnalysisTimeout"

    def test_alarm_is_cancelled_after_success(self):
        """A fast analysis under a timeout must not leave a pending alarm."""
        import signal

        (good,) = analyze_registry(["gesummv"], parallel=False, timeout=60.0)
        assert isinstance(good, BenchmarkOutcome)
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestRetry:
    def test_transient_failure_recovers_on_retry(self, tmp_path):
        outcomes = analyze_registry(
            [GOOD],
            parallel=True,
            retries=1,
            backoff=0.01,
            cache_dir=str(tmp_path),
            analyze_fn=_fail_first_attempt,
        )
        assert isinstance(outcomes[0], BenchmarkOutcome)
        assert (tmp_path / f"{GOOD}.attempted").exists()

    def test_exhausted_retries_count_attempts(self):
        (failure,) = analyze_registry(
            [GOOD], parallel=True, retries=2, backoff=0.0, analyze_fn=_always_fail
        )
        assert isinstance(failure, FailedOutcome)
        assert failure.attempts == 3  # 1 original + 2 retries
        assert failure.error_type == "RuntimeError"


class TestBrokenPool:
    def test_degrades_to_serial_and_keeps_completed_work(self):
        outcomes = analyze_registry(
            [GOOD, "kaboom", OTHER],
            parallel=True,
            max_workers=2,
            analyze_fn=_exit_in_pool_child,
        )
        assert [o.name for o in outcomes] == [GOOD, "kaboom", OTHER]
        assert isinstance(outcomes[0], BenchmarkOutcome)
        assert isinstance(outcomes[2], BenchmarkOutcome)
        failure = outcomes[1]
        assert isinstance(failure, FailedOutcome)
        # the serial fallback re-ran the program in-process, where the
        # injected fault raises instead of killing the child
        assert failure.error_type == "RuntimeError"
        assert "serially" in failure.message

        reference = analyze_registry([GOOD, OTHER], parallel=False)
        assert [outcomes[0], outcomes[2]] == reference


class TestFailFast:
    def test_serial_stops_at_first_failure(self):
        outcomes = analyze_registry(
            ["boom", GOOD], parallel=False, fail_fast=True,
            analyze_fn=_crash_on_marker,
        )
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], FailedOutcome)

    def test_keep_going_default_reports_every_slot(self):
        outcomes = analyze_registry(
            ["boom", GOOD], parallel=False, analyze_fn=_crash_on_marker
        )
        assert len(outcomes) == 2
        assert isinstance(outcomes[1], BenchmarkOutcome)

    def test_parallel_fail_fast_preserves_order_of_resolved(self):
        outcomes = analyze_registry(
            [GOOD, "boom", OTHER],
            parallel=True,
            fail_fast=True,
            analyze_fn=_crash_on_marker,
        )
        assert any(isinstance(o, FailedOutcome) for o in outcomes)
        resolved = [o.name for o in outcomes]
        expected_order = [n for n in [GOOD, "boom", OTHER] if n in resolved]
        assert resolved == expected_order


class TestEmptyInput:
    def test_empty_names_spawn_no_pool(self, monkeypatch):
        def _forbidden(*_a, **_k):  # pragma: no cover - would mean a bug
            raise AssertionError("ProcessPoolExecutor constructed for []")

        monkeypatch.setattr(
            "repro.runtime.parallel.ProcessPoolExecutor", _forbidden
        )
        assert analyze_registry([], parallel=True) == []
        assert analyze_registry([], parallel=False) == []


class TestFailureRecordSchema:
    FAILURE = FailedOutcome(
        name="bad_prog",
        error_type="ValueError",
        message="injected",
        traceback_summary="worker.py:3 in _crash",
        attempts=2,
    )

    def test_round_trip(self):
        doc = self.FAILURE.to_dict()
        assert doc["failed"] is True and "schema_version" in doc
        assert FailedOutcome.from_dict(doc) == self.FAILURE

    def test_outcome_from_dict_dispatches_both_kinds(self):
        assert outcome_from_dict(self.FAILURE.to_dict()) == self.FAILURE
        success = analyze_one(GOOD)
        assert outcome_from_dict(success.to_dict()) == success

    def test_version_gate(self):
        doc = self.FAILURE.to_dict()
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="version"):
            FailedOutcome.from_dict(doc)

    def test_kind_mismatch_rejected(self):
        doc = self.FAILURE.to_dict()
        doc.pop("failed")
        with pytest.raises(ValueError):
            FailedOutcome.from_dict(doc)
        with pytest.raises(ValueError):
            BenchmarkOutcome.from_dict(self.FAILURE.to_dict())

    def test_timeout_is_runtime_error(self):
        assert issubclass(AnalysisTimeout, RuntimeError)
