"""Profile serialization round-trip tests."""

import io

import numpy as np
import pytest

from repro.patterns.engine import analyze_profile, summarize_patterns
from repro.profiling import profile_run
from repro.profiling.serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

from conftest import parsed


def roundtrip(profile):
    fh = io.StringIO()
    save_profile(profile, fh)
    fh.seek(0)
    return load_profile(fh)


@pytest.fixture()
def rich_profile(pipeline_program):
    profile, _ = profile_run(
        pipeline_program, "kernel", [np.ones(16), np.zeros(16), 16]
    )
    return pipeline_program, profile


class TestRoundTrip:
    def test_scalars(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        assert back.total_cost == profile.total_cost
        assert back.runs == profile.runs
        assert back.unique_array_addresses == profile.unique_array_addresses
        assert back.array_accesses == profile.array_accesses

    def test_deps_exact(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        assert back.deps == profile.deps

    def test_tables_exact(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        assert back.loop_var_writes == profile.loop_var_writes
        assert back.loop_var_reads == profile.loop_var_reads
        assert back.read_first == profile.read_first
        assert back.pairs == profile.pairs
        assert back.line_costs == profile.line_costs
        assert back.site_costs == profile.site_costs
        assert back.loop_trips == profile.loop_trips

    def test_pet_structure(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        orig_nodes = [(n.region, n.kind, n.invocations) for n in profile.pet.walk()]
        back_nodes = [(n.region, n.kind, n.invocations) for n in back.pet.walk()]
        assert orig_nodes == back_nodes
        assert back.pet.inclusive_cost == profile.pet.inclusive_cost

    def test_calltree_structure(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        orig = [(n.region, n.kind, n.inclusive_cost) for n in profile.calltree.walk()]
        new = [(n.region, n.kind, n.inclusive_cost) for n in back.calltree.walk()]
        assert orig == new

    def test_recursive_pet_roundtrips(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [10])
        back = roundtrip(profile)
        assert back.pet.recursive
        assert back.pet.invocations == profile.pet.invocations

    def test_detection_identical_after_roundtrip(self, rich_profile):
        program, profile = rich_profile
        before = summarize_patterns(analyze_profile(program, profile))
        after = summarize_patterns(analyze_profile(program, roundtrip(profile)))
        assert before == after == "Multi-loop pipeline"

    def test_streaming_fraction_preserved(self, rich_profile):
        _, profile = rich_profile
        back = roundtrip(profile)
        assert back.streaming_fraction == pytest.approx(profile.streaming_fraction)


class TestVersioning:
    def test_unknown_version_rejected(self, rich_profile):
        _, profile = rich_profile
        data = profile_to_dict(profile)
        data["version"] = 99
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_empty_profile(self):
        prog = parsed("int f() { return 1; }")
        profile, _ = profile_run(prog, "f", [])
        back = roundtrip(profile)
        assert back.deps == profile.deps == {}
