"""Job store lifecycle, executor fault isolation, and job-record envelope."""

import json
import threading

import numpy as np
import pytest

from repro.patterns.schema import (
    JOB_STATES,
    SCHEMA_VERSION,
    job_record,
    strip_trace_timings,
    validate_job_record,
)
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import (
    Job,
    JobStore,
    QueueFull,
    build_call_args,
    job_digest,
)

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]


def _source_payload():
    return {"source": SRC, "entry": "total", "args": SRC_ARGS, "seed": 0}


class TestBuildCallArgs:
    def test_kinds(self):
        args = build_call_args([("scalar", "5"), ("zeros", "A:3,4"), ("rand", "B:8")])
        assert args[0] == 5
        assert args[1].shape == (3, 4) and not args[1].any()
        assert args[2].shape == (8,)

    def test_scalar_float(self):
        assert build_call_args([("scalar", "0.5")]) == [0.5]

    def test_seed_determinism(self):
        a = build_call_args([("rand", "A:16")], seed=7)[0]
        b = build_call_args([("rand", "A:16")], seed=7)[0]
        c = build_call_args([("rand", "A:16")], seed=8)[0]
        assert np.array_equal(a, b) and not np.array_equal(a, c)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown argument kind"):
            build_call_args([("ones", "A:4")])


class TestJobStore:
    def test_monotonic_ids_and_lifecycle(self):
        store = JobStore()
        a = store.submit("bench", {"name": "x"})
        b = store.submit("bench", {"name": "y"})
        assert (a.id, b.id) == (1, 2)
        assert a.state == "queued"

        claimed = store.claim(timeout=0.1)
        assert claimed.id == 1 and claimed.state == "running"
        assert claimed.started_at is not None

        store.finish(1, {"ok": True}, info={"note": 1})
        assert store.get(1).state == "done"
        assert store.get(1).finished_at is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobStore().submit("mystery", {})

    def test_cancel_while_queued_is_immediate(self):
        store = JobStore()
        job = store.submit("bench", {"name": "x"})
        store.cancel(job.id)
        assert store.get(job.id).state == "cancelled"
        # a cancelled entry left in the queue is skipped by claim
        assert store.claim(timeout=0.05) is None

        with pytest.raises(KeyError):
            store.cancel(999)

    def test_cancel_while_running_is_cooperative(self):
        store = JobStore()
        job = store.submit("bench", {"name": "y"})
        store.claim(timeout=0.1)
        # cancel mid-run: the job keeps running but is marked, and the
        # worker's completion lands as cancelled with the result discarded
        cancelled = store.cancel(job.id)
        assert cancelled.state == "running" and cancelled.cancel_requested
        store.finish(job.id, {"discard": "me"})
        final = store.get(job.id)
        assert final.state == "cancelled"
        assert final.result is None
        assert final.info["completed_as"] == "done"
        # now terminal: a second cancel conflicts
        with pytest.raises(ValueError, match="already terminal"):
            store.cancel(job.id)

    def test_fail_records_error(self):
        store = JobStore()
        job = store.submit("source", _source_payload())
        store.claim(timeout=0.1)
        store.fail(job.id, {"failed": True, "error_type": "Boom"})
        assert store.get(job.id).state == "failed"
        assert store.get(job.id).error["error_type"] == "Boom"

    def test_bounded_history_evicts_oldest_terminal(self):
        store = JobStore(max_history=2)
        ids = []
        for _ in range(4):
            job = store.submit("bench", {"name": "x"})
            store.claim(timeout=0.1)
            store.finish(job.id, None)
            ids.append(job.id)
        assert store.get(ids[0]) is None and store.get(ids[1]) is None
        assert store.get(ids[2]) is not None and store.get(ids[3]) is not None
        assert store.counts()["evicted"] == 2

    def test_history_bound_spares_live_jobs(self):
        # only terminal jobs count against max_history; a job still running
        # survives any number of evictions around it (distinct names so the
        # later submissions don't coalesce onto the running one)
        store = JobStore(max_history=1)
        live = store.submit("bench", {"name": "x"})
        store.claim(timeout=0.1)  # `live` is now running
        for n in range(3):
            job = store.submit("bench", {"name": f"y{n}"})
            store.claim(timeout=0.1)
            store.finish(job.id, None)
        assert store.get(live.id).state == "running"
        store.finish(live.id, None)
        assert store.get(live.id).state == "done"

    def test_jsonl_persistence(self, tmp_path):
        log = tmp_path / "jobs.jsonl"
        store = JobStore(jsonl_path=str(log))
        job = store.submit("source", _source_payload())
        store.claim(timeout=0.1)
        store.finish(job.id, {"schema_version": SCHEMA_VERSION})
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert [doc["state"] for doc in lines] == ["queued", "running", "done"]
        # structured log lines: event + correlation id + the versioned
        # job-record envelope under "record"
        for doc in lines:
            assert doc["event"] == "job.transition"
            assert doc["correlation_id"] == job.correlation_id
            validate_job_record(doc["record"])
        # source text never leaks into records — only its digest
        payload = lines[0]["record"]["payload"]
        assert "source" not in payload
        assert len(payload["source_sha256"]) == 64

    def test_persistence_failure_is_best_effort(self, tmp_path):
        store = JobStore(jsonl_path=str(tmp_path / "no" / "such" / "dir" / "x.jsonl"))
        job = store.submit("bench", {"name": "x"})
        assert job.state == "queued"
        assert store.persist_errors == 1

    def test_list_filters(self):
        store = JobStore()
        store.submit("bench", {"name": "x"})
        job = store.submit("source", _source_payload())
        store.claim(timeout=0.1)
        assert [j.id for j in store.list_jobs(state="queued")] == [job.id]
        assert [j.id for j in store.list_jobs(kind="bench")] == [1]

    def test_close_wakes_claimers(self):
        store = JobStore()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(store.claim(timeout=10.0))
        )
        thread.start()
        store.close()
        thread.join(timeout=5.0)
        assert results == [None]
        with pytest.raises(RuntimeError, match="closed"):
            store.submit("bench", {"name": "x"})


class TestJobDigest:
    def test_identical_submissions_share_a_digest(self):
        assert job_digest("bench", {"name": "x"}) == job_digest("bench", {"name": "x"})
        assert job_digest("bench", {"name": "x"}) != job_digest("bench", {"name": "y"})

    def test_kind_is_part_of_the_address(self):
        assert job_digest("bench", {"name": "x"}) != job_digest("sweep", {"name": "x"})

    def test_source_digest_tracks_inputs_and_threshold(self):
        base = _source_payload()
        assert job_digest("source", base) == job_digest("source", dict(base))
        assert job_digest("source", base) != job_digest("source", {**base, "seed": 1})
        assert job_digest("source", base) != job_digest(
            "source", {**base, "threshold": 0.5}
        )

    def test_malformed_args_raise_at_digest_time(self):
        with pytest.raises(ValueError, match="unknown argument kind"):
            job_digest("source", {**_source_payload(), "args": [["ones", "A:4"]]})


class TestCoalescing:
    def test_identical_inflight_submission_becomes_follower(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        follower = store.submit("bench", {"name": "x"})
        assert follower.coalesced_with == leader.id
        assert follower.digest == leader.digest
        assert store.counts()["coalesced"] == 1
        # the follower never enters the queue
        assert store.claim(timeout=0.1).id == leader.id
        assert store.claim(timeout=0.05) is None

    def test_followers_receive_the_leaders_result(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        followers = [store.submit("bench", {"name": "x"}) for _ in range(3)]
        store.claim(timeout=0.1)
        result = {"the": "document"}
        store.finish(leader.id, result)
        for f in followers:
            record = store.get(f.id)
            assert record.state == "done"
            # the same object — byte-identity is structural
            assert record.result is result

    def test_followers_receive_the_leaders_failure(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        follower = store.submit("bench", {"name": "x"})
        store.claim(timeout=0.1)
        store.fail(leader.id, {"failed": True, "error_type": "Boom"})
        assert store.get(follower.id).state == "failed"
        assert store.get(follower.id).error["error_type"] == "Boom"

    def test_terminal_leader_does_not_absorb_new_submissions(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        store.claim(timeout=0.1)
        store.finish(leader.id, {"ok": 1})
        again = store.submit("bench", {"name": "x"})
        assert again.coalesced_with is None
        assert store.claim(timeout=0.1).id == again.id

    def test_cancelling_a_follower_detaches_only_it(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        follower = store.submit("bench", {"name": "x"})
        keeper = store.submit("bench", {"name": "x"})
        store.cancel(follower.id)
        assert store.get(follower.id).state == "cancelled"
        store.claim(timeout=0.1)
        store.finish(leader.id, {"ok": 1})
        assert store.get(follower.id).state == "cancelled"
        assert store.get(keeper.id).state == "done"

    def test_cancelling_a_queued_leader_promotes_oldest_follower(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        first = store.submit("bench", {"name": "x"})
        second = store.submit("bench", {"name": "x"})
        store.cancel(leader.id)
        assert store.get(leader.id).state == "cancelled"
        promoted = store.get(first.id)
        assert promoted.coalesced_with is None
        assert store.get(second.id).coalesced_with == first.id
        claimed = store.claim(timeout=0.1)
        assert claimed.id == first.id
        store.finish(first.id, {"ok": 1})
        assert store.get(second.id).state == "done"

    def test_cancel_requested_leader_rejects_new_followers(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        store.claim(timeout=0.1)
        store.cancel(leader.id)  # cooperative — still running
        fresh = store.submit("bench", {"name": "x"})
        assert fresh.coalesced_with is None

    def test_followers_get_real_outcome_when_leader_cancelled_midrun(self):
        store = JobStore()
        leader = store.submit("bench", {"name": "x"})
        follower = store.submit("bench", {"name": "x"})
        store.claim(timeout=0.1)
        store.cancel(leader.id)
        result = {"computed": "anyway"}
        store.finish(leader.id, result)
        # the canceller's record discards; the follower keeps the work
        assert store.get(leader.id).state == "cancelled"
        assert store.get(follower.id).state == "done"
        assert store.get(follower.id).result is result

    def test_coalescing_can_be_disabled(self):
        store = JobStore(coalesce=False)
        store.submit("bench", {"name": "x"})
        second = store.submit("bench", {"name": "x"})
        assert second.coalesced_with is None
        assert store.counts()["coalesced"] == 0


class TestAdmissionControl:
    def test_queue_full_rejects_submission(self):
        store = JobStore(max_queue=2)
        store.submit("bench", {"name": "a"})
        store.submit("bench", {"name": "b"})
        with pytest.raises(QueueFull) as exc_info:
            store.submit("bench", {"name": "c"})
        assert exc_info.value.depth == 2
        assert store.counts()["rejected"] == 1

    def test_followers_bypass_the_bound(self):
        store = JobStore(max_queue=1)
        store.submit("bench", {"name": "a"})
        # identical work adds no load — coalesced even at the bound
        follower = store.submit("bench", {"name": "a"})
        assert follower.coalesced_with is not None

    def test_draining_reopens_admission(self):
        store = JobStore(max_queue=1)
        job = store.submit("bench", {"name": "a"})
        with pytest.raises(QueueFull):
            store.submit("bench", {"name": "b"})
        store.claim(timeout=0.1)  # running no longer counts as queued
        accepted = store.submit("bench", {"name": "b"})
        assert accepted.state == "queued"
        store.finish(job.id, None)


class TestListLimit:
    def test_limit_returns_newest_first(self):
        store = JobStore()
        ids = [store.submit("bench", {"name": f"n{i}"}).id for i in range(5)]
        newest_two = store.list_jobs(limit=2)
        assert [j.id for j in newest_two] == [ids[-1], ids[-2]]

    def test_unlimited_is_newest_first_too(self):
        # one documented order: limit only truncates, it never reorders
        store = JobStore()
        ids = [store.submit("bench", {"name": f"n{i}"}).id for i in range(5)]
        assert [j.id for j in store.list_jobs()] == ids[::-1]
        assert [j.id for j in store.list_jobs(limit=3)] == ids[::-1][:3]

    def test_limit_composes_with_filters(self):
        store = JobStore()
        store.submit("bench", {"name": "a"})
        store.submit("sweep", {"names": ["a"]})
        b = store.submit("bench", {"name": "b"})
        assert [j.id for j in store.list_jobs(kind="bench", limit=1)] == [b.id]

    def test_limit_zero_is_empty(self):
        store = JobStore()
        store.submit("bench", {"name": "a"})
        assert store.list_jobs(limit=0) == []


class TestJobRecordEnvelope:
    def test_round_trip(self):
        doc = Job(id=3, kind="bench", payload={"name": "fib"}).to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["record"] == "job"
        assert validate_job_record(doc) is doc
        # provenance fields ride in the envelope with safe defaults
        assert doc["digest"] == ""
        assert doc["coalesced_with"] is None
        assert doc["backend"] == "thread"

    def test_rejects_malformed_provenance_fields(self):
        good = Job(id=1, kind="bench", payload={}).to_dict()
        with pytest.raises(ValueError, match="coalesced_with"):
            validate_job_record({**good, "coalesced_with": "seven"})
        with pytest.raises(ValueError, match="digest"):
            validate_job_record({**good, "digest": 123})

    def test_rejects_bad_version_state_and_kind(self):
        good = Job(id=1, kind="bench", payload={}).to_dict()
        with pytest.raises(ValueError, match="schema version"):
            validate_job_record({**good, "schema_version": 99})
        with pytest.raises(ValueError, match="not a job record"):
            validate_job_record({**good, "record": "analysis"})
        with pytest.raises(ValueError, match="unknown job state"):
            validate_job_record({**good, "state": "paused"})

    def test_states_cover_lifecycle(self):
        assert set(JOB_STATES) == {"queued", "running", "done", "failed", "cancelled"}

    def test_job_record_stamps_without_mutating(self):
        raw = {"id": 1, "state": "queued"}
        stamped = job_record(raw)
        assert "schema_version" not in raw
        assert stamped["schema_version"] == SCHEMA_VERSION

    def test_strip_trace_timings(self):
        doc = {
            "trace": {"stages": [{"detector": "d", "wall_time_s": 1.5}], "evidence": []},
            "other": 1,
        }
        stripped = strip_trace_timings(doc)
        assert stripped["trace"]["stages"][0]["wall_time_s"] == 0.0
        assert doc["trace"]["stages"][0]["wall_time_s"] == 1.5
        assert strip_trace_timings({"trace": None})["trace"] is None


class TestExecutor:
    def _executor(self, tmp_path, **kw):
        store = JobStore()
        executor = AnalysisExecutor(store, cache_dir=str(tmp_path / "cache"), **kw)
        executor.start()
        return store, executor

    def _wait_terminal(self, store, job_id, timeout=60.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = store.get(job_id)
            if job.state in ("done", "failed", "cancelled"):
                return job
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} still {store.get(job_id).state}")

    def test_source_job_done_with_analysis_doc(self, tmp_path):
        store, executor = self._executor(tmp_path, workers=1)
        try:
            job = store.submit("source", _source_payload())
            done = self._wait_terminal(store, job.id)
            assert done.state == "done"
            assert done.result["schema_version"] == SCHEMA_VERSION
            assert done.result["program"]["source"] == SRC
            assert done.info["profile_cache_hit"] is False
            assert done.info["queue_wait_s"] >= 0.0
        finally:
            executor.shutdown()

    def test_repeat_submission_hits_cache(self, tmp_path):
        store, executor = self._executor(tmp_path, workers=1)
        try:
            first = store.submit("source", _source_payload())
            self._wait_terminal(store, first.id)
            second = store.submit("source", _source_payload())
            done = self._wait_terminal(store, second.id)
            assert done.info["profile_cache_hit"] is True
            assert executor.cache.stats.hits == 1
        finally:
            executor.shutdown()

    def test_crashing_job_fails_with_error_envelope(self, tmp_path):
        """A worker crash becomes a failed record; the pool keeps serving."""
        store, executor = self._executor(tmp_path, workers=1)
        try:
            bad = store.submit("source", {"source": "void f() { x = 1; }", "entry": "f"})
            failed = self._wait_terminal(store, bad.id)
            assert failed.state == "failed"
            assert failed.error["failed"] is True
            assert failed.error["schema_version"] == SCHEMA_VERSION
            assert failed.error["error_type"] == "ValidationError"
            assert failed.error["attempts"] == 1
            assert failed.error["traceback_summary"]
            # the same worker thread survives to run the next job
            good = store.submit("source", _source_payload())
            assert self._wait_terminal(store, good.id).state == "done"
        finally:
            executor.shutdown()

    def test_retries_consume_budget(self, tmp_path):
        store, executor = self._executor(tmp_path, workers=1, backoff=0.01)
        try:
            bad = store.submit(
                "source",
                {"source": "void f() { x = 1; }", "entry": "f", "retries": 2},
            )
            failed = self._wait_terminal(store, bad.id)
            assert failed.error["attempts"] == 3
        finally:
            executor.shutdown()

    def test_saturation_respects_worker_bound(self, tmp_path):
        store, executor = self._executor(tmp_path, workers=2)
        try:
            # distinct seeds give distinct digests — all eight really run
            jobs = [
                store.submit("source", {**_source_payload(), "seed": n})
                for n in range(8)
            ]
            records = [self._wait_terminal(store, job.id) for job in jobs]
            assert all(job.state == "done" for job in records)
            assert executor.peak_busy <= 2
        finally:
            executor.shutdown()

    def test_bench_job_returns_outcome_record(self, tmp_path):
        store, executor = self._executor(tmp_path, workers=1)
        try:
            job = store.submit("bench", {"name": "reg_detect"})
            done = self._wait_terminal(store, job.id, timeout=120.0)
            assert done.state == "done"
            assert done.result["name"] == "reg_detect"
            assert done.result["label"] == "Multi-loop pipeline"
            assert done.result["schema_version"] == SCHEMA_VERSION
        finally:
            executor.shutdown()
