"""Task-commutation validation tests: swapped independent CUs must
commute; dependent CUs must not be swappable or must change results."""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.runtime import run_program
from repro.runtime.replay import results_equal
from repro.transform.reorder import (
    ReorderError,
    swap_cu_statements,
    validate_concurrent_tasks,
)

from conftest import parsed

INDEPENDENT = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 2.0 + sqrt(i + 1.0);
    }
    for (int j = 0; j < n; j++) {
        B[j] = j * 3.0 + sqrt(j + 2.0);
    }
}
"""


def task_of(src, entry, args):
    prog = parsed(src)
    result = analyze(prog, entry, [args])
    region = prog.function(entry).region_id
    return prog, result.tasks[region]


class TestSwap:
    def test_independent_loops_commute(self):
        args = [np.zeros(12), np.zeros(12), 12]
        prog, task = task_of(INDEPENDENT, "f", args)
        a, b = task.concurrent_tasks
        swapped = swap_cu_statements(prog, task, a, b)
        r1 = run_program(prog, "f", args)
        r2 = run_program(swapped, "f", args)
        assert results_equal(r1, r2)

    def test_swap_changes_source_order(self):
        args = [np.zeros(8), np.zeros(8), 8]
        prog, task = task_of(INDEPENDENT, "f", args)
        a, b = task.concurrent_tasks
        swapped = swap_cu_statements(prog, task, a, b)
        assert swapped.source.index("B[j]") < swapped.source.index("A[i]")

    def test_dependent_cus_do_not_commute(self):
        src = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 2.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] + 1.0;
    }
}
"""
        args = [np.zeros(8), np.zeros(8), 8]
        prog, task = task_of(src, "f", args)
        cu_ids = [cu.cu_id for cu in task.cus]
        swapped = swap_cu_statements(prog, task, cu_ids[0], cu_ids[1])
        r1 = run_program(prog, "f", args)
        r2 = run_program(swapped, "f", args)
        assert not results_equal(r1, r2)

    def test_unknown_cu_rejected(self):
        args = [np.zeros(8), np.zeros(8), 8]
        prog, task = task_of(INDEPENDENT, "f", args)
        with pytest.raises(ReorderError):
            swap_cu_statements(prog, task, 0, 99)


class TestValidate:
    def test_independent_program_passes(self):
        args = [np.zeros(12), np.zeros(12), 12]
        prog, task = task_of(INDEPENDENT, "f", args)
        checked, failed = validate_concurrent_tasks(prog, "f", args, task)
        assert checked == 1
        assert failed == 0

    def test_three_way_independence(self):
        src = """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0 + sqrt(i + 1.0); }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0 + sqrt(j + 2.0); }
    for (int k = 0; k < n; k++) { C[k] = k * 3.0 + sqrt(k + 3.0); }
}
"""
        args = [np.zeros(10), np.zeros(10), np.zeros(10), 10]
        prog, task = task_of(src, "f", args)
        checked, failed = validate_concurrent_tasks(prog, "f", args, task)
        assert checked == 3  # all pairs
        assert failed == 0

    def test_fib_calls_commute(self, fib_program):
        result = analyze(fib_program, "fib", [[10]])
        task = result.tasks[fib_program.function("fib").region_id]
        checked, failed = validate_concurrent_tasks(fib_program, "fib", [10], task)
        assert checked >= 1
        assert failed == 0

    def test_registry_task_benchmarks_commute(self):
        from repro.bench_programs import analyze_benchmark, get_benchmark

        for name in ("mvt", "3mm"):
            spec = get_benchmark(name)
            result = analyze_benchmark(name)
            task = result.best_task_parallelism()
            assert task is not None
            checked, failed = validate_concurrent_tasks(
                spec.program, spec.entry, spec.arg_sets()[0], task, atol=1e-7
            )
            assert checked >= 1, name
            assert failed == 0, name
