"""Parser edge cases and DOT escaping."""

import pytest

from repro.errors import ParseError
from repro.lang.parser import parse_program
from repro.reporting.dot import _esc


class TestParserEdges:
    def test_empty_program(self):
        prog = parse_program("")
        assert prog.functions == [] and prog.globals == []

    def test_comment_only_program(self):
        prog = parse_program("// nothing here\n/* at all */\n")
        assert prog.functions == []

    def test_empty_for_clauses(self):
        prog = parse_program("void f() { for (;;) { break; } }")
        loop = prog.function("f").body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_for_with_assignment_init(self):
        prog = parse_program("void f(int i, int n) { for (i = 0; i < n; i++) { } }")
        loop = prog.function("f").body[0]
        assert loop.induction_vars == frozenset({"i"})

    def test_deeply_nested_expression(self):
        depth = 40
        expr = "1" + " + 1" * depth
        prog = parse_program(f"int f() {{ return {expr}; }}")
        assert prog.has_function("f")

    def test_deeply_nested_parens(self):
        expr = "(" * 30 + "5" + ")" * 30
        prog = parse_program(f"int f() {{ return {expr}; }}")
        assert prog.has_function("f")

    def test_unary_plus_absorbed(self):
        prog = parse_program("int f(int a) { return +a; }")
        stmt = prog.function("f").body[0]
        from repro.lang.ast_nodes import VarRef

        assert isinstance(stmt.value, VarRef)

    def test_decrement_sugar(self):
        prog = parse_program("void f(int n) { n--; }")
        stmt = prog.function("f").body[0]
        assert stmt.op == "-="

    def test_chained_else_if_depth(self):
        src = "void f(int n) {\n"
        src += "if (n == 0) { n = 0; }\n"
        for i in range(1, 8):
            src += f"else if (n == {i}) {{ n = {i}; }}\n"
        src += "}"
        prog = parse_program(src)
        # the chain nests: each else body holds the next if
        stmt = prog.function("f").body[0]
        depth = 0
        while stmt.else_body:
            stmt = stmt.else_body[0]
            depth += 1
        assert depth == 7

    def test_call_statement_with_no_args(self):
        prog = parse_program("void g() { }\nvoid f() { g(); }")
        assert prog.has_function("f")

    def test_missing_paren_reports_line(self):
        with pytest.raises(ParseError) as exc:
            parse_program("void f() {\n  if (1 { }\n}")
        assert exc.value.line == 2

    def test_assignment_in_condition_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int n) { if (n = 1) { } }")

    def test_trailing_garbage_after_function(self):
        with pytest.raises(ParseError):
            parse_program("void f() { } garbage")


class TestDotEscaping:
    def test_quotes_escaped(self):
        assert _esc('say "hi"') == 'say \\"hi\\"'

    def test_plain_text_unchanged(self):
        assert _esc("plain") == "plain"
