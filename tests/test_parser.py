"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import parse_program
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    For,
    If,
    IntLit,
    Return,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)


def body_of(src, func="f"):
    return parse_program(src).function(func).body


class TestTopLevel:
    def test_global_scalar(self):
        prog = parse_program("int g = 3;")
        assert prog.globals[0].name == "g"
        assert prog.globals[0].init.value == 3

    def test_global_array(self):
        prog = parse_program("float A[10][20];")
        g = prog.globals[0]
        assert [d.value for d in g.dims] == [10, 20]

    def test_function_signature(self):
        prog = parse_program("int f(int a, float b) { return a; }")
        f = prog.function("f")
        assert f.ret_type == "int"
        assert [(p.type, p.name) for p in f.params] == [("int", "a"), ("float", "b")]

    def test_array_parameter_rank(self):
        prog = parse_program("void f(float A[][], int n) { }")
        assert prog.function("f").params[0].array_rank == 2

    def test_reference_parameter(self):
        prog = parse_program("void f(int &acc) { acc = 1; }")
        assert prog.function("f").params[0].by_ref

    def test_reference_array_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int &A[]) { }")


class TestStatements:
    def test_declaration_with_init(self):
        stmt = body_of("void f() { int x = 1 + 2; }")[0]
        assert isinstance(stmt, VarDecl)
        assert isinstance(stmt.init, BinOp)

    def test_if_else(self):
        stmt = body_of("void f(int n) { if (n > 0) { n = 1; } else { n = 2; } }")[0]
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        stmt = body_of(
            "void f(int n) { if (n > 0) { n = 1; } else if (n < 0) { n = 2; } }"
        )[0]
        assert isinstance(stmt.else_body[0], If)

    def test_for_loop_parts(self):
        stmt = body_of("void f(int n) { for (int i = 0; i < n; i++) { n = n; } }")[0]
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, VarDecl)
        assert isinstance(stmt.step, Assign)
        assert stmt.step.op == "+="

    def test_for_induction_vars(self):
        stmt = body_of("void f(int n) { for (int i = 0; i < n; i++) { n = n; } }")[0]
        assert stmt.induction_vars == frozenset({"i"})

    def test_while_loop(self):
        stmt = body_of("void f(int n) { while (n > 0) { n = n - 1; } }")[0]
        assert isinstance(stmt, While)

    def test_unbraced_bodies(self):
        stmt = body_of("void f(int n) { if (n) n = 1; else n = 2; }")[0]
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_compound_assignment(self):
        stmt = body_of("void f(int n) { n *= 3; }")[0]
        assert stmt.op == "*="

    def test_increment_sugar(self):
        stmt = body_of("void f(int n) { n++; }")[0]
        assert stmt.op == "+=" and stmt.value.value == 1

    def test_array_assignment(self):
        stmt = body_of("void f(float A[][]) { A[1][2] = 3.0; }")[0]
        assert isinstance(stmt.target, ArrayLV)
        assert len(stmt.target.indices) == 2

    def test_call_statement(self):
        stmt = body_of("void g() { } void f() { g(); }")[0]
        assert isinstance(stmt.expr, Call)

    def test_return_void(self):
        stmt = body_of("void f() { return; }")[0]
        assert isinstance(stmt, Return) and stmt.value is None


class TestExpressions:
    def expr(self, text):
        return body_of(f"void f(int a, int b, int c) {{ a = {text}; }}")[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_compare_over_and(self):
        e = self.expr("a < b && b < c")
        assert e.op == "&&"

    def test_parentheses(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_unary_minus(self):
        e = self.expr("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, UnaryOp)

    def test_unary_not(self):
        e = self.expr("!a")
        assert isinstance(e, UnaryOp) and e.op == "!"

    def test_call_with_args(self):
        e = self.expr("max(a, b + 1)")
        assert isinstance(e, Call) and len(e.args) == 2

    def test_array_index_expression(self):
        src = "void f(float A[], int i) { float x = A[i + 1]; }"
        decl = body_of(src)[0]
        assert isinstance(decl.init, ArrayRef)

    def test_left_associativity(self):
        e = self.expr("a - b - c")
        assert e.op == "-"
        assert e.left.op == "-"
        assert isinstance(e.right, VarRef)


class TestIds:
    def test_regions_assigned(self):
        prog = parse_program(
            "void f(int n) { for (int i = 0; i < n; i++) { while (n) { n = 0; } } }"
        )
        kinds = [r.kind for r in prog.regions.values()]
        assert kinds.count("function") == 1
        assert kinds.count("loop") == 2

    def test_loop_region_parents(self):
        prog = parse_program(
            "void f(int n) { for (int i = 0; i < n; i++) { while (n) { n = 0; } } }"
        )
        loops = [r for r in prog.regions.values() if r.kind == "loop"]
        outer = next(l for l in loops if l.name.startswith("for"))
        inner = next(l for l in loops if l.name.startswith("while"))
        assert inner.parent == outer.region_id
        assert outer.parent == prog.function("f").region_id

    def test_stmt_ids_unique(self):
        prog = parse_program("void f(int n) { n = 1; n = 2; if (n) { n = 3; } }")
        ids = list(prog.stmts.keys())
        assert len(ids) == len(set(ids))


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("void f() { int x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("void f() { int x = 1;")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse_program("x = 1;")

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as exc:
            parse_program("void f() {\n  int x = ;\n}")
        assert exc.value.line == 2

    def test_array_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f() { int A[3] = 1; }")
