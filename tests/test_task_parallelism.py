"""Task parallelism tests: Algorithm 1, barrier parallelism, antichains,
and the estimated-speedup metric."""

import numpy as np
import pytest

from repro.cu.model import CU
from repro.graphs.digraph import DiGraph
from repro.patterns.tasks import (
    classify_cus,
    concurrent_task_set,
    detect_task_parallelism,
    parallel_barrier_pairs,
)
from repro.profiling import profile_run

from conftest import parsed


def make_cus(n):
    return [CU(cu_id=i, region=0, kind="plain", lines={10 + i}) for i in range(n)]


def make_graph(n, edges):
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestAlgorithm1:
    def test_fork_worker_barrier_diamond(self):
        # 0 -> {1, 2} -> 3 : the fib shape
        cus = make_cus(4)
        graph = make_graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        marks = classify_cus(graph, cus)
        assert marks == {0: "fork", 1: "worker", 2: "worker", 3: "barrier"}

    def test_chain_is_fork_then_workers(self):
        cus = make_cus(3)
        graph = make_graph(3, [(0, 1), (1, 2)])
        marks = classify_cus(graph, cus)
        assert marks == {0: "fork", 1: "worker", 2: "worker"}

    def test_disconnected_components_get_own_forks(self):
        cus = make_cus(4)
        graph = make_graph(4, [(0, 1), (2, 3)])
        marks = classify_cus(graph, cus)
        assert marks[0] == "fork"
        assert marks[2] == "fork"

    def test_barrier_needs_two_predecessors(self):
        cus = make_cus(3)
        graph = make_graph(3, [(0, 2), (1, 2)])
        marks = classify_cus(graph, cus)
        # 0 is first fork; 2 worker via 0; 1 becomes its own fork; 2 barrier
        assert marks[2] == "barrier"

    def test_cycle_terminates(self):
        cus = make_cus(2)
        graph = make_graph(2, [(0, 1), (1, 0)])
        marks = classify_cus(graph, cus)
        assert set(marks) == {0, 1}

    def test_cilksort_shape(self):
        # figure 3: 0 forks 1..4; 5 joins 1,2; 6 joins 3,4; 7 joins 5,6
        cus = make_cus(8)
        edges = [(0, i) for i in (1, 2, 3, 4)]
        edges += [(1, 5), (2, 5), (3, 6), (4, 6), (5, 7), (6, 7)]
        graph = make_graph(8, edges)
        marks = classify_cus(graph, cus)
        assert marks[0] == "fork"
        assert all(marks[i] == "worker" for i in (1, 2, 3, 4))
        assert all(marks[i] == "barrier" for i in (5, 6, 7))


class TestBarrierParallelism:
    def test_independent_barriers_parallel(self):
        cus = make_cus(8)
        edges = [(0, i) for i in (1, 2, 3, 4)]
        edges += [(1, 5), (2, 5), (3, 6), (4, 6), (5, 7), (6, 7)]
        graph = make_graph(8, edges)
        marks = classify_cus(graph, cus)
        pairs = parallel_barrier_pairs(graph, marks)
        assert (5, 6) in pairs
        assert (5, 7) not in pairs
        assert (6, 7) not in pairs


class TestAntichain:
    def test_picks_heavy_independent_set(self):
        graph = make_graph(4, [(0, 3), (1, 3), (2, 3)])
        cus = make_cus(4)
        weights = {0: 10.0, 1: 10.0, 2: 1.0, 3: 100.0}
        # 3 alone (100) loses to {0,1,2} (21)? No: 100 > 21, but 3 depends
        # on everything, so both sets are valid antichains; heaviest wins.
        chosen = concurrent_task_set(graph, cus, weights)
        assert chosen == [3]

    def test_barrier_heavier_than_workers_combined_is_chosen_alone(self):
        graph = make_graph(3, [(0, 2), (1, 2)])
        cus = make_cus(3)
        weights = {0: 10.0, 1: 10.0, 2: 5.0}
        assert concurrent_task_set(graph, cus, weights) == [0, 1]

    def test_fdtd_shape_prefers_workers_over_heavy_barrier(self):
        # ey0, ey, ex -> hz; hz heaviest but workers sum higher
        graph = make_graph(4, [(0, 3), (1, 3), (2, 3)])
        cus = make_cus(4)
        weights = {0: 2.0, 1: 70.0, 2: 70.0, 3: 99.0}
        assert concurrent_task_set(graph, cus, weights) == [0, 1, 2]

    def test_zero_weight_nodes_ignored(self):
        graph = make_graph(3, [])
        cus = make_cus(3)
        weights = {0: 1.0, 1: 0.0, 2: 1.0}
        assert concurrent_task_set(graph, cus, weights) == [0, 2]


class TestEndToEnd:
    def test_fib_classification(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [10])
        region = fib_program.function("fib").region_id
        tp = detect_task_parallelism(fib_program, profile, region)
        kinds = {cu.cu_id: cu.kind for cu in tp.cus}
        workers = tp.workers
        assert len(workers) == 2
        assert all(kinds[w] == "call" for w in workers)
        assert len(tp.barriers) == 1
        assert tp.marks[tp.forks[0]] == "fork"

    def test_fib_metrics(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [10])
        region = fib_program.function("fib").region_id
        tp = detect_task_parallelism(fib_program, profile, region)
        assert tp.total_instructions > tp.critical_path_instructions > 0
        assert tp.estimated_speedup > 2.0
        assert 1.0 < tp.single_step_speedup < tp.estimated_speedup

    def test_independent_loops_concurrent(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = j * 2.0;
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(20), np.zeros(20), 20])
        tp = detect_task_parallelism(prog, profile, prog.function("f").region_id)
        assert len(tp.concurrent_tasks) == 2
        assert tp.estimated_speedup == pytest.approx(2.0, abs=0.2)

    def test_dependent_loops_not_concurrent(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] * 2.0;
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(20), np.zeros(20), 20])
        tp = detect_task_parallelism(prog, profile, prog.function("f").region_id)
        assert len(tp.concurrent_tasks) == 1
        assert tp.estimated_speedup == pytest.approx(1.0, abs=0.1)

    def test_weights_populated(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [8])
        region = fib_program.function("fib").region_id
        tp = detect_task_parallelism(fib_program, profile, region)
        assert set(tp.weights) == {cu.cu_id for cu in tp.cus}
        assert any(w > 0 for w in tp.weights.values())

    def test_significant_tasks_filters_small(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0 + sqrt(i + 1.0);
    }
    B[0] = 1.0;
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(30), np.zeros(4), 30])
        tp = detect_task_parallelism(prog, profile, prog.function("f").region_id)
        assert len(tp.concurrent_tasks) == 2  # loop + tiny store
        assert len(tp.significant_tasks()) == 1  # the store is noise
