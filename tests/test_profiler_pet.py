"""PET construction, hotspots, call tree, and profile merging."""

import numpy as np

from repro.profiling import hotspot_regions, profile_run, profile_runs

from conftest import parsed


NESTED = """\
void inner(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] + 1.0;
    }
}
void f(float A[], int n) {
    for (int t = 0; t < 4; t++) {
        inner(A, n);
    }
}
"""


class TestPET:
    def test_structure(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(8), 8])
        root = profile.pet
        assert root.kind == "function" and root.region == prog.function("f").region_id
        (outer_loop,) = root.children
        assert outer_loop.kind == "loop"
        (inner_fn,) = outer_loop.children
        assert inner_fn.kind == "function"
        assert inner_fn.invocations == 4
        (inner_loop,) = inner_fn.children
        assert inner_loop.total_trips == 32  # 4 invocations x 8 trips

    def test_loop_iterations_merge_into_one_node(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(8), 8])
        loops = [n for n in profile.pet.walk() if n.kind == "loop"]
        assert len(loops) == 2  # outer + inner, regardless of trip counts

    def test_recursion_merges_into_single_node(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [10])
        nodes = [n for n in profile.pet.walk()]
        assert len(nodes) == 1
        assert nodes[0].recursive
        assert nodes[0].invocations == 177  # number of fib() calls for n=10

    def test_inclusive_cost_equals_total(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(8), 8])
        assert profile.pet.inclusive_cost <= profile.total_cost
        # only the entry CALL/pre-cost differs
        assert profile.total_cost - profile.pet.inclusive_cost < 10


class TestHotspots:
    def test_hotspot_ranking(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(64), 64])
        hs = hotspot_regions(profile, prog, threshold=0.5)
        names = [h.name for h in hs]
        assert names[0] == "f"
        assert any(h.kind == "loop" for h in hs)

    def test_threshold_filters(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(64), 64])
        all_regions = hotspot_regions(profile, prog, threshold=0.0)
        some = hotspot_regions(profile, prog, threshold=0.99)
        assert len(some) < len(all_regions)

    def test_shares_bounded(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(16), 16])
        for h in hotspot_regions(profile, prog, threshold=0.0):
            assert 0.0 <= h.share <= 1.0 + 1e-9


class TestCallTree:
    def test_calltree_shape(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4])
        root = profile.calltree
        assert root.kind == "function"
        (loop,) = root.children
        assert loop.kind == "loop"
        assert len(loop.children) == 4  # four inner() activations
        assert all(c.kind == "function" for c in loop.children)

    def test_per_iteration_costs(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4])
        (loop,) = profile.calltree.children
        assert len(loop.per_iter_cost) == 4
        assert sum(loop.per_iter_cost) == loop.inclusive_cost

    def test_inclusive_cost_propagates(self):
        prog = parsed(NESTED)
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4])
        root = profile.calltree
        assert root.inclusive_cost >= sum(c.inclusive_cost for c in root.children)


class TestMerging:
    def test_merge_accumulates_costs(self):
        prog = parsed(NESTED)
        p1, _ = profile_run(prog, "f", [np.zeros(8), 8])
        p2, _ = profile_run(prog, "f", [np.zeros(16), 16])
        merged = p1.merge(p2)
        assert merged.total_cost == p1.total_cost + p2.total_cost
        assert merged.runs == 2
        assert merged.pet.inclusive_cost == p1.pet.inclusive_cost + p2.pet.inclusive_cost

    def test_merge_unions_deps(self):
        prog = parsed(NESTED)
        p1, _ = profile_run(prog, "f", [np.zeros(8), 8])
        p2, _ = profile_run(prog, "f", [np.zeros(16), 16])
        merged = p1.merge(p2)
        assert set(merged.deps) == set(p1.deps) | set(p2.deps)

    def test_merge_concatenates_pairs(self, pipeline_program):
        p1, _ = profile_run(pipeline_program, "kernel", [np.ones(8), np.zeros(8), 8])
        p2, _ = profile_run(pipeline_program, "kernel", [np.ones(12), np.zeros(12), 12])
        merged = p1.merge(p2)
        (key,) = merged.pairs.keys()
        assert len(merged.pairs[key]) == len(p1.pairs[key]) + len(p2.pairs[key])

    def test_profile_runs_convenience(self, pipeline_program):
        merged = profile_runs(
            pipeline_program,
            "kernel",
            [[np.ones(8), np.zeros(8), 8], [np.ones(12), np.zeros(12), 12]],
        )
        assert merged.runs == 2

    def test_merge_dep_counts_add(self):
        prog = parsed(NESTED)
        p1, _ = profile_run(prog, "f", [np.zeros(8), 8])
        merged = p1.merge(p1)
        for key, count in p1.deps.items():
            assert merged.deps[key] == 2 * count


class TestMultiLoopPairs:
    def test_offset_pairs_give_reg_detect_shape(self, pipeline_program):
        # loop y starts at j=1, so its iteration numbers lag loop x's by one:
        # this is precisely how reg_detect's b = -1 arises in the paper.
        profile, _ = profile_run(
            pipeline_program, "kernel", [np.ones(10), np.zeros(10), 10]
        )
        (pairs,) = profile.pairs.values()
        assert pairs == [(i, i - 1) for i in range(1, 10)]

    def test_one_to_one_pairs(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j];
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(10), np.zeros(10), 10])
        (pairs,) = profile.pairs.values()
        assert pairs == [(i, i) for i in range(10)]

    def test_last_write_wins(self):
        # loop x writes each cell twice; pair must use the *last* write iter
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < 2 * n; i++) {
        A[i % n] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j];
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(5), np.zeros(5), 5])
        (pairs,) = profile.pairs.values()
        assert all(ix >= 5 for ix, _ in pairs)  # second sweep of loop x

    def test_first_read_wins(self):
        # loop y reads each cell twice; pair must use the *first* read iter
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < 2 * n; j++) {
        B[j % n] = B[j % n] + A[j % n];
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(5), np.zeros(5), 5])
        pairs = profile.pairs[
            next(k for k in profile.pairs if k[0] != k[1])
        ]
        a_pairs = [p for p in pairs if p[1] < 5]
        assert a_pairs  # reads recorded during the first sweep only
