"""Static reduction baseline tests (the Table VI comparators)."""

from repro.baselines import IccLikeDetector, SambambaLikeDetector
from repro.baselines.static_reduction import (
    Verdict,
    find_lexical_reductions,
)
from repro.lang.analysis import function_loops

from conftest import parsed


def loops_of(src, func="f"):
    prog = parsed(src)
    return prog, function_loops(prog.function(func))


class TestLexicalFinder:
    def test_plus_equals(self):
        prog, loops = loops_of(
            "int f(int A[], int n) { int s = 0; for (int i = 0; i < n; i++) { s += A[i]; } return s; }"
        )
        findings = find_lexical_reductions(prog, loops[0])
        assert [(f.var, f.operator) for f in findings] == [("s", "+")]

    def test_explicit_form(self):
        prog, loops = loops_of(
            "int f(int A[], int n) { int s = 0; for (int i = 0; i < n; i++) { s = s + A[i]; } return s; }"
        )
        assert [f.var for f in find_lexical_reductions(prog, loops[0])] == ["s"]

    def test_two_writes_rejected(self):
        prog, loops = loops_of(
            """\
int f(int A[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += A[i];
        s = s / 2;
    }
    return s;
}
"""
        )
        assert find_lexical_reductions(prog, loops[0]) == []

    def test_induction_vars_excluded(self):
        prog, loops = loops_of(
            """\
int f(int A[][], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s += A[i][j];
        }
    }
    return s;
}
"""
        )
        findings = find_lexical_reductions(prog, loops[0])
        assert [f.var for f in findings] == ["s"]  # not i, not j

    def test_array_target_not_scalar_reduction(self):
        prog, loops = loops_of(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[0] += 1.0; } }"
        )
        assert find_lexical_reductions(prog, loops[0]) == []


class TestIccModel:
    def test_clean_scalar_loop_found(self):
        prog, _ = loops_of(
            "int f(int A[], int n) { int s = 0; for (int i = 0; i < n; i++) { s += A[i]; } return s; }"
        )
        verdict, findings = IccLikeDetector().analyze(prog)
        assert verdict is Verdict.FOUND

    def test_calls_in_loop_defeat(self):
        prog = parsed(
            """\
int g(int v) { return v + 1; }
int f(int A[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += g(A[i]);
    }
    return s;
}
"""
        )
        verdict, _ = IccLikeDetector().analyze(prog)
        assert verdict is Verdict.MISSED

    def test_array_writes_defeat_via_alias_rule(self):
        prog = parsed(
            """\
int f(int A[], int B[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2;
        s += A[i];
    }
    return s;
}
"""
        )
        verdict, _ = IccLikeDetector().analyze(prog)
        assert verdict is Verdict.MISSED

    def test_never_na(self):
        prog = parsed("int f(int n) { if (n < 1) { return 0; } return f(n - 1); }")
        verdict, _ = IccLikeDetector().analyze(prog)
        assert verdict is not Verdict.NOT_APPLICABLE


class TestSambambaModel:
    def test_array_writes_tolerated(self):
        prog = parsed(
            """\
int f(int A[], int B[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2;
        s += A[i];
    }
    return s;
}
"""
        )
        verdict, findings = SambambaLikeDetector().analyze(prog)
        assert verdict is Verdict.FOUND
        assert [f.var for f in findings] == ["s"]

    def test_recursion_is_na(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += 1;
    }
    if (n > 0) {
        return f(n - 1) + s;
    }
    return s;
}
"""
        )
        verdict, _ = SambambaLikeDetector().analyze(prog)
        assert verdict is Verdict.NOT_APPLICABLE

    def test_loop_bearing_callee_is_na(self):
        prog = parsed(
            """\
int g(int v) {
    int t = 0;
    for (int k = 0; k < v; k++) { t += k; }
    return t;
}
int f(int A[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += g(A[i]);
    }
    return s;
}
"""
        )
        verdict, _ = SambambaLikeDetector().analyze(prog)
        assert verdict is Verdict.NOT_APPLICABLE

    def test_loop_free_callee_just_misses(self):
        # sum_module's shape: accumulation hidden in a call, but the callee
        # has no loops — the tool runs and simply misses the reduction
        prog = parsed(
            """\
int acc(int &s, int v) {
    s += v;
    return v;
}
int f(int A[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int x = acc(s, A[i]);
        A[i] = A[i] + x - x;
    }
    return s;
}
"""
        )
        verdict, _ = SambambaLikeDetector().analyze(prog)
        assert verdict is Verdict.MISSED

    def test_findings_deduplicated(self):
        prog = parsed(
            """\
int f(int A[][], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s += A[i][j];
        }
    }
    return s;
}
"""
        )
        verdict, findings = SambambaLikeDetector().analyze(prog)
        assert verdict is Verdict.FOUND
        assert len(findings) == 1
