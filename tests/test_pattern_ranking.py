"""Pattern-ranking metric tests (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.bench_programs import analyze_benchmark
from repro.patterns.engine import analyze, summarize_patterns
from repro.patterns.ranking import PatternOption, rank_patterns

from conftest import parsed


class TestRanking:
    def test_multi_pattern_program_lists_all(self):
        # a reduction loop is also inside hotspot do-all territory
        src = """\
float f(float A[], float B[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0 + sqrt(A[i] + 1.0);
    }
    for (int j = 0; j < n; j++) {
        s += B[j];
    }
    return s;
}
"""
        prog = parsed(src)
        result = analyze(prog, "f", [[np.ones(64), np.zeros(64), 64]])
        options = rank_patterns(result)
        labels = {o.label for o in options}
        assert "Reduction" in labels
        assert "Do-all" in labels or "Multi-loop pipeline" in labels
        assert len(options) >= 2

    def test_sorted_by_benefit_per_effort(self):
        result = analyze_benchmark("2mm")
        options = rank_patterns(result)
        ratios = [o.benefit_per_effort for o in options]
        assert ratios == sorted(ratios, reverse=True)

    def test_speedups_match_simulator(self):
        from repro.sim import plan_and_simulate

        result = analyze_benchmark("reg_detect")
        primary = summarize_patterns(result)
        outcome = plan_and_simulate(result, thread_counts=(1, 2, 4, 8, 16, 32))
        options = {o.label: o for o in rank_patterns(result)}
        assert primary in options
        assert options[primary].best_speedup == pytest.approx(
            outcome.best_speedup, rel=0.01
        )

    def test_effort_reflects_structure(self):
        result = analyze_benchmark("reg_detect")
        options = {o.label: o for o in rank_patterns(result)}
        if "Multi-loop pipeline" in options and "Do-all" in options:
            assert options["Multi-loop pipeline"].effort > options["Do-all"].effort

    def test_supporting_structures_attached(self):
        result = analyze_benchmark("fib")
        for option in rank_patterns(result):
            assert option.supporting_structure in ("Master/worker", "SPMD", "?")

    def test_lines_touched_positive(self):
        result = analyze_benchmark("mvt")
        for option in rank_patterns(result):
            assert option.lines_touched > 0

    def test_sequential_program_has_no_options(self):
        prog = parsed(
            "void f(float A[], int n) { for (int i = 1; i < n; i++) { A[i] = A[i-1] + 1.0; } }"
        )
        result = analyze(prog, "f", [[np.zeros(32), 32]])
        assert rank_patterns(result) == []

    def test_kmeans_prefers_geometric_decomposition(self):
        result = analyze_benchmark("kmeans")
        options = rank_patterns(result)
        assert options, "kmeans must have at least one option"
        labels = [o.label for o in options]
        assert "Geometric decomposition" in labels
