"""Generative end-to-end property: classification agrees with execution.

Random single-loop array programs are generated (element updates, scalar
accumulations, recurrences, gathers).  For each, the detector classifies
the loop; the classification is then *checked against reality*:

* loops classified do-all must be reorder-stable (the replay oracle),
* loops classified reduction must be shuffle-stable up to floating-point
  reassociation with exact integer data,
* every loop must classify without crashing, whatever the body.

This is the strongest guarantee the suite makes: the static labels the
tool hands a programmer never contradict observable program behaviour on
the profiled input.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.patterns.doall import classify_loop
from repro.profiling import profile_run
from repro.runtime.replay import ReplayError, validate_doall

# statement templates over arrays A (input), B (output), scalar s, index i
_BODY_STMTS = (
    "B[i] = A[i] * 2;",
    "B[i] = A[i] + A[n - 1 - i];",  # gather: still do-all (A read-only)
    "B[i] = B[i] + A[i];",
    "s += A[i];",
    "s = s + B[i];",
    "B[i] = B[i] + s;",  # consumes the accumulator: order-sensitive
    "B[i] = i * 3;",
    "int t{k} = A[i] * 2; B[i] = t{k} + 1;",
    "B[n - 1 - i] = A[i];",  # scatter to distinct cells: do-all
)


@st.composite
def loop_programs(draw):
    n_stmts = draw(st.integers(1, 3))
    body = [
        draw(st.sampled_from(_BODY_STMTS)).format(k=k) for k in range(n_stmts)
    ]
    body_text = "\n        ".join(body)
    source = f"""\
int f(int A[], int B[], int n) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{
        {body_text}
    }}
    return s;
}}
"""
    return source


def _setup(source):
    program = parse_program(source)
    validate_program(program)
    n = 12
    args = [np.arange(1, n + 1, dtype=np.int64), np.zeros(n, dtype=np.int64), n]
    profile, _ = profile_run(program, "f", args)
    loop = next(r.region_id for r in program.regions.values() if r.kind == "loop")
    return program, profile, loop, args


class TestClassificationAgreesWithExecution:
    @given(loop_programs())
    @settings(max_examples=80, deadline=None)
    def test_classification_never_crashes(self, source):
        program, profile, loop, _ = _setup(source)
        lc = classify_loop(program, profile, loop)
        assert lc.classification is not None

    @given(loop_programs())
    @settings(max_examples=80, deadline=None)
    def test_doall_label_is_reorder_stable(self, source):
        program, profile, loop, args = _setup(source)
        lc = classify_loop(program, profile, loop)
        if not lc.is_doall:
            return
        try:
            assert validate_doall(program, "f", args, loop), source
        except ReplayError:
            pass  # non-canonical loops cannot be replayed; nothing to check

    @given(loop_programs())
    @settings(max_examples=60, deadline=None)
    def test_reduction_label_is_shuffle_stable_on_ints(self, source):
        from repro.runtime import Interpreter
        from repro.runtime.replay import results_equal, run_with_loop_order

        program, profile, loop, args = _setup(source)
        lc = classify_loop(program, profile, loop)
        if not lc.is_reduction:
            return
        # integer addition is associative AND commutative: a true reduction
        # must survive a shuffle exactly
        serial = Interpreter(program).run("f", args)
        try:
            shuffled = run_with_loop_order(program, "f", args, loop, "shuffle", seed=3)
        except ReplayError:
            return
        # arrays other than the accumulator must match exactly; the return
        # value (the reduction) must match because the data is integral
        assert results_equal(serial, shuffled, atol=0), source
