"""Generative end-to-end properties: classification agrees with execution,
and is invariant under semantics-preserving transforms.

Random single-loop array programs are generated (element updates, scalar
accumulations, recurrences, gathers).  For each, the detector classifies
the loop; the classification is then *checked against reality*:

* loops classified do-all must be reorder-stable (the replay oracle),
* loops classified reduction must be shuffle-stable up to floating-point
  reassociation with exact integer data,
* every loop must classify without crashing, whatever the body.

A second, metamorphic family locks the detector against *representation*
sensitivity: three transforms that provably preserve semantics —
consistent variable renaming, dead-statement insertion, and permutation
of loop-body statements with no mutual dependence — must leave the
detected pattern set unchanged.  Each transform is double-checked by
interpreting both variants on the same inputs, so a failing assertion
always means the detector (not the transform) diverged; the assertion
message prints both MiniC sources as a ready-to-run reproducer.
"""

import random
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.patterns.doall import classify_loop
from repro.profiling import profile_run
from repro.runtime import Interpreter
from repro.runtime.replay import ReplayError, validate_doall

# statement templates over arrays A (input), B (output), scalar s, index i
_BODY_STMTS = (
    "B[i] = A[i] * 2;",
    "B[i] = A[i] + A[n - 1 - i];",  # gather: still do-all (A read-only)
    "B[i] = B[i] + A[i];",
    "s += A[i];",
    "s = s + B[i];",
    "B[i] = B[i] + s;",  # consumes the accumulator: order-sensitive
    "B[i] = i * 3;",
    "int t{k} = A[i] * 2; B[i] = t{k} + 1;",
    "B[n - 1 - i] = A[i];",  # scatter to distinct cells: do-all
)


@st.composite
def loop_programs(draw):
    n_stmts = draw(st.integers(1, 3))
    body = [
        draw(st.sampled_from(_BODY_STMTS)).format(k=k) for k in range(n_stmts)
    ]
    body_text = "\n        ".join(body)
    source = f"""\
int f(int A[], int B[], int n) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{
        {body_text}
    }}
    return s;
}}
"""
    return source


def _setup(source):
    program = parse_program(source)
    validate_program(program)
    n = 12
    args = [np.arange(1, n + 1, dtype=np.int64), np.zeros(n, dtype=np.int64), n]
    profile, _ = profile_run(program, "f", args)
    loop = next(r.region_id for r in program.regions.values() if r.kind == "loop")
    return program, profile, loop, args


class TestClassificationAgreesWithExecution:
    @given(loop_programs())
    @settings(max_examples=80, deadline=None)
    def test_classification_never_crashes(self, source):
        program, profile, loop, _ = _setup(source)
        lc = classify_loop(program, profile, loop)
        assert lc.classification is not None

    @given(loop_programs())
    @settings(max_examples=80, deadline=None)
    def test_doall_label_is_reorder_stable(self, source):
        program, profile, loop, args = _setup(source)
        lc = classify_loop(program, profile, loop)
        if not lc.is_doall:
            return
        try:
            assert validate_doall(program, "f", args, loop), source
        except ReplayError:
            pass  # non-canonical loops cannot be replayed; nothing to check

    @given(loop_programs())
    @settings(max_examples=60, deadline=None)
    def test_reduction_label_is_shuffle_stable_on_ints(self, source):
        from repro.runtime import Interpreter
        from repro.runtime.replay import results_equal, run_with_loop_order

        program, profile, loop, args = _setup(source)
        lc = classify_loop(program, profile, loop)
        if not lc.is_reduction:
            return
        # integer addition is associative AND commutative: a true reduction
        # must survive a shuffle exactly
        serial = Interpreter(program).run("f", args)
        try:
            shuffled = run_with_loop_order(program, "f", args, loop, "shuffle", seed=3)
        except ReplayError:
            return
        # arrays other than the accumulator must match exactly; the return
        # value (the reduction) must match because the data is integral
        assert results_equal(serial, shuffled, atol=0), source


# ---------------------------------------------------------------------------
# metamorphic invariance: semantics-preserving transforms keep the patterns
# ---------------------------------------------------------------------------

#: The statement pool of ``_BODY_STMTS``, annotated with the conservative
#: (reads, writes) variable sets used for the permutation transform.
#: Granularity is whole-array — ``B[i]`` and ``B[n-1-i]`` both count as
#: ``B`` — so any permutation this table allows is independent under every
#: finer-grained analysis too.
_ANNOTATED_STMTS = (
    ("B[i] = A[i] * 2;", {"A"}, {"B"}),
    ("B[i] = A[i] + A[n - 1 - i];", {"A"}, {"B"}),
    ("B[i] = B[i] + A[i];", {"A", "B"}, {"B"}),
    ("s += A[i];", {"A", "s"}, {"s"}),
    ("s = s + B[i];", {"s", "B"}, {"s"}),
    ("B[i] = B[i] + s;", {"B", "s"}, {"B"}),
    ("B[i] = i * 3;", set(), {"B"}),
    ("int t{k} = A[i] * 2; B[i] = t{k} + 1;", {"A"}, {"B"}),
    ("B[n - 1 - i] = A[i];", {"A"}, {"B"}),
)

#: Renaming applied to every identifier the generated programs use.  The
#: targets collide with nothing in the templates (checked by parsing), so
#: a single simultaneous regex pass is a sound alpha-conversion.
_RENAME = {"A": "arr_p", "B": "arr_q", "s": "acc", "n": "count", "i": "idx"}


def _rename_source(source):
    """Alpha-convert *source* under ``_RENAME`` (plus ``t<k>`` -> ``u<k>``)."""
    pattern = re.compile(
        r"\b(" + "|".join(_RENAME) + r")\b" + r"|\bt(\d+)\b"
    )

    def sub(m):
        if m.group(2) is not None:
            return f"u{m.group(2)}"
        return _RENAME[m.group(1)]

    return pattern.sub(sub, source)


def _independent(s1, s2):
    """No dependence in either direction between two annotated statements."""
    _, r1, w1 = s1
    _, r2, w2 = s2
    return not (w1 & (r2 | w2)) and not (w2 & (r1 | w1))


def _assemble(stmts):
    body_text = "\n        ".join(text for text, _, _ in stmts)
    return f"""\
int f(int A[], int B[], int n) {{
    int s = 0;
    for (int i = 0; i < n; i++) {{
        {body_text}
    }}
    return s;
}}
"""


def _random_stmts(rng, max_stmts=4):
    picks = [rng.randrange(len(_ANNOTATED_STMTS)) for _ in range(rng.randint(1, max_stmts))]
    return [
        (_ANNOTATED_STMTS[p][0].format(k=k),) + _ANNOTATED_STMTS[p][1:]
        for k, p in enumerate(picks)
    ]


def _pattern_signature(source, entry="f", unrename=False):
    """The detected pattern set of *source*'s loop, normalized for
    comparison across transforms: classification label, blocking and
    privatizable variable sets, and (var, operator) reduction pairs —
    everything position- and line-independent."""
    program, profile, loop, args = _setup_entry(source, entry)
    lc = classify_loop(program, profile, loop)
    back = {v: k for k, v in _RENAME.items()} if unrename else {}
    back_re = re.compile(r"^u(\d+)$")

    def norm(name):
        if unrename and back_re.match(name):
            return "t" + back_re.match(name).group(1)
        return back.get(name, name)

    # ``dead<k>`` locals are introduced *by* the dead-statement transform
    # and are privatizable by construction; they are excluded so the
    # signature compares only the base program's variables.
    return {
        "classification": lc.classification.value,
        "blocking": frozenset(norm(v) for v in lc.blocking_vars),
        "privatizable": frozenset(
            norm(v) for v in lc.privatizable if not re.match(r"^dead\d+$", v)
        ),
        "reductions": frozenset((norm(c.var), c.operator) for c in lc.reductions),
    }


def _setup_entry(source, entry):
    program = parse_program(source)
    validate_program(program)
    n = 12
    args = [np.arange(1, n + 1, dtype=np.int64), np.zeros(n, dtype=np.int64), n]
    profile, _ = profile_run(program, entry, args)
    loop = next(r.region_id for r in program.regions.values() if r.kind == "loop")
    return program, profile, loop, args


def _run_outputs(source, entry="f"):
    """(return value, array arguments after the run) for fresh inputs."""
    program = parse_program(source)
    validate_program(program)
    n = 12
    a = np.arange(1, n + 1, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    result = Interpreter(program).run(entry, [a, b, n])
    return result.value, [a, b]


def _assert_equivalent_and_invariant(base, variant, transform):
    """The metamorphic core: *variant* must compute the same thing as
    *base* (interpreter check — validates the transform) and detect the
    same pattern set (the property under test)."""
    reproducer = (
        f"\n--- base program ---\n{base}\n--- {transform} variant ---\n{variant}"
    )
    base_value, base_arrays = _run_outputs(base)
    var_value, var_arrays = _run_outputs(variant)
    assert base_value == var_value, f"transform changed semantics{reproducer}"
    for x, y in zip(base_arrays, var_arrays):
        assert np.array_equal(x, y), f"transform changed semantics{reproducer}"

    base_sig = _pattern_signature(base)
    var_sig = _pattern_signature(variant, unrename=(transform == "renaming"))
    assert base_sig == var_sig, (
        f"detected pattern set changed under {transform}:\n"
        f"  base    {base_sig}\n  variant {var_sig}{reproducer}"
    )


class TestMetamorphicInvariance:
    @pytest.mark.parametrize("seed", range(15))
    def test_variable_renaming_preserves_patterns(self, seed):
        rng = random.Random(seed)
        base = _assemble(_random_stmts(rng))
        variant = _rename_source(base)
        _assert_equivalent_and_invariant(base, variant, "renaming")

    @pytest.mark.parametrize("seed", range(15))
    def test_dead_statement_insertion_preserves_patterns(self, seed):
        rng = random.Random(seed)
        stmts = _random_stmts(rng)
        dead = [
            (f"int dead{j} = {rng.randint(1, 9)} * 3;", set(), set())
            for j in range(rng.randint(1, 3))
        ]
        mixed = list(stmts)
        for d in dead:  # dead statements land at random body positions
            mixed.insert(rng.randint(0, len(mixed)), d)
        _assert_equivalent_and_invariant(
            _assemble(stmts), _assemble(mixed), "dead-statement insertion"
        )

    @pytest.mark.parametrize("seed", range(30))
    def test_independent_permutation_preserves_patterns(self, seed):
        rng = random.Random(seed)
        stmts = _random_stmts(rng)
        if not all(
            _independent(s1, s2)
            for a_i, s1 in enumerate(stmts)
            for s2 in stmts[a_i + 1:]
        ):
            pytest.skip("generated body has a dependence; permutation unsound")
        if len(stmts) < 2:
            pytest.skip("single-statement body has no permutations")
        permuted = list(stmts)
        while permuted == stmts:
            rng.shuffle(permuted)
        _assert_equivalent_and_invariant(
            _assemble(stmts), _assemble(permuted), "statement permutation"
        )
