"""Graph toolkit tests, property-checked against networkx as the oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DiGraph,
    critical_path,
    has_path,
    longest_path_length,
    reachable_from,
    strongly_connected_components,
    topological_sort,
)
from repro.graphs.algorithms import condensation


def build(edges, nodes=()):
    g = DiGraph()
    for n in nodes:
        g.add_node(n)
    for a, b in edges:
        g.add_edge(a, b)
    return g


@st.composite
def random_digraph(draw):
    n = draw(st.integers(2, 12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=30,
        )
    )
    edges = [(a, b) for a, b in edges if a != b]
    return build(edges, nodes=range(n)), edges, n


@st.composite
def random_dag(draw):
    n = draw(st.integers(2, 12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=30,
        )
    )
    edges = [(min(a, b), max(a, b)) for a, b in edges if a != b]
    return build(edges, nodes=range(n)), edges, n


class TestBasics:
    def test_add_and_query(self):
        g = build([(1, 2), (2, 3)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert g.successors(2) == [3]
        assert g.predecessors(2) == [1]
        assert len(g) == 3
        assert g.num_edges() == 2

    def test_edge_data_merging(self):
        g = DiGraph()
        g.add_edge("a", "b", kind="data")
        g.add_edge("a", "b", weight=3)
        assert g.edge_data("a", "b") == {"kind": "data", "weight": 3}

    def test_remove_node_cleans_edges(self):
        g = build([(1, 2), (2, 3), (3, 1)])
        g.remove_node(2)
        assert 2 not in g
        assert g.num_edges() == 1  # only 3 -> 1 remains

    def test_subgraph(self):
        g = build([(1, 2), (2, 3), (1, 3)])
        sub = g.subgraph([1, 3])
        assert sub.nodes() == [1, 3] or set(sub.nodes()) == {1, 3}
        assert sub.has_edge(1, 3)
        assert not sub.has_edge(1, 2)

    def test_reversed(self):
        g = build([(1, 2)])
        assert g.reversed().has_edge(2, 1)

    def test_copy_is_independent(self):
        g = build([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)


class TestPaths:
    def test_has_path_direct_and_transitive(self):
        g = build([(1, 2), (2, 3)])
        assert has_path(g, 1, 3)
        assert not has_path(g, 3, 1)

    def test_self_path(self):
        g = build([], nodes=[1])
        assert has_path(g, 1, 1)

    def test_missing_nodes(self):
        g = build([(1, 2)])
        assert not has_path(g, 1, 99)

    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_reachability_matches_networkx(self, data):
        g, edges, n = data
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        for start in range(n):
            ours = reachable_from(g, start)
            theirs = nx.descendants(nxg, start) | {start}
            assert ours == theirs


class TestTopoSort:
    def test_simple_order(self):
        g = build([(1, 2), (1, 3), (3, 2)])
        order = topological_sort(g)
        assert order.index(1) < order.index(3) < order.index(2)

    def test_cycle_raises(self):
        g = build([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            topological_sort(g)

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_order_respects_edges(self, data):
        g, edges, n = data
        order = topological_sort(g)
        pos = {node: i for i, node in enumerate(order)}
        assert len(order) == n
        for a, b in edges:
            assert pos[a] < pos[b]


class TestSCC:
    def test_simple_cycle(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        comps = strongly_connected_components(g)
        assert {1, 2} in comps
        assert {3} in comps

    @given(random_digraph())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, data):
        g, edges, n = data
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs

    @given(random_digraph())
    @settings(max_examples=40, deadline=None)
    def test_condensation_is_acyclic(self, data):
        g, _, _ = data
        dag, comp_of = condensation(g)
        topological_sort(dag)  # must not raise
        assert set(comp_of) == set(g.nodes())


class TestCriticalPath:
    def test_chain(self):
        g = build([(1, 2), (2, 3)])
        total, path = critical_path(g, lambda n: float(n))
        assert total == 6.0
        assert path == [1, 2, 3]

    def test_diamond_takes_heavier_branch(self):
        g = build([(1, 2), (1, 3), (2, 4), (3, 4)])
        weights = {1: 1.0, 2: 10.0, 3: 2.0, 4: 1.0}
        total, path = critical_path(g, weights.__getitem__)
        assert total == 12.0
        assert path == [1, 2, 4]

    def test_isolated_heavy_node(self):
        g = build([(1, 2)], nodes=[1, 2, 3])
        weights = {1: 1.0, 2: 1.0, 3: 100.0}
        total, _ = critical_path(g, weights.__getitem__)
        assert total == 100.0

    def test_cycle_collapses_to_sequential_block(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        total, path = critical_path(g, lambda n: 1.0)
        assert total == 3.0  # the 2-cycle runs sequentially, then node 3
        assert set(path) == {1, 2, 3}

    def test_empty_graph(self):
        assert critical_path(DiGraph(), lambda n: 1.0) == (0.0, [])

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_longest_path(self, data):
        g, edges, n = data
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(set(edges))
        # networkx longest path counts edges; convert node weights=1 paths
        ours = longest_path_length(g)
        theirs = nx.dag_longest_path_length(nxg) + 1  # nodes = edges + 1
        assert ours == theirs

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_path_weight_consistency(self, data):
        g, _, _ = data
        weight = lambda node: float(node + 1)  # noqa: E731
        total, path = critical_path(g, weight)
        assert total == pytest.approx(sum(weight(n) for n in path))
        # and the path is a real path
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
