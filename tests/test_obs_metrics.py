"""Metrics registry: instrument semantics, exposition format, thread
safety, and the process-wide disable switch the overhead benchmark uses."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_enabled,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_value(self, registry):
        c = registry.counter("x_total", "help text")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("x_total").inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("bad-label",))


class TestGauges:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6

    def test_function_gauge_reads_live_state(self, registry):
        state = {"busy": 0}
        g = registry.gauge("busy")
        g.set_function(lambda: state["busy"])
        state["busy"] = 3
        assert g.value == 3

    def test_function_gauge_failure_renders_nan(self, registry):
        g = registry.gauge("broken")
        g.set_function(lambda: 1 / 0)
        assert g.value != g.value  # NaN

    def test_set_clears_callback(self, registry):
        g = registry.gauge("g")
        g.set_function(lambda: 99)
        g.set(1)
        assert g.value == 1


class TestHistograms:
    def test_observe_updates_sum_and_count(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_buckets_are_cumulative(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.bucket_counts() == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_exposition_bucket_lines(self, registry):
        h = registry.histogram("lat_seconds", "latency", buckets=(0.1,))
        h.observe(0.05)
        text = registry.render()
        assert "# HELP lat_seconds latency" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_empty_bucket_list_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestLabelledFamilies:
    def test_children_keyed_by_label_values(self, registry):
        fam = registry.counter("runs_total", labelnames=("kind",))
        fam.labels(kind="source").inc()
        fam.labels(kind="source").inc()
        fam.labels(kind="bench").inc()
        assert fam.labels(kind="source").value == 2
        assert fam.labels(kind="bench").value == 1

    def test_wrong_label_set_rejected(self, registry):
        fam = registry.counter("runs_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            fam.labels(flavor="x")

    def test_label_values_escaped_in_exposition(self, registry):
        fam = registry.counter("runs_total", labelnames=("kind",))
        fam.labels(kind='we"ird\nname').inc()
        line = [
            ln for ln in registry.render().splitlines() if ln.startswith("runs_total{")
        ][0]
        assert line == 'runs_total{kind="we\\"ird\\nname"} 1'

    def test_children_render_sorted(self, registry):
        fam = registry.gauge("g", labelnames=("k",))
        fam.labels(k="b").set(2)
        fam.labels(k="a").set(1)
        lines = [ln for ln in registry.render().splitlines() if ln.startswith("g{")]
        assert lines == ['g{k="a"} 1', 'g{k="b"} 2']


class TestRendering:
    def test_metrics_render_in_name_order_with_type_lines(self, registry):
        registry.counter("b_total")
        registry.gauge("a_value")
        text = registry.render()
        assert text.index("# TYPE a_value gauge") < text.index("# TYPE b_total counter")
        assert text.endswith("\n")

    def test_integer_samples_have_no_decimal_point(self, registry):
        registry.counter("n_total").inc(2)
        assert "n_total 2" in registry.render().splitlines()


class TestDisableSwitch:
    def test_disabled_instruments_are_noops(self, registry):
        c = registry.counter("c_total")
        g = registry.gauge("g")
        h = registry.histogram("h_seconds")
        prev = set_enabled(False)
        try:
            assert prev is True and metrics_enabled() is False
            c.inc()
            g.set(9)
            h.observe(1.0)
        finally:
            set_enabled(True)
        assert c.value == 0 and g.value == 0 and h.count == 0

    def test_reenabling_resumes_collection(self, registry):
        c = registry.counter("c_total")
        set_enabled(False)
        set_enabled(True)
        c.inc()
        assert c.value == 1


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self, registry):
        c = registry.counter("c_total")
        h = registry.histogram("h_seconds", buckets=(1.0,))

        def hammer():
            for _ in range(400):
                c.inc()
                h.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 3200
        assert h.count == 3200


class TestGlobalRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
