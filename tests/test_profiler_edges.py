"""Profiler edge cases: site attribution, recursion, re-invocation,
global state, and dependence-record details."""

import numpy as np

from repro.profiling import profile_run
from repro.profiling.model import RAW, WAR, WAW

from conftest import parsed


class TestSiteAttribution:
    def test_callee_costs_fold_into_call_site(self):
        prog = parsed(
            """\
float heavy(float v) {
    float acc = 0.0;
    for (int k = 0; k < 20; k++) {
        acc += sqrt(v + k);
    }
    return acc;
}
float f(float v) {
    float a = heavy(v);
    return a * 2.0;
}
"""
        )
        profile, _ = profile_run(prog, "f", [3.0])
        f_region = prog.function("f").region_id
        # the call at line 9 carries nearly all of f's cost
        call_site_cost = profile.site_costs.get((f_region, 9), 0)
        assert call_site_cost > 0.8 * profile.total_cost

    def test_sibling_calls_attributed_separately(self):
        prog = parsed(
            """\
float work(float v, int reps) {
    float acc = 0.0;
    for (int k = 0; k < reps; k++) {
        acc += sqrt(v + k);
    }
    return acc;
}
float f(float v) {
    float a = work(v, 10);
    float b = work(v, 40);
    return a + b;
}
"""
        )
        profile, _ = profile_run(prog, "f", [2.0])
        f_region = prog.function("f").region_id
        small = profile.site_costs.get((f_region, 9), 0)
        big = profile.site_costs.get((f_region, 10), 0)
        assert 2 * small < big

    def test_param_stores_attributed_to_signature_line(self):
        prog = parsed(
            """\
int callee(int v) {
    return v + 1;
}
int f(int n) {
    return callee(n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [5])
        # no dependence may connect the callee's internals to a caller CU
        # through a stale site: the v-store's site is the signature line 1
        for dep in profile.deps:
            if dep.var == "v" and dep.kind == RAW:
                assert dep.src_site == 1


class TestRecursionDeps:
    def test_distinct_activations_have_no_false_deps(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [10])
        # x and y cells are per-activation: deps on them must be
        # loop-independent and within the fib region
        fib_region = fib_program.function("fib").region_id
        for dep in profile.deps:
            if dep.var in ("x", "y"):
                assert dep.region == fib_region
                assert dep.carrier is None

    def test_global_accumulation_across_recursion(self):
        prog = parsed(
            """\
int hits = 0;
void visit(int n) {
    if (n == 0) {
        hits++;
        return;
    }
    visit(n - 1);
    visit(n - 1);
}
"""
        )
        profile, result = profile_run(prog, "visit", [5])
        assert result.globals["hits"] == 32
        # the two sibling recursive calls race on `hits`: a dependence must
        # connect their call sites in the visit region
        region = prog.function("visit").region_id
        cross = [
            d
            for d in profile.deps
            if d.var == "hits" and d.region == region and d.src_site != d.dst_site
        ]
        assert cross


class TestReinvocation:
    def test_loop_summaries_accumulate_across_calls(self):
        prog = parsed(
            """\
void g(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] + 1.0;
    }
}
void f(float A[], int n) {
    g(A, n);
    g(A, n);
    g(A, n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(6), 6])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        invocations, total, peak = profile.loop_trips[loop]
        assert invocations == 3
        assert total == 18
        assert peak == 6

    def test_cross_invocation_deps_belong_to_caller(self):
        prog = parsed(
            """\
void g(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] + 1.0;
    }
}
void f(float A[], int n) {
    g(A, n);
    g(A, n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4])
        f_region = prog.function("f").region_id
        cross = [
            d for d in profile.deps if d.region == f_region and d.var == "A"
        ]
        assert cross
        assert all((d.src_site, d.dst_site) == (7, 8) for d in cross if d.kind == RAW)


class TestDependenceDetails:
    def test_war_on_rewritten_input(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    float t = A[0];
    A[0] = t * 2.0;
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.ones(2), 2])
        wars = [d for d in profile.deps if d.kind == WAR and d.var == "A"]
        assert any((d.src_line, d.dst_line) == (2, 3) for d in wars)

    def test_waw_between_unconditional_writes(self):
        prog = parsed(
            """\
void f(float A[]) {
    A[0] = 1.0;
    A[0] = 2.0;
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(1)])
        assert any(d.kind == WAW and d.var == "A" for d in profile.deps)

    def test_dep_counts_scale_with_trips(self):
        prog = parsed(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.ones(10), 10])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        carried = [
            (d, c)
            for d, c in profile.deps.items()
            if d.carrier == loop and d.kind == RAW and d.var == "s"
        ]
        assert sum(c for _, c in carried) == 9  # n-1 cross-iteration reads

    def test_streaming_counters(self):
        prog = parsed(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.ones(32), 32])
        assert profile.unique_array_addresses == 32
        assert profile.array_accesses == 32
        assert 0 < profile.streaming_fraction < 1
