"""Builder DSL tests: programs built programmatically must behave exactly
like parsed ones."""

import numpy as np
import pytest

from repro.lang.builder import ProgramBuilder
from repro.patterns.engine import analyze, summarize_patterns
from repro.runtime import run_program


class TestBuilderBasics:
    def test_scalar_function(self):
        b = ProgramBuilder()
        with b.function("int", "double_it", ("int", "x")) as f:
            f.ret(f.var("x") * 2)
        program = b.build()
        assert run_program(program, "double_it", [21]).value == 42

    def test_loop_and_array(self):
        b = ProgramBuilder()
        with b.function("void", "scale", ("float", "A[]"), ("int", "n")) as f:
            with f.for_loop("i", 0, f.var("n")) as i:
                f.assign(f.index("A", i), f.index("A", i) * 2.0)
        program = b.build()
        result = run_program(program, "scale", [np.arange(4.0), 4])
        assert np.allclose(result.arrays["A"], [0, 2, 4, 6])

    def test_if_else(self):
        b = ProgramBuilder()
        with b.function("int", "sign", ("int", "x")) as f:
            with f.if_then(f.var("x") < 0):
                f.ret(-1)
            with f.else_branch():
                f.ret(1)
        program = b.build()
        assert run_program(program, "sign", [-5]).value == -1
        assert run_program(program, "sign", [5]).value == 1

    def test_while_loop(self):
        b = ProgramBuilder()
        with b.function("int", "log2floor", ("int", "n")) as f:
            c = f.declare("int", "c", 0)
            with f.while_loop(f.var("n") > 1):
                f.assign(f.var("n"), f.var("n") / 2)
                f.add_assign(c, 1)
            f.ret(c)
        program = b.build()
        assert run_program(program, "log2floor", [64]).value == 6

    def test_globals(self):
        b = ProgramBuilder()
        b.global_scalar("int", "counter", 0)
        b.global_array("float", "SCRATCH", 8)
        with b.function("int", "tick") as f:
            f.add_assign(f.var("counter"), 1)
            f.ret(f.var("counter"))
        program = b.build()
        assert run_program(program, "tick", []).value == 1

    def test_reference_param(self):
        b = ProgramBuilder()
        with b.function("void", "bump", ("int", "&x")) as f:
            f.add_assign(f.var("x"), 7)
        program = b.build()
        assert run_program(program, "bump", [10]).scalars["x"] == 17

    def test_intrinsic_calls(self):
        b = ProgramBuilder()
        with b.function("float", "hyp", ("float", "a"), ("float", "b")) as f:
            f.ret(f.call("sqrt", f.var("a") * f.var("a") + f.var("b") * f.var("b")))
        program = b.build()
        assert run_program(program, "hyp", [3.0, 4.0]).value == pytest.approx(5.0)

    def test_local_array(self):
        b = ProgramBuilder()
        with b.function("int", "f", ("int", "n")) as f:
            f.declare_array("int", "buf", f.var("n"))
            with f.for_loop("i", 0, f.var("n")) as i:
                f.assign(f.index("buf", i), i * i)
            f.ret(f.index("buf", f.var("n") - 1))
        assert run_program(b.build(), "f", [5]).value == 16

    def test_else_without_if_rejected(self):
        b = ProgramBuilder()
        with b.function("void", "f") as f:
            with pytest.raises(ValueError):
                with f.else_branch():
                    pass
            f.ret()
        b.build()

    def test_bad_expression_rejected(self):
        b = ProgramBuilder()
        with b.function("void", "f") as f:
            with pytest.raises(TypeError):
                f.assign("not-an-expr", 1)
            f.ret()


class TestBuilderDetection:
    def test_built_reduction_detected(self):
        b = ProgramBuilder()
        with b.function("float", "total", ("float", "A[]"), ("int", "n")) as f:
            s = f.declare("float", "s", 0.0)
            with f.for_loop("i", 0, f.var("n")) as i:
                f.add_assign(s, f.index("A", i))
            f.ret(s)
        program = b.build()
        result = analyze(program, "total", [[np.ones(32), 32]])
        assert summarize_patterns(result) == "Reduction"

    def test_built_pipeline_detected(self):
        b = ProgramBuilder()
        with b.function(
            "void", "stages", ("float", "A[]"), ("float", "B[]"), ("int", "n")
        ) as f:
            with f.for_loop("i", 0, f.var("n")) as i:
                f.assign(f.index("A", i), i * 2.0)
            with f.for_loop("j", 1, f.var("n")) as j:
                f.assign(f.index("B", j), f.index("B", j - 1) + f.index("A", j))
        program = b.build()
        result = analyze(program, "stages", [[np.zeros(24), np.zeros(24), 24]])
        assert summarize_patterns(result) == "Multi-loop pipeline"

    def test_built_program_has_regions_and_ids(self):
        b = ProgramBuilder()
        with b.function("void", "f", ("int", "n")) as fb:
            with fb.for_loop("i", 0, fb.var("n")):
                pass
        program = b.build()
        assert any(r.kind == "loop" for r in program.regions.values())
        assert program.source  # printable source attached
