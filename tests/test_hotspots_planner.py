"""Hotspot ranking and planner behaviour tests."""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.profiling import hotspot_regions, profile_run, region_coverage
from repro.sim import plan_and_simulate, simulate_analysis
from repro.sim.planner import (
    loop_invocation_costs,
    pipeline_co_invocations,
    region_activations,
)

from conftest import parsed


class TestHotspots:
    def test_same_region_summed_across_pet_positions(self):
        # helper called from two places: its loop appears twice in the PET
        prog = parsed(
            """\
void helper(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] + 1.0;
    }
}
void a(float A[], int n) { helper(A, n); }
void b(float A[], int n) { helper(A, n); }
void f(float A[], int n) {
    a(A, n);
    b(A, n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(32), 32])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        positions = [n for n in profile.pet.walk() if n.region == loop]
        assert len(positions) == 2
        hs = hotspot_regions(profile, prog, threshold=0.3)
        loop_hs = [h for h in hs if h.region == loop]
        assert len(loop_hs) == 1  # reported once, costs summed
        assert loop_hs[0].inclusive_cost == sum(p.inclusive_cost for p in positions)

    def test_region_coverage_fraction(self, reduction_program):
        profile, _ = profile_run(reduction_program, "total", [np.ones(16), 16])
        region = reduction_program.function("total").region_id
        assert 0.9 < region_coverage(profile, region) <= 1.0

    def test_empty_profile_has_no_hotspots(self):
        from repro.profiling.model import Profile

        assert hotspot_regions(Profile()) == []


class TestPlannerExtraction:
    def test_region_activations_in_order(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [6])
        region = fib_program.function("fib").region_id
        acts = region_activations(profile, region)
        assert len(acts) == 25  # calls of fib(6)
        ids = [a.act_id for a in acts]
        assert ids[0] == min(ids)

    def test_loop_invocation_costs_shape(self):
        prog = parsed(
            """\
void g(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; }
}
void f(float A[], int n) {
    g(A, n);
    g(A, n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(6), 6])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        invs = loop_invocation_costs(profile, loop)
        assert len(invs) == 2
        assert all(len(inv) == 6 for inv in invs)
        assert all(c > 0 for inv in invs for c in inv)

    def test_pipeline_co_invocations_pair_by_parent(self, pipeline_program):
        profile, _ = profile_run(
            pipeline_program, "kernel", [np.ones(12), np.zeros(12), 12]
        )
        (pair_key,) = profile.pairs.keys()
        pairs = pipeline_co_invocations(profile, *pair_key)
        assert len(pairs) == 1
        cx, cy = pairs[0]
        assert len(cx) == 12 and len(cy) == 11


class TestSimulateAnalysis:
    def test_label_override(self, pipeline_program):
        result = analyze(
            pipeline_program, "kernel", [[np.ones(32), np.zeros(32), 32]]
        )
        as_pipeline = simulate_analysis(result, 8, label="Multi-loop pipeline")
        as_doall = simulate_analysis(result, 8, label="Do-all")
        assert as_pipeline != as_doall

    def test_unknown_label_neutral(self, pipeline_program):
        result = analyze(
            pipeline_program, "kernel", [[np.ones(16), np.zeros(16), 16]]
        )
        assert simulate_analysis(result, 8, label="Nonsense") == 1.0

    def test_single_thread_is_identity(self, reduction_program):
        result = analyze(reduction_program, "total", [[np.ones(32), 32]])
        assert simulate_analysis(result, 1) == pytest.approx(1.0)

    def test_plan_outcome_fields(self, reduction_program):
        result = analyze(reduction_program, "total", [[np.ones(64), 64]])
        outcome = plan_and_simulate(result, thread_counts=(1, 2, 4))
        assert outcome.label == "Reduction"
        assert set(dict(outcome.sweep.as_rows())) == {1, 2, 4}
        assert outcome.best_speedup >= 1.0

    def test_speedups_bounded_by_threads(self, reduction_program):
        result = analyze(reduction_program, "total", [[np.ones(64), 64]])
        for p, s in plan_and_simulate(result).sweep.as_rows():
            assert s <= p + 1e-9
