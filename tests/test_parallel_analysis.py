"""Process-parallel registry analysis must be indistinguishable from serial."""

import numpy as np

from repro.bench_programs.registry import all_benchmarks
from repro.runtime.parallel import BenchmarkOutcome, analyze_one, analyze_registry
from repro.sim.sweep import sweep_threads


class TestParallelEqualsSerial:
    def test_full_registry(self):
        """Every registry program: labels, coefficients, speedups, and the
        canonical profile digest agree between serial and pooled runs."""
        names = [spec.name for spec in all_benchmarks()]
        serial = analyze_registry(names, parallel=False)
        parallel = analyze_registry(names, parallel=True)

        assert [o.name for o in serial] == names  # deterministic ordering
        assert [o.name for o in parallel] == names
        for s, p in zip(serial, parallel):
            assert s.label == p.label, s.name
            assert s.pipelines == p.pipelines, s.name  # (a, b, efficiency) exact
            assert s.best_speedup == p.best_speedup, s.name
            assert s.best_threads == p.best_threads, s.name
            assert s.primary_share == p.primary_share, s.name
            assert s.profile_digest == p.profile_digest, s.name
            assert s == p

    def test_subset_order_follows_names(self):
        names = ["reg_detect", "gesummv"]
        outcomes = analyze_registry(names, parallel=True, max_workers=2)
        assert [o.name for o in outcomes] == names

    def test_outcomes_are_picklable_plain_data(self):
        import pickle

        outcome = analyze_one("gesummv")
        assert isinstance(outcome, BenchmarkOutcome)
        assert pickle.loads(pickle.dumps(outcome)) == outcome


class TestSharedCache:
    def test_workers_share_on_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        first = analyze_registry(["gesummv"], parallel=True, cache_dir=cache_dir)
        second = analyze_registry(["gesummv"], parallel=True, cache_dir=cache_dir)
        assert first == second
        cached = list((tmp_path / "shared").rglob("*.json"))
        assert len(cached) == 1


class TestPickling:
    SRC = """\
int count(int A[], int n) {
    int c = 0;
    for (int i = 0; i < n; i++) {
        c += A[i];
    }
    return c;
}
"""

    def test_profile_trees_pickle_with_slots(self):
        """PET/call-tree nodes use __slots__ and carry parent<->child cycles;
        profiles must still pickle (workers and caches depend on it)."""
        import pickle

        from repro.api import compile_source
        from repro.profiling import profile_digest, profile_runs

        program = compile_source(self.SRC)
        profile = profile_runs(program, "count", [[np.ones(8, dtype=np.int64), 8]])
        assert profile.pet is not None and profile.calltree is not None
        clone = pickle.loads(pickle.dumps(profile))
        assert profile_digest(clone) == profile_digest(profile)
        assert clone.calltree.children[0].parent is clone.calltree


class TestSweepMapFn:
    def test_custom_map_preserves_thread_count_order(self):
        calls = []

        def speedup_at(p: int) -> float:
            calls.append(p)
            return float(p)

        def reversed_map(fn, items):
            # deliver results out of submission order, like a pool might
            return list(reversed([fn(i) for i in reversed(list(items))]))

        sweep = sweep_threads(speedup_at, thread_counts=(1, 2, 4), map_fn=reversed_map)
        assert sweep.as_rows() == [(1, 1.0), (2, 2.0), (4, 4.0)]
        assert sweep.best_threads == 4

    def test_default_map_unchanged(self):
        sweep = sweep_threads(lambda p: 1.0 + np.log2(p), thread_counts=(1, 2))
        assert sweep.best_threads == 2
