"""CU-graph construction options: dependence kinds, control edges,
carried-dep exclusion, and weight accounting."""

import numpy as np
import pytest

from repro.cu import build_cu_graph, cu_weight, detect_cus
from repro.cu.detect import region_body
from repro.errors import AnalysisError
from repro.profiling import profile_run
from repro.profiling.model import RAW, WAR, WAW

from conftest import parsed


def setup(src, entry, args, func=None):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    region = prog.function(func or entry).region_id
    cus = detect_cus(prog, region)
    return prog, profile, region, cus


class TestDepKinds:
    SRC = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j];
    }
    for (int k = 0; k < n; k++) {
        A[k] = 9.0;
    }
}
"""

    def test_default_raw_only(self):
        prog, profile, region, cus = setup(
            self.SRC, "f", [np.zeros(8), np.zeros(8), 8]
        )
        graph = build_cu_graph(cus, profile, region)
        # RAW: loop1 -> loop2 only
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)

    def test_war_edges_optional(self):
        prog, profile, region, cus = setup(
            self.SRC, "f", [np.zeros(8), np.zeros(8), 8]
        )
        graph = build_cu_graph(
            cus, profile, region, dep_kinds=(RAW, WAR, WAW)
        )
        # WAR: loop2 reads A, loop3 rewrites it
        assert graph.has_edge(1, 2)
        # WAW: loop1 writes A, loop3 rewrites it
        assert graph.has_edge(0, 2)

    def test_edge_vars_recorded(self):
        prog, profile, region, cus = setup(
            self.SRC, "f", [np.zeros(8), np.zeros(8), 8]
        )
        graph = build_cu_graph(cus, profile, region)
        assert graph.edge_data(0, 1)["vars"] == {"A"}


class TestControlEdges:
    SRC = """\
int f(int n) {
    if (n < 0) {
        return 0;
    }
    int a = n * 2;
    return a + 1;
}
"""

    def test_control_edges_on(self):
        prog, profile, region, cus = setup(self.SRC, "f", [5])
        graph = build_cu_graph(cus, profile, region, include_control=True)
        guard = next(cu for cu in cus if cu.early_exit)
        later = [cu for cu in cus if cu is not guard]
        for cu in later:
            assert graph.has_edge(guard.cu_id, cu.cu_id)
            assert graph.edge_data(guard.cu_id, cu.cu_id)["kind"] == "control"

    def test_control_edges_off(self):
        prog, profile, region, cus = setup(self.SRC, "f", [5])
        graph = build_cu_graph(cus, profile, region, include_control=False)
        guard = next(cu for cu in cus if cu.early_exit)
        assert graph.out_degree(guard.cu_id) == 0


class TestCarriedExclusion:
    def test_loop_carried_deps_not_intra_edges(self):
        # within one iteration the two statements are independent; the
        # carried recurrence must not appear as a CU-graph edge
        src = """\
void f(float A[], float B[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] * 0.5;
        B[i] = B[i - 1] + 1.0;
    }
}
"""
        prog = parsed(src)
        profile, _ = profile_run(prog, "f", [np.ones(8), np.zeros(8), 8])
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        cus = detect_cus(prog, loop)
        graph = build_cu_graph(cus, profile, loop)
        assert graph.num_edges() == 0


class TestWeights:
    def test_weights_cover_region_cost(self):
        src = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] * 2.0;
    }
}
"""
        prog, profile, region, cus = setup(src, "f", [np.zeros(16), np.zeros(16), 16])
        total_weight = sum(cu_weight(cu, profile) for cu in cus)
        region_cost = profile.region_cost(region)
        assert 0.9 * region_cost <= total_weight <= region_cost * 1.01

    def test_region_body_unknown_region(self):
        prog = parsed("void f() { }")
        with pytest.raises(AnalysisError):
            region_body(prog, 999)
