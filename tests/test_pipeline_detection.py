"""Multi-loop pipeline and fusion detection tests (Section III-A)."""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.patterns.fusion import detect_fusion
from repro.patterns.pipeline import detect_multiloop_pipelines, pipeline_chains
from repro.profiling import profile_run

from conftest import parsed


def pipelines_of(src, entry, args, **kw):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    return prog, detect_multiloop_pipelines(prog, profile, **kw)


PERFECT = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 2.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] + 1.0;
    }
}
"""


class TestDetection:
    def test_perfect_pipeline(self):
        _, pipes = pipelines_of(PERFECT, "f", [np.zeros(16), np.zeros(16), 16])
        (p,) = pipes
        assert p.is_perfect
        assert p.efficiency == pytest.approx(1.0)
        assert p.n_pairs == 16

    def test_no_pipeline_between_independent_loops(self):
        _, pipes = pipelines_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0; }
}
""",
            "f",
            [np.zeros(16), np.zeros(16), 16],
        )
        assert pipes == []

    def test_min_pairs_filters_incidental_deps(self):
        _, pipes = pipelines_of(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = B[j] + A[0]; }
}
""",
            "f",
            [np.zeros(16), np.zeros(16), 16],
            min_pairs=3,
        )
        # only one address flows between the loops -> a single pair
        assert pipes == []

    def test_hotspot_filter(self):
        prog = parsed(PERFECT)
        profile, _ = profile_run(prog, "f", [np.zeros(16), np.zeros(16), 16])
        assert detect_multiloop_pipelines(prog, profile, hotspots=set()) == []

    def test_backward_pairs_dropped(self):
        # cross-iteration dependence of the enclosing loop, not a pipeline:
        # the writer loop is lexically after the reader loop
        _, pipes = pipelines_of(
            """\
void f(float A[], float B[], int n, int t) {
    for (int s = 0; s < t; s++) {
        for (int i = 0; i < n; i++) {
            B[i] = A[i] + 1.0;
        }
        for (int j = 0; j < n; j++) {
            A[j] = B[j] * 0.5;
        }
    }
}
""",
            "f",
            [np.zeros(12), np.zeros(12), 12, 3],
        )
        for p in pipes:
            # every reported pipeline flows forward in the source
            assert p.loop_x < p.loop_y or True  # region ids follow source order
        # and the backward A-flow (loop j -> loop i of next s) is absent
        names = {(p.loop_x, p.loop_y) for p in pipes}
        assert all(x < y for x, y in names)

    def test_stage_classes_attached(self):
        _, pipes = pipelines_of(PERFECT, "f", [np.zeros(16), np.zeros(16), 16])
        (p,) = pipes
        assert p.stage_x is not None and p.stage_x.is_doall
        assert p.stage_y is not None and p.stage_y.is_doall


class TestChains:
    def test_three_stage_chain(self):
        _, pipes = pipelines_of(
            """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = A[j] + 1.0; }
    for (int k = 0; k < n; k++) { C[k] = B[k] * 2.0; }
}
""",
            "f",
            [np.zeros(12), np.zeros(12), np.zeros(12), 12],
        )
        # n-stage chains are reported pairwise (Section III-A)
        assert len(pipes) >= 2
        chains = pipeline_chains(pipes)
        assert any(len(chain) >= 3 for chain in chains)

    def test_chain_of_two(self):
        _, pipes = pipelines_of(PERFECT, "f", [np.zeros(12), np.zeros(12), 12])
        chains = pipeline_chains(pipes)
        assert len(chains) == 1
        assert len(chains[0]) == 2

    def test_empty(self):
        assert pipeline_chains([]) == []


class TestFusion:
    def test_perfect_doall_pair_fuses(self):
        prog = parsed(PERFECT)
        result = analyze(prog, "f", [[np.zeros(16), np.zeros(16), 16]])
        assert len(result.fusions) == 1

    def test_offset_pair_does_not_fuse(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n + 1; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = A[j + 1] * 2.0; }
}
"""
        )
        result = analyze(prog, "f", [[np.zeros(17), np.zeros(16), 16]])
        assert result.pipelines
        assert result.fusions == []

    def test_sequential_stage_does_not_fuse(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 1; j < n; j++) { B[j] = B[j - 1] + A[j]; }
}
"""
        )
        result = analyze(prog, "f", [[np.zeros(16), np.zeros(16), 16]])
        assert result.fusions == []

    def test_multi_source_consumer_does_not_fuse(self):
        # 3mm's shape: C depends on A's loop 1:1 but also on all of B's
        prog = parsed(
            """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0; }
    for (int k = 0; k < n; k++) { C[k] = A[k] + B[n - 1 - k]; }
}
"""
        )
        result = analyze(prog, "f", [[np.zeros(16), np.zeros(16), np.zeros(16), 16]])
        fused_ys = {f.loop_y for f in result.fusions}
        k_loop = max(r.region_id for r in prog.regions.values() if r.kind == "loop")
        assert k_loop not in fused_ys
