"""High-level API and CLI tests."""

import json

import numpy as np
import pytest

from repro import analyze_source, compile_source, summarize_patterns
from repro.cli import main
from repro.errors import ValidationError

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""


class TestApi:
    def test_compile_source(self):
        program = compile_source(SRC)
        assert program.has_function("total")

    def test_compile_rejects_invalid(self):
        with pytest.raises(ValidationError):
            compile_source("void f() { x = 1; }")

    def test_analyze_source(self):
        result = analyze_source(SRC, entry="total", arg_sets=[[np.ones(16), 16]])
        assert summarize_patterns(result) == "Reduction"

    def test_multiple_arg_sets_merge(self):
        result = analyze_source(
            SRC, entry="total", arg_sets=[[np.ones(8), 8], [np.ones(32), 32]]
        )
        assert result.profile.runs == 2


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fib" in out and "streamcluster" in out

    def test_bench(self, capsys):
        assert main(["bench", "reg_detect", "--no-source"]) == 0
        out = capsys.readouterr().out
        assert "Multi-loop pipeline" in out
        assert "Simulated best speedup" in out

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        code = main(
            [
                "analyze",
                str(path),
                "--entry",
                "total",
                "--rand",
                "A:32",
                "--scalar",
                "32",
                "--no-source",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_profile_then_detect(self, tmp_path, capsys):
        """The DiscoPoP two-phase workflow: instrumented run -> file ->
        detection over the saved profile."""
        src_path = tmp_path / "total.minic"
        src_path.write_text(SRC)
        profile_path = tmp_path / "total.profile.json"
        assert (
            main(
                [
                    "profile",
                    str(src_path),
                    "--entry",
                    "total",
                    "--rand",
                    "A:32",
                    "--scalar",
                    "32",
                    "-o",
                    str(profile_path),
                ]
            )
            == 0
        )
        assert profile_path.exists()
        out = capsys.readouterr().out
        assert "dependence records" in out
        assert (
            main(
                [
                    "detect",
                    str(src_path),
                    "--profile",
                    str(profile_path),
                    "--no-source",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_table3_summary(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert out.count("|") > 50
        for name in ("fib", "kmeans", "streamcluster"):
            assert name in out

    def test_experiments_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(["experiments", "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "Table VI" in text
        assert "| NO |" not in text  # every label matches

    def test_analyze_json(self, tmp_path, capsys):
        from repro.patterns.schema import SCHEMA_VERSION, analysis_from_json
        from repro.patterns.engine import summarize_patterns

        path = tmp_path / "total.minic"
        path.write_text(SRC)
        base = ["analyze", str(path), "--entry", "total",
                "--rand", "A:32", "--scalar", "32"]
        assert main(base + ["--json"]) == 0
        pretty = capsys.readouterr().out
        doc = json.loads(pretty)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert summarize_patterns(analysis_from_json(pretty)) == "Reduction"
        # compact mode: one line, same document (modulo the re-run's
        # trace wall-clock, which is telemetry, not analysis output)
        assert main(base + ["--json", "--compact"]) == 0
        compact = capsys.readouterr().out
        assert compact.count("\n") == 1
        doc2 = json.loads(compact)
        doc.pop("trace"), doc2.pop("trace")
        assert doc2 == doc

    def test_detect_json_keeps_stdout_pure(self, tmp_path, capsys):
        src_path = tmp_path / "total.minic"
        src_path.write_text(SRC)
        code = main(
            ["detect", str(src_path), "--entry", "total",
             "--rand", "A:32", "--scalar", "32",
             "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # no provenance chatter on stdout
        assert doc["schema_version"] >= 1
        assert "profile source" in captured.err

    def test_bench_json_carries_simulation_block(self, capsys):
        assert main(["bench", "fib", "--json", "--compact"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["simulation"]["best_speedup"] > 1.0
        assert doc["simulation"]["best_threads"] >= 1
        # still a loadable analysis document despite the extension block
        from repro.patterns.schema import analysis_from_dict

        assert analysis_from_dict(doc).hotspots

    def test_analyze_zeros_array(self, tmp_path, capsys):
        src = "void f(float A[][], int n) { for (int i = 0; i < n; i++) { A[i][0] = 1.0; } }"
        path = tmp_path / "k.minic"
        path.write_text(src)
        code = main(
            ["analyze", str(path), "--entry", "f", "--zeros", "A:8,8",
             "--scalar", "8", "--no-source"]
        )
        assert code == 0
        assert "Do-all" in capsys.readouterr().out
