"""High-level API and CLI tests."""

import numpy as np
import pytest

from repro import analyze_source, compile_source, summarize_patterns
from repro.cli import main
from repro.errors import ValidationError

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""


class TestApi:
    def test_compile_source(self):
        program = compile_source(SRC)
        assert program.has_function("total")

    def test_compile_rejects_invalid(self):
        with pytest.raises(ValidationError):
            compile_source("void f() { x = 1; }")

    def test_analyze_source(self):
        result = analyze_source(SRC, entry="total", arg_sets=[[np.ones(16), 16]])
        assert summarize_patterns(result) == "Reduction"

    def test_multiple_arg_sets_merge(self):
        result = analyze_source(
            SRC, entry="total", arg_sets=[[np.ones(8), 8], [np.ones(32), 32]]
        )
        assert result.profile.runs == 2


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fib" in out and "streamcluster" in out

    def test_bench(self, capsys):
        assert main(["bench", "reg_detect", "--no-source"]) == 0
        out = capsys.readouterr().out
        assert "Multi-loop pipeline" in out
        assert "Simulated best speedup" in out

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        code = main(
            [
                "analyze",
                str(path),
                "--entry",
                "total",
                "--rand",
                "A:32",
                "--scalar",
                "32",
                "--no-source",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_profile_then_detect(self, tmp_path, capsys):
        """The DiscoPoP two-phase workflow: instrumented run -> file ->
        detection over the saved profile."""
        src_path = tmp_path / "total.minic"
        src_path.write_text(SRC)
        profile_path = tmp_path / "total.profile.json"
        assert (
            main(
                [
                    "profile",
                    str(src_path),
                    "--entry",
                    "total",
                    "--rand",
                    "A:32",
                    "--scalar",
                    "32",
                    "-o",
                    str(profile_path),
                ]
            )
            == 0
        )
        assert profile_path.exists()
        out = capsys.readouterr().out
        assert "dependence records" in out
        assert (
            main(
                [
                    "detect",
                    str(src_path),
                    "--profile",
                    str(profile_path),
                    "--no-source",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_table3_summary(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert out.count("|") > 50
        for name in ("fib", "kmeans", "streamcluster"):
            assert name in out

    def test_experiments_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(["experiments", "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "Table VI" in text
        assert "| NO |" not in text  # every label matches

    def test_analyze_zeros_array(self, tmp_path, capsys):
        src = "void f(float A[][], int n) { for (int i = 0; i < n; i++) { A[i][0] = 1.0; } }"
        path = tmp_path / "k.minic"
        path.write_text(src)
        code = main(
            ["analyze", str(path), "--entry", "f", "--zeros", "A:8,8",
             "--scalar", "8", "--no-source"]
        )
        assert code == 0
        assert "Do-all" in capsys.readouterr().out
