"""Validator branch coverage and profiler option tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.profiling import Profiler, profile_run
from repro.runtime import Interpreter


def reject(src):
    with pytest.raises(ValidationError):
        validate_program(parse_program(src))


def accept(src):
    validate_program(parse_program(src))


class TestValidatorBranches:
    def test_duplicate_function(self):
        reject("int f() { return 1; }\nint f() { return 2; }")

    def test_duplicate_global(self):
        reject("int g;\nint g;")

    def test_redeclaration_same_scope(self):
        reject("void f() { int x = 1; int x = 2; }")

    def test_shadowing_in_nested_scope_allowed(self):
        accept("void f() { int x = 1; if (x) { int y = 2; } int y = 3; }")

    def test_sibling_loops_same_induction_allowed(self):
        accept(
            "void f(int n) { for (int i = 0; i < n; i++) { } for (int i = 0; i < n; i++) { } }"
        )

    def test_intrinsic_arity(self):
        reject("float f() { return sqrt(1.0, 2.0); }")

    def test_whole_array_assignment(self):
        reject("void f(float A[], float B[]) { A = B; }")

    def test_array_dim_expression_checked(self):
        reject("void f() { float A[m]; }")

    def test_continue_outside_loop(self):
        reject("void f() { continue; }")

    def test_global_initializer_checked(self):
        reject("int g = h;")

    def test_global_init_referencing_earlier_global(self):
        accept("int a = 4;\nint b = a;\nint f() { return b; }")

    def test_param_redeclared_in_body(self):
        reject("void f(int n) { int n = 2; }")


class TestProfilerOptions:
    SRC = """\
void g(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; }
}
void f(float A[], int n) {
    g(A, n);
    g(A, n);
}
"""

    def test_calltree_disabled(self):
        prog = parse_program(self.SRC)
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4], record_calltree=False)
        assert profile.calltree is None
        # everything else still works
        assert profile.deps
        assert profile.pet is not None

    def test_calltree_node_cap(self):
        prog = parse_program(self.SRC)
        profiler = Profiler(max_calltree_nodes=2)
        Interpreter(prog, sink=profiler).run("f", [np.zeros(4), 4])
        profile = profiler.profile
        assert profile.calltree is not None
        assert len(list(profile.calltree.walk())) <= 2
        # analyses unaffected by the cap
        assert profile.pet.inclusive_cost > 0

    def test_profile_runs_requires_inputs(self):
        from repro.profiling import profile_runs

        prog = parse_program(self.SRC)
        with pytest.raises(ValueError):
            profile_runs(prog, "f", [])


class TestMergeErrors:
    def test_mismatched_pet_roots(self):
        p1 = parse_program("int a() { return 1; }\nint b() { return 2; }")
        prof_a, _ = profile_run(p1, "a", [])
        prof_b, _ = profile_run(p1, "b", [])
        with pytest.raises(ValueError):
            prof_a.merge(prof_b)

    def test_merge_with_empty_calltree(self):
        p1 = parse_program("int a() { return 1; }")
        prof1, _ = profile_run(p1, "a", [], record_calltree=False)
        prof2, _ = profile_run(p1, "a", [])
        merged = prof1.merge(prof2)
        assert merged.calltree is not None
