"""Versioned analysis schema tests: round-trip fidelity, version gating,
and the BenchmarkOutcome record convention."""

import json

import numpy as np
import pytest

from repro.patterns.engine import (
    analyze,
    primary_pattern_regions,
    summarize_patterns,
)
from repro.patterns.framework import AnalysisResult
from repro.patterns.schema import (
    SCHEMA_VERSION,
    analysis_from_dict,
    analysis_from_json,
    analysis_to_dict,
    analysis_to_json,
    canonical_analysis_json,
    strip_trace_timings,
)
from repro.runtime.parallel import BenchmarkOutcome

from conftest import parsed

REDUCTION_SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

PIPELINE_SRC = """\
void kernel(float mean[], float path[], int n) {
    for (int i = 0; i < n; i++) {
        mean[i] = mean[i] * 0.5 + i;
    }
    for (int j = 1; j < n; j++) {
        path[j] = path[j - 1] + mean[j];
    }
}
"""


def analyzed(src, entry, args):
    return analyze(parsed(src), entry, [args])


@pytest.fixture(scope="module")
def reduction_result():
    return analyzed(REDUCTION_SRC, "total", [np.ones(16), 16])


@pytest.fixture(scope="module")
def pipeline_result():
    return analyzed(PIPELINE_SRC, "kernel", [np.zeros(32), np.zeros(32), 32])


class TestRoundTrip:
    def test_compact_json_round_trips_byte_identically(self, reduction_result):
        text = canonical_analysis_json(reduction_result)
        restored = analysis_from_json(text)
        assert canonical_analysis_json(restored) == text

    def test_pretty_and_compact_agree(self, reduction_result):
        pretty = analysis_to_json(reduction_result, pretty=True)
        compact = analysis_to_json(reduction_result, pretty=False)
        assert pretty != compact
        assert json.loads(pretty) == json.loads(compact)

    def test_label_and_regions_preserved(self, pipeline_result):
        restored = AnalysisResult.from_json(pipeline_result.to_json())
        assert summarize_patterns(restored) == summarize_patterns(pipeline_result)
        assert primary_pattern_regions(restored) == primary_pattern_regions(
            pipeline_result
        )

    def test_trace_and_evidence_preserved(self, reduction_result):
        restored = analysis_from_dict(analysis_to_dict(reduction_result))
        assert restored.trace is not None
        assert [st.detector for st in restored.trace.stages] == [
            st.detector for st in reduction_result.trace.stages
        ]
        assert restored.trace.evidence == reduction_result.trace.evidence

    def test_pipelines_and_loop_classes_preserved(self, pipeline_result):
        restored = analysis_from_dict(analysis_to_dict(pipeline_result))
        assert len(restored.pipelines) == len(pipeline_result.pipelines)
        for got, want in zip(restored.pipelines, pipeline_result.pipelines):
            assert (got.loop_x, got.loop_y) == (want.loop_x, want.loop_y)
            assert got.a == want.a and got.b == want.b
            assert got.efficiency == want.efficiency
        assert restored.loop_classes.keys() == pipeline_result.loop_classes.keys()
        for region, lc in restored.loop_classes.items():
            assert lc.classification is pipeline_result.loop_classes[region].classification


class TestSpansExtension:
    """``trace.spans`` is a tolerated extension block of schema v1: present
    when the analysis was traced, absent otherwise, never version-gated."""

    def test_analysis_records_detection_spans(self, reduction_result):
        names = {sp.name for sp in reduction_result.trace.spans}
        assert "detect" in names
        assert any(n.startswith("detector:") for n in names)

    def test_spans_round_trip_with_hierarchy(self, reduction_result):
        doc = analysis_to_dict(reduction_result)
        assert doc["trace"]["spans"]  # emitted because non-empty
        restored = analysis_from_dict(doc)
        want = reduction_result.trace.spans
        got = restored.trace.spans
        assert [(sp.name, sp.span_id, sp.parent_id) for sp in got] == [
            (sp.name, sp.span_id, sp.parent_id) for sp in want
        ]
        assert [sp.attrs for sp in got] == [sp.attrs for sp in want]
        assert [sp.duration_s for sp in got] == [sp.duration_s for sp in want]

    def test_detector_spans_parent_under_detect(self, reduction_result):
        spans = reduction_result.trace.spans
        detect = next(sp for sp in spans if sp.name == "detect")
        for sp in spans:
            if sp.name.startswith("detector:"):
                assert sp.parent_id == detect.span_id

    def test_spans_key_absent_when_untraced(self, reduction_result):
        doc = analysis_to_dict(reduction_result)
        doc["trace"].pop("spans")
        restored = analysis_from_dict(doc)  # pre-extension docs still load
        assert restored.trace.spans == []
        assert "spans" not in analysis_to_dict(restored)["trace"]

    def test_strip_trace_timings_drops_spans(self, reduction_result):
        doc = analysis_to_dict(reduction_result)
        stripped = strip_trace_timings(doc)
        assert "spans" not in stripped["trace"]
        assert doc["trace"]["spans"]  # original untouched


class TestVersioning:
    def test_schema_version_stamped(self, reduction_result):
        doc = analysis_to_dict(reduction_result)
        assert doc["schema_version"] == SCHEMA_VERSION == 1

    def test_unsupported_version_raises(self, reduction_result):
        doc = analysis_to_dict(reduction_result)
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            analysis_from_dict(doc)

    def test_unknown_top_level_keys_tolerated(self, reduction_result):
        # extension blocks (e.g. `bench --json`'s "simulation") must not
        # break loaders of the same version
        doc = analysis_to_dict(reduction_result)
        doc["simulation"] = {"best_speedup": 2.0, "best_threads": 4}
        restored = analysis_from_dict(doc)
        assert summarize_patterns(restored) == summarize_patterns(reduction_result)


class TestBenchmarkOutcome:
    OUTCOME = BenchmarkOutcome(
        name="demo",
        suite="synthetic",
        loc=10,
        label="Reduction",
        primary_share=0.9,
        best_speedup=3.5,
        best_threads=4,
        pipelines=((1, 2, 1.0, 0.0, 1.0),),
        profile_digest="deadbeef",
        evidence_accepted=2,
        evidence_rejected=1,
    )

    def test_round_trip(self):
        doc = self.OUTCOME.to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert BenchmarkOutcome.from_dict(doc) == self.OUTCOME
        assert json.loads(json.dumps(doc)) == doc  # JSON-compatible

    def test_wrong_version_rejected(self):
        doc = self.OUTCOME.to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="version"):
            BenchmarkOutcome.from_dict(doc)
