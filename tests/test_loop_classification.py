"""Loop classification tests: do-all / reduction / sequential."""

import numpy as np

from repro.patterns.doall import classify_loop
from repro.patterns.result import LoopClassification
from repro.profiling import profile_run

from conftest import parsed


def classify(src, entry, args, which=0, **kw):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    loops = [r.region_id for r in prog.regions.values() if r.kind == "loop"]
    return classify_loop(prog, profile, loops[which], **kw)


class TestDoAll:
    def test_elementwise_loop(self):
        lc = classify(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = i * 2.0; } }",
            "f",
            [np.zeros(8), 8],
        )
        assert lc.classification is LoopClassification.DOALL

    def test_induction_variable_excluded(self):
        lc = classify(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s = i; } return s; }",
            "f",
            [8],
        )
        # s is overwritten each iteration but never read across: WAW only,
        # and s is privatizable (written before read)
        assert lc.classification is LoopClassification.DOALL

    def test_privatizable_temp_ok(self):
        lc = classify(
            """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        float t = A[i] * 2.0;
        A[i] = t + 1.0;
    }
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert lc.classification is LoopClassification.DOALL
        assert "t" in lc.privatizable

    def test_nested_loop_induction_excluded(self):
        lc = classify(
            """\
void f(float A[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            A[i][j] = i * 10.0 + j;
        }
    }
}
""",
            "f",
            [np.zeros((5, 5)), 5],
            which=0,
        )
        assert lc.classification is LoopClassification.DOALL


class TestReduction:
    def test_scalar_accumulator(self):
        lc = classify(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert lc.classification is LoopClassification.REDUCTION
        assert [c.var for c in lc.reductions] == ["s"]

    def test_two_accumulators(self):
        lc = classify(
            """\
float f(float A[], int n) {
    float s = 0.0;
    float p = 1.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
        p *= A[i];
    }
    return s + p;
}
""",
            "f",
            [np.ones(8) * 1.1, 8],
        )
        assert lc.classification is LoopClassification.REDUCTION
        assert {c.var for c in lc.reductions} == {"s", "p"}

    def test_accumulator_plus_real_dependence_is_sequential(self):
        lc = classify(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 1; i < n; i++) {
        s += A[i];
        A[i] = A[i - 1] * 0.5;
    }
    return s;
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert lc.classification is LoopClassification.SEQUENTIAL


class TestSequential:
    def test_recurrence(self):
        lc = classify(
            "void f(float A[], int n) { for (int i = 1; i < n; i++) { A[i] = A[i - 1] + 1.0; } }",
            "f",
            [np.zeros(8), 8],
        )
        assert lc.classification is LoopClassification.SEQUENTIAL
        assert "A" in lc.blocking_vars

    def test_read_first_scalar_blocks(self):
        lc = classify(
            """\
float f(float A[], int n) {
    float last = 0.0;
    for (int i = 0; i < n; i++) {
        A[i] = A[i] + last;
        last = A[i];
    }
    return last;
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert lc.classification is LoopClassification.SEQUENTIAL


class TestPrivatizationAblation:
    SRC = """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        float t = A[i] * 2.0;
        A[i] = t + 1.0;
    }
}
"""

    def test_without_privatization_temp_blocks(self):
        lc = classify(self.SRC, "f", [np.ones(8), 8], use_privatization=False)
        assert lc.classification is LoopClassification.SEQUENTIAL
        assert "t" in lc.blocking_vars

    def test_with_privatization_clean(self):
        lc = classify(self.SRC, "f", [np.ones(8), 8], use_privatization=True)
        assert lc.is_doall
