"""Schedule simulator tests: do-all, reduction, tasks, pipeline, geometric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.sim import (
    Machine,
    compose_speedup,
    simulate_doall,
    simulate_geometric,
    simulate_pipeline,
    simulate_recursive_tasks,
    simulate_reduction,
    simulate_task_graph,
)
from repro.sim.result import SimOutcome

M = Machine()


class TestMachine:
    def test_serial_time_unchanged(self):
        assert M.parallel_time(1000.0, 1) == 1000.0

    def test_compute_scaling(self):
        assert M.parallel_time(1000.0, 4) == pytest.approx(250.0)

    def test_roofline_binds_streaming_work(self):
        # fully streaming work cannot scale past bw_saturation
        capped = M.parallel_time(1000.0, 32, streaming_fraction=1.0)
        assert capped == pytest.approx(1000.0 * M.streaming_cost / M.bw_saturation)

    def test_with_threads_validates(self):
        with pytest.raises(ValueError):
            M.with_threads(0)

    @given(
        work=st.floats(1.0, 1e6),
        p=st.integers(1, 64),
        sf=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_parallel_time_bounds(self, work, p, sf):
        t = M.parallel_time(work, p, sf)
        assert t >= work / p - 1e-9
        if sf == 0.0:
            assert t == pytest.approx(work / p)


class TestDoAll:
    def test_single_thread_is_serial(self):
        out = simulate_doall([[10.0] * 8], M, threads=1)
        assert out.speedup == 1.0

    def test_balanced_loop_scales(self):
        out = simulate_doall([[100.0] * 64], M, threads=8)
        assert 4.0 < out.speedup <= 8.0

    def test_imbalanced_block_limits(self):
        costs = [1.0] * 63 + [1000.0]
        out = simulate_doall([costs], M, threads=8)
        assert out.parallel_time >= 1000.0

    def test_many_invocations_pay_many_barriers(self):
        one = simulate_doall([[10.0] * 64], M, threads=8)
        many = simulate_doall([[10.0] * 8] * 8, M, threads=8)
        assert many.parallel_time > one.parallel_time

    def test_serial_time_is_total_work(self):
        out = simulate_doall([[3.0, 4.0], [5.0]], M, threads=4)
        assert out.serial_time == 12.0

    @given(
        n=st.integers(1, 100),
        cost=st.floats(1.0, 100.0),
        p=st.integers(2, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_speedup_never_exceeds_threads(self, n, cost, p):
        out = simulate_doall([[cost] * n], M, threads=p)
        assert out.speedup <= p + 1e-9


class TestReduction:
    def test_combine_cost_added(self):
        base = simulate_doall([[50.0] * 32], M, threads=8)
        red = simulate_reduction([[50.0] * 32], M, threads=8)
        assert red.parallel_time > base.parallel_time

    def test_array_combine_scales_with_elements(self):
        small = simulate_reduction([[50.0] * 32], M, threads=8, n_reduction_vars=1)
        big = simulate_reduction([[50.0] * 32], M, threads=8, n_reduction_vars=64)
        assert big.parallel_time > small.parallel_time

    def test_single_thread_no_combine(self):
        out = simulate_reduction([[50.0] * 32], M, threads=1)
        assert out.speedup == 1.0


class TestTaskGraph:
    def graph(self, edges, n):
        g = DiGraph()
        for i in range(n):
            g.add_node(i)
        for a, b in edges:
            g.add_edge(a, b)
        return g

    def test_chain_cannot_speed_up(self):
        g = self.graph([(0, 1), (1, 2)], 3)
        out = simulate_task_graph(g, {0: 100.0, 1: 100.0, 2: 100.0}, M, threads=4)
        assert out.speedup < 1.0  # overheads only

    def test_independent_tasks_scale(self):
        g = self.graph([], 8)
        out = simulate_task_graph(g, {i: 1000.0 for i in range(8)}, M, threads=8)
        assert out.speedup > 4.0

    def test_diamond_respects_dependences(self):
        g = self.graph([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        w = {0: 10.0, 1: 100.0, 2: 100.0, 3: 10.0}
        out = simulate_task_graph(g, w, M, threads=4)
        # lower bound: critical path 0 -> worker -> 3
        assert out.parallel_time >= 120.0

    def test_single_thread_serial(self):
        g = self.graph([], 4)
        out = simulate_task_graph(g, {i: 10.0 for i in range(4)}, M, threads=1)
        assert out.parallel_time == out.serial_time


class TestRecursiveTasks:
    def test_brent_bound_shape(self):
        out = simulate_recursive_tasks(
            work=100_000.0, span=1_000.0, n_tasks=100, machine=M, threads=8
        )
        assert out.parallel_time >= 100_000.0 / 8
        assert out.parallel_time >= 1_000.0

    def test_span_dominates_at_high_threads(self):
        out = simulate_recursive_tasks(
            work=10_000.0, span=5_000.0, n_tasks=10, machine=M, threads=32
        )
        assert out.speedup < 2.1

    def test_task_overhead_charged(self):
        few = simulate_recursive_tasks(10_000.0, 10.0, 10, M, threads=4)
        many = simulate_recursive_tasks(10_000.0, 10.0, 10_000, M, threads=4)
        assert many.parallel_time > few.parallel_time


class TestPipeline:
    def test_perfect_pipeline_overlaps(self):
        cx = [100.0] * 20
        cy = [10.0] * 20
        out = simulate_pipeline(cx, cy, a=1.0, b=0.0, machine=M, threads=8)
        # stage 1 parallelized over 7 threads; y trails slightly
        assert out.speedup > 3.0

    def test_sequential_producer_two_stage_cap(self):
        cx = [100.0] * 20
        cy = [100.0] * 20
        out = simulate_pipeline(
            cx, cy, a=1.0, b=0.0, machine=M, threads=8, stage_x_parallel=False
        )
        assert out.speedup < 2.1

    def test_full_serialization_when_y_needs_everything(self):
        cx = [100.0] * 20
        cy = [100.0] * 20
        # b = -20: y's first iteration needs x's last
        out = simulate_pipeline(
            cx, cy, a=1.0, b=-20.0, machine=M, threads=4, stage_x_parallel=False
        )
        assert out.speedup < 1.1

    def test_single_thread_serial(self):
        out = simulate_pipeline([10.0] * 4, [10.0] * 4, 1.0, 0.0, M, threads=1)
        assert out.parallel_time == out.serial_time

    def test_empty_stage(self):
        out = simulate_pipeline([], [10.0], 1.0, 0.0, M, threads=4)
        assert out.speedup == 1.0


class TestGeometric:
    def test_chunks_limit_parallelism(self):
        out = simulate_geometric([1000.0] * 4, M, threads=32)
        assert out.speedup <= 4.0

    def test_lpt_handles_imbalance(self):
        out = simulate_geometric([800.0, 100.0, 100.0, 100.0, 100.0], M, threads=4)
        assert out.parallel_time >= 800.0
        assert out.speedup > 1.2

    def test_single_chunk_serial(self):
        out = simulate_geometric([500.0], M, threads=8)
        assert out.speedup == 1.0


class TestCompose:
    def test_amdahl_limits(self):
        region = SimOutcome(threads=8, serial_time=500.0, parallel_time=62.5)
        total = 1000.0  # half the program stays serial
        speedup = compose_speedup(total, [region])
        assert speedup == pytest.approx(1000.0 / 562.5)
        assert speedup < 2.0

    def test_full_coverage(self):
        region = SimOutcome(threads=8, serial_time=1000.0, parallel_time=125.0)
        assert compose_speedup(1000.0, [region]) == pytest.approx(8.0)

    def test_multiple_regions_sum(self):
        r1 = SimOutcome(threads=4, serial_time=400.0, parallel_time=100.0)
        r2 = SimOutcome(threads=4, serial_time=400.0, parallel_time=100.0)
        assert compose_speedup(1000.0, [r1, r2]) == pytest.approx(1000.0 / 400.0)

    def test_outcome_addition(self):
        r1 = SimOutcome(threads=4, serial_time=10.0, parallel_time=5.0)
        r2 = SimOutcome(threads=4, serial_time=20.0, parallel_time=5.0)
        total = sum([r1, r2])
        assert total.serial_time == 30.0
        assert total.parallel_time == 10.0

    def test_outcome_addition_thread_mismatch(self):
        r1 = SimOutcome(threads=4, serial_time=1.0, parallel_time=1.0)
        r2 = SimOutcome(threads=8, serial_time=1.0, parallel_time=1.0)
        with pytest.raises(ValueError):
            r1 + r2
