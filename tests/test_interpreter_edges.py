"""Interpreter edge cases beyond the core semantics tests."""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.runtime import run_program

from conftest import parsed


class TestControlFlowEdges:
    def test_continue_in_while_still_advances(self):
        prog = parsed(
            """\
int f(int n) {
    int i = 0;
    int s = 0;
    while (i < n) {
        i++;
        if (i % 2 == 0) {
            continue;
        }
        s += i;
    }
    return s;
}
"""
        )
        assert run_program(prog, "f", [10]).value == 1 + 3 + 5 + 7 + 9

    def test_break_only_exits_innermost(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (j == 1) {
                break;
            }
            s += 1;
        }
    }
    return s;
}
"""
        )
        assert run_program(prog, "f", [5]).value == 5

    def test_return_from_nested_loop(self):
        prog = parsed(
            """\
int f(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (i * j == 6) {
                return i * 10 + j;
            }
        }
    }
    return -1;
}
"""
        )
        assert run_program(prog, "f", [5]).value == 23

    def test_zero_trip_loop(self):
        prog = parsed(
            "int f(int n) { int s = 5; for (int i = 0; i < n; i++) { s = 0; } return s; }"
        )
        assert run_program(prog, "f", [0]).value == 5

    def test_void_function_returns_none(self):
        prog = parsed("void f(int n) { n = n + 1; }")
        assert run_program(prog, "f", [1]).value is None

    def test_missing_return_yields_none(self):
        prog = parsed("int f(int n) { if (n > 0) { return 1; } }")
        assert run_program(prog, "f", [-1]).value is None


class TestCoercions:
    def test_int_decl_truncates_float_init(self):
        prog = parsed("int f() { int x = toint(7.9); return x; }")
        assert run_program(prog, "f", []).value == 7

    def test_int_slot_keeps_int_after_compound_float(self):
        prog = parsed("int f(int x) { x += toint(1.5); return x; }")
        assert run_program(prog, "f", [1]).value == 2

    def test_mixed_arithmetic_promotes(self):
        prog = parsed("float f(int a) { return a / 2.0; }")
        assert run_program(prog, "f", [7]).value == pytest.approx(3.5)

    def test_logical_ops_yield_ints(self):
        prog = parsed("int f(int a, int b) { return (a && b) + (a || b); }")
        assert run_program(prog, "f", [3, 0]).value == 1


class TestArgumentHandling:
    def test_wrong_arity(self):
        prog = parsed("int f(int a, int b) { return a + b; }")
        with pytest.raises(InterpreterError):
            run_program(prog, "f", [1])

    def test_unknown_entry(self):
        prog = parsed("int f() { return 1; }")
        with pytest.raises(InterpreterError):
            run_program(prog, "nope", [])

    def test_wrong_array_rank(self):
        prog = parsed("void f(float A[][]) { A[0][0] = 1.0; }")
        with pytest.raises(InterpreterError):
            run_program(prog, "f", [np.zeros(4)])

    def test_list_arguments_accepted(self):
        prog = parsed(
            "float f(float A[], int n) { return A[n - 1]; }"
        )
        assert run_program(prog, "f", [[1.0, 2.0, 3.0], 3]).value == 3.0

    def test_nested_list_arguments(self):
        prog = parsed("int f(int M[][]) { return M[1][1]; }")
        assert run_program(prog, "f", [[[1, 2], [3, 4]]]).value == 4

    def test_ref_scalar_result_surfaced(self):
        prog = parsed("void f(int &out, int v) { out = v * 3; }")
        result = run_program(prog, "f", [0, 14])
        assert result.scalars["out"] == 42

    def test_array_expression_argument_rejected(self):
        prog = parsed(
            """\
void g(float A[]) { A[0] = 1.0; }
void f(float A[], int n) { g(A); }
"""
        )
        # fine: named array passes; the error case is a non-name expression
        bad = parsed(
            """\
void g(float A[]) { A[0] = 1.0; }
void f(float A[], int n) { n = n; }
"""
        )
        assert run_program(prog, "f", [np.zeros(2), 2]).value is None


class TestDeepRecursion:
    def test_thousand_deep_recursion(self):
        prog = parsed(
            "int f(int n) { if (n == 0) { return 0; } return 1 + f(n - 1); }"
        )
        assert run_program(prog, "f", [1000]).value == 1000


class TestDynamicArrays:
    def test_runtime_sized_local_array(self):
        prog = parsed(
            """\
int f(int n) {
    int buf[n * 2];
    for (int i = 0; i < n * 2; i++) {
        buf[i] = i;
    }
    return buf[n];
}
"""
        )
        assert run_program(prog, "f", [5]).value == 5

    def test_recursive_local_arrays_are_distinct(self):
        prog = parsed(
            """\
int f(int n) {
    int buf[4];
    buf[0] = n;
    if (n > 0) {
        int ignored = f(n - 1);
        ignored = ignored + 0;
    }
    return buf[0];
}
"""
        )
        assert run_program(prog, "f", [3]).value == 3
