"""Regression lock for analysis-document determinism across execution paths.

PR 4 fixed a ``loop_trips`` ordering instability that made nominally equal
analyses serialize differently depending on how the profile was obtained.
This module pins the stronger property that fix enabled: a **cold** run, a
**warm-cache** run (profile replayed from disk), and a **service** run of
the same program + inputs produce byte-identical canonical JSON once
:func:`~repro.patterns.schema.strip_trace_timings` removes the only
legitimately nondeterministic content (stage wall clocks and the
``trace.spans`` telemetry block, whose structure differs per path: the
warm run has a cache hit where the cold run profiled, and the service run
adds queue-wait).
"""

import json

import pytest

from repro.api import compile_source
from repro.patterns.engine import analyze
from repro.patterns.schema import analysis_to_dict, strip_trace_timings
from repro.profiling.cache import ProfileCache
from repro.profiling.serialize import canonical_json
from repro.service.client import ServiceClient
from repro.service.jobs import build_call_args
from repro.service.server import AnalysisService

#: Two dependent loops: engages the pipeline detector and its loop-trip
#: bookkeeping — the machinery whose ordering PR 4 stabilized.
SRC = """\
void pipe(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 0.5;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] * 2.0;
    }
}
"""

#: Portable argument spec shared verbatim by the local and service paths,
#: so all three runs see bit-identical inputs.
ARG_SPECS = [["zeros", "A:64"], ["zeros", "B:64"], ["scalar", "64"]]


def _canonical(doc):
    return canonical_json(strip_trace_timings(doc))


def _local_doc(cache):
    program = compile_source(SRC)
    args = build_call_args(ARG_SPECS, seed=0)
    result = analyze(program, "pipe", [args], cache=cache)
    return analysis_to_dict(result)


class TestColdWarmServiceIdentity:
    @pytest.mark.slow  # starts a live daemon for the third path
    def test_three_paths_byte_identical_after_strip(self, tmp_path):
        cache = ProfileCache(root=tmp_path / "cache")
        cold = _local_doc(cache)
        assert cache.stats.hits == 0 and cache.stats.stores == 1
        warm = _local_doc(cache)
        assert cache.stats.hits == 1

        svc = AnalysisService(port=0, workers=1, cache_dir=str(tmp_path / "svc"))
        svc.start_background()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=5.0)
            job = client.submit_source(SRC, entry="pipe", args=ARG_SPECS)
            record = client.wait(job["id"], timeout=60.0)
        finally:
            svc.shutdown()
        assert record["state"] == "done"
        service = record["result"]

        assert _canonical(cold) == _canonical(warm) == _canonical(service)

    def test_spans_differ_per_path_which_is_why_strip_drops_them(self, tmp_path):
        # the identity above is only byte-exact BECAUSE strip removes the
        # spans block: each path's telemetry legitimately differs
        cache = ProfileCache(root=tmp_path / "cache")
        cold = _local_doc(cache)
        warm = _local_doc(cache)
        cold_names = {sp["name"] for sp in cold["trace"].get("spans", [])}
        warm_names = {sp["name"] for sp in warm["trace"].get("spans", [])}
        # cold: miss -> profiled -> stored; warm: hit, no store
        assert "profile" in cold_names and "cache.store" in cold_names
        assert "cache.read" in warm_names and "cache.store" not in warm_names
        # round-trip safety: the stripped docs still parse as JSON equal
        assert json.loads(_canonical(cold)) == json.loads(_canonical(warm))


class TestLearnArtifactDeterminism:
    """The learned baseline inherits the same contract: features and model
    artifacts are byte-identical across repeated runs, across the compiled
    and tree engines, and across serial vs ``--parallel`` extraction."""

    @pytest.fixture(scope="class")
    def suite(self, tmp_path_factory):
        from repro.corpus import generate_corpus, load_corpus

        out = tmp_path_factory.mktemp("learn-det") / "corpus"
        generate_corpus(12, 9, out, adversarial=True)
        return load_corpus(out)

    def test_features_byte_identical_across_runs_engines_parallelism(
        self, suite
    ):
        from repro.learn import corpus_features

        baseline = canonical_json(corpus_features(suite))
        assert canonical_json(corpus_features(suite)) == baseline
        assert canonical_json(corpus_features(suite, engine="tree")) == baseline
        assert canonical_json(corpus_features(suite, parallel=True)) == baseline

    def test_model_artifact_byte_identical_across_runs_and_engines(
        self, suite
    ):
        from repro.learn import train_on_corpus

        for kind in ("logistic", "tree"):
            baseline = train_on_corpus(suite, kind=kind, seed=5).to_json()
            again = train_on_corpus(suite, kind=kind, seed=5).to_json()
            tree_engine = train_on_corpus(
                suite, kind=kind, seed=5, engine="tree", parallel=True
            ).to_json()
            assert again == baseline
            assert tree_engine == baseline
