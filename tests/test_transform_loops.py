"""Loop peeling and fission tests."""

import numpy as np
import pytest

from repro.runtime import run_program
from repro.transform import (
    FissionError,
    PeelError,
    fission_loop,
    peel_first_iteration,
)

from conftest import parsed


def first_loop(prog):
    return next(r.region_id for r in prog.regions.values() if r.kind == "loop")


class TestPeeling:
    SRC = """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] * 2.0 + i;
    }
}
"""

    def test_semantics_preserved(self):
        prog = parsed(self.SRC)
        peeled = peel_first_iteration(prog, first_loop(prog))
        a = np.arange(8.0)
        r1 = run_program(prog, "f", [a, 8])
        r2 = run_program(peeled, "f", [a, 8])
        assert np.allclose(r1.arrays["A"], r2.arrays["A"])

    def test_zero_trip_loop_stays_zero_trip(self):
        prog = parsed(self.SRC)
        peeled = peel_first_iteration(prog, first_loop(prog))
        a = np.arange(4.0)
        r1 = run_program(prog, "f", [a, 0])
        r2 = run_program(peeled, "f", [a, 0])
        assert np.allclose(r1.arrays["A"], r2.arrays["A"])

    def test_loop_start_advanced(self):
        prog = parsed(self.SRC)
        peeled = peel_first_iteration(prog, first_loop(prog))
        assert "int i = 1" in peeled.source

    def test_reg_detect_style_alignment(self):
        """The paper's reg_detect trick: after peeling the first loop's
        first iteration, the remaining loops align one-to-one."""
        src = """\
void f(float mean[], float path[], int n) {
    for (int i = 0; i < n; i++) {
        mean[i] = i * 2.0;
    }
    for (int i = 1; i < n; i++) {
        path[i] = path[i - 1] + mean[i];
    }
}
"""
        prog = parsed(src)
        peeled = peel_first_iteration(prog, first_loop(prog))
        r1 = run_program(prog, "f", [np.zeros(8), np.zeros(8), 8])
        r2 = run_program(peeled, "f", [np.zeros(8), np.zeros(8), 8])
        assert np.allclose(r1.arrays["path"], r2.arrays["path"])
        # both remaining loops now start at 1
        assert peeled.source.count("int i = 1") == 2

    def test_recurrence_peeling_preserved(self):
        src = """\
void f(float A[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] + 1.0;
    }
}
"""
        prog = parsed(src)
        peeled = peel_first_iteration(prog, first_loop(prog))
        r1 = run_program(prog, "f", [np.zeros(8), 8])
        r2 = run_program(peeled, "f", [np.zeros(8), 8])
        assert np.allclose(r1.arrays["A"], r2.arrays["A"])

    def test_non_literal_start_rejected(self):
        prog = parsed(
            "void f(float A[], int n, int s) { for (int i = s; i < n; i++) { A[i] = 1.0; } }"
        )
        with pytest.raises(PeelError):
            peel_first_iteration(prog, first_loop(prog))

    def test_written_induction_rejected(self):
        prog = parsed(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = 1.0; i = i + 0; } }"
        )
        with pytest.raises(PeelError):
            peel_first_iteration(prog, first_loop(prog))

    def test_unknown_region_rejected(self):
        prog = parsed(self.SRC)
        with pytest.raises(PeelError):
            peel_first_iteration(prog, 999)


class TestFission:
    SRC = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 2.0;
        B[i] = A[i] + 1.0;
    }
}
"""

    def test_semantics_preserved(self):
        prog = parsed(self.SRC)
        split = fission_loop(prog, first_loop(prog), split_at=1)
        r1 = run_program(prog, "f", [np.zeros(8), np.zeros(8), 8])
        r2 = run_program(split, "f", [np.zeros(8), np.zeros(8), 8])
        assert np.allclose(r1.arrays["B"], r2.arrays["B"])

    def test_two_loops_afterwards(self):
        prog = parsed(self.SRC)
        split = fission_loop(prog, first_loop(prog), split_at=1)
        loops = [r for r in split.regions.values() if r.kind == "loop"]
        assert len(loops) == 2

    def test_fission_then_detection_sees_pipeline(self):
        from repro.patterns.engine import analyze, summarize_patterns

        prog = parsed(self.SRC)
        split = fission_loop(prog, first_loop(prog), split_at=1)
        result = analyze(split, "f", [[np.zeros(24), np.zeros(24), 24]])
        assert summarize_patterns(result) in ("Fusion", "Multi-loop pipeline")

    def test_scalar_flow_across_split_rejected(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        float t = A[i] * 2.0;
        A[i] = t + 1.0;
    }
}
"""
        )
        with pytest.raises(FissionError):
            fission_loop(prog, first_loop(prog), split_at=1)

    def test_bad_split_index_rejected(self):
        prog = parsed(self.SRC)
        with pytest.raises(FissionError):
            fission_loop(prog, first_loop(prog), split_at=0)
        with pytest.raises(FissionError):
            fission_loop(prog, first_loop(prog), split_at=5)

    def test_induction_crossing_is_fine(self):
        # the induction variable is read in both halves, which is allowed
        prog = parsed(self.SRC)
        split = fission_loop(prog, first_loop(prog), split_at=1)
        assert split.has_function("f")
