"""Direct printer unit tests (beyond the round-trip property)."""

import pytest

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    FloatLit,
    IntLit,
    UnaryOp,
    VarLV,
    VarRef,
)
from repro.lang.parser import parse_program
from repro.lang.printer import format_expr, format_lvalue, format_program, format_stmt


class TestFormatExpr:
    def test_literals(self):
        assert format_expr(IntLit(42)) == "42"
        assert format_expr(FloatLit(2.5)) == "2.5"

    def test_float_always_has_point_or_exponent(self):
        assert format_expr(FloatLit(3.0)) == "3.0"
        text = format_expr(FloatLit(1e-8))
        assert "e" in text or "." in text

    def test_binop_parenthesized(self):
        expr = BinOp("+", VarRef("a"), BinOp("*", VarRef("b"), VarRef("c")))
        assert format_expr(expr) == "(a + (b * c))"

    def test_unary(self):
        assert format_expr(UnaryOp("-", VarRef("x"))) == "-(x)"
        assert format_expr(UnaryOp("!", IntLit(0))) == "!(0)"

    def test_call(self):
        expr = Call("max", [VarRef("a"), IntLit(3)])
        assert format_expr(expr) == "max(a, 3)"

    def test_array_ref(self):
        expr = ArrayRef("A", [VarRef("i"), IntLit(0)])
        assert format_expr(expr) == "A[i][0]"

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            format_expr(object())


class TestFormatLValue:
    def test_var(self):
        assert format_lvalue(VarLV("x")) == "x"

    def test_array(self):
        assert format_lvalue(ArrayLV("A", [IntLit(1)])) == "A[1]"


class TestFormatStmt:
    def stmt(self, src):
        return parse_program(f"void f(int n, float A[]) {{ {src} }}").function("f").body[0]

    def test_assign(self):
        lines = format_stmt(self.stmt("n += 2;"))
        assert lines == ["n += 2;"]

    def test_indentation(self):
        lines = format_stmt(self.stmt("if (n) { n = 1; }"), indent=1)
        assert lines[0].startswith("    if")
        assert lines[1].startswith("        n")

    def test_while(self):
        lines = format_stmt(self.stmt("while (n > 0) { n--; }"))
        assert lines[0] == "while ((n > 0)) {"

    def test_break_continue(self):
        lines = format_stmt(self.stmt("for (;;) { break; }"))
        assert "    break;" in lines

    def test_annotations_precede_statement(self):
        stmt = self.stmt("n = 1;")
        lines = format_stmt(stmt, annotations={stmt.stmt_id: ["note one", "note two"]})
        assert lines[:2] == ["// note one", "// note two"]
        assert lines[2] == "n = 1;"


class TestFormatProgram:
    def test_globals_separated(self):
        prog = parse_program("int g = 1;\nvoid f() { g = 2; }")
        text = format_program(prog)
        assert text.startswith("int g = 1;\n\n")

    def test_functions_blank_line_separated(self):
        prog = parse_program("void a() { }\nvoid b() { }")
        text = format_program(prog)
        assert "}\n\nvoid b" in text

    def test_reference_param_printed(self):
        prog = parse_program("void f(int &x, float A[][]) { x = 1; }")
        text = format_program(prog)
        assert "int &x" in text
        assert "float A[][]" in text
