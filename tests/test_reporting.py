"""Reporting tests: tables, DOT emission, and the full analysis report."""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.profiling import profile_run
from repro.reporting import analysis_report, cu_graph_dot, format_table, pet_dot

from conftest import parsed


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1]
        assert text.endswith("\n")

    def test_numeric_right_alignment(self):
        text = format_table(["n"], [[1], [100]])
        rows = [l for l in text.splitlines() if l.startswith("| ")][1:]
        # right-aligned: the last digit of each value ends at the same column
        ends = [row[:-1].rstrip().__len__() for row in rows]
        assert ends[0] == ends[1]

    def test_floats_two_decimals(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text and "3.142" not in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "| a" in text


class TestDot:
    def fib_task(self, fib_program):
        result = analyze(fib_program, "fib", [[10]])
        return result.tasks[fib_program.function("fib").region_id]

    def test_cu_graph_dot_structure(self, fib_program):
        task = self.fib_task(fib_program)
        dot = cu_graph_dot(task)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for cu in task.cus:
            assert f"cu{cu.cu_id}" in dot
        assert "->" in dot

    def test_cu_graph_marks_in_labels(self, fib_program):
        dot = cu_graph_dot(self.fib_task(fib_program))
        assert "fork" in dot and "worker" in dot and "barrier" in dot

    def test_control_edges_dashed(self, fib_program):
        dot = cu_graph_dot(self.fib_task(fib_program))
        assert "style=dashed" in dot

    def test_pet_dot(self):
        prog = parsed(
            """\
void inner(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = 1.0; }
}
void f(float A[], int n) {
    for (int t = 0; t < 2; t++) { inner(A, n); }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(4), 4])
        dot = pet_dot(profile.pet)
        assert dot.startswith("digraph")
        assert "trips=" in dot
        assert "calls=" in dot

    def test_pet_dot_marks_recursion(self, fib_program):
        profile, _ = profile_run(fib_program, "fib", [8])
        assert "(recursive)" in pet_dot(profile.pet)


class TestAnalysisReport:
    def test_report_sections(self, pipeline_program):
        result = analyze(
            pipeline_program, "kernel", [[np.ones(32), np.zeros(32), 32]]
        )
        text = analysis_report(result)
        assert "Primary pattern: Multi-loop pipeline" in text
        assert "Hotspots" in text
        assert "Eq. 1-2" in text
        assert "Annotated source" in text

    def test_report_without_source(self, pipeline_program):
        result = analyze(
            pipeline_program, "kernel", [[np.ones(32), np.zeros(32), 32]]
        )
        text = analysis_report(result, include_source=False)
        assert "Annotated source" not in text

    def test_report_task_section(self, fib_program):
        result = analyze(fib_program, "fib", [[10]])
        text = analysis_report(result)
        assert "Task parallelism in fib" in text
        assert "estimated speedup" in text

    def test_report_reduction_section(self, reduction_program):
        result = analyze(reduction_program, "total", [[np.ones(32), 32]])
        text = analysis_report(result)
        assert "Reduction in" in text
        assert "'sum'" in text

    def test_supporting_structure_shown(self, reduction_program):
        result = analyze(reduction_program, "total", [[np.ones(32), 32]])
        text = analysis_report(result)
        assert "SPMD" in text
