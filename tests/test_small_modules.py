"""Coverage for the small supporting modules: interpretation text,
intrinsics, values/memory, sweeps, and errors."""

import numpy as np
import pytest

from repro.errors import InterpreterError, SourceError
from repro.patterns.interpretation import (
    interpret_a,
    interpret_b,
    interpret_efficiency,
    interpret_pipeline,
)
from repro.runtime.intrinsics import INTRINSICS
from repro.runtime.values import AddressSpace, ArrayValue, ScalarCell
from repro.sim.sweep import ThreadSweep, sweep_threads

from conftest import parsed
from repro.runtime import run_program


class TestInterpretation:
    def test_a_one(self):
        assert "exactly" in interpret_a(1.0)

    def test_a_small(self):
        text = interpret_a(0.05)
        assert "20" in text

    def test_a_large(self):
        assert "3" in interpret_a(3.0)

    def test_a_zero(self):
        assert "do not scale" in interpret_a(0.0)

    def test_b_zero(self):
        assert "all iterations" in interpret_b(0.0)

    def test_b_negative_names_count(self):
        assert "3.5" in interpret_b(-3.5)

    def test_b_positive(self):
        assert "do not depend" in interpret_b(2.0)

    def test_efficiency_bands(self):
        assert "parallel" in interpret_efficiency(1.8)
        assert "efficient" in interpret_efficiency(0.97)
        assert "waiting" in interpret_efficiency(0.5)
        assert "inefficient" in interpret_efficiency(0.05)

    def test_combined_sentence(self):
        text = interpret_pipeline(1.0, -1.0, 0.99)
        assert text.count(";") == 2
        assert text.endswith(".")


class TestIntrinsics:
    def test_expected_set(self):
        assert {"sqrt", "fabs", "min", "max", "pow", "toint", "tofloat"} <= set(
            INTRINSICS
        )

    def test_arities(self):
        assert INTRINSICS["sqrt"].arity == 1
        assert INTRINSICS["pow"].arity == 2

    def test_costs_positive(self):
        assert all(spec.cost > 0 for spec in INTRINSICS.values())

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("sqrt(16.0)", 4.0),
            ("fabs(0.0 - 3.5)", 3.5),
            ("min(2.0, 5.0)", 2.0),
            ("max(2.0, 5.0)", 5.0),
            ("floor(2.7)", 2.0),
            ("ceil(2.1)", 3.0),
            ("pow(2.0, 10.0)", 1024.0),
            ("tofloat(3)", 3.0),
        ],
    )
    def test_evaluation(self, expr, expected):
        prog = parsed(f"float f() {{ return {expr}; }}")
        assert run_program(prog, "f", []).value == pytest.approx(expected)

    def test_toint_truncates(self):
        prog = parsed("int f() { return toint(3.9); }")
        assert run_program(prog, "f", []).value == 3


class TestValues:
    def space(self):
        return AddressSpace()

    def test_addresses_monotone_and_disjoint(self):
        space = self.space()
        a = ArrayValue("float", (4,), space)
        b = ArrayValue("float", (4,), space)
        assert a.base + a.size <= b.base

    def test_flat_index_row_major(self):
        arr = ArrayValue("int", (3, 4), self.space())
        assert arr.flat_index((2, 3)) == 11
        assert arr.flat_index((0, 0)) == 0

    def test_bounds_check(self):
        arr = ArrayValue("int", (3,), self.space())
        with pytest.raises(InterpreterError):
            arr.flat_index((3,))
        with pytest.raises(InterpreterError):
            arr.flat_index((-1,))

    def test_rank_check(self):
        arr = ArrayValue("int", (3, 3), self.space())
        with pytest.raises(InterpreterError):
            arr.flat_index((1,))

    def test_int_array_coerces_values(self):
        arr = ArrayValue("int", (2,), self.space())
        arr.set(0, 3.9)
        assert arr.get(0) == 3

    def test_numpy_roundtrip(self):
        data = np.arange(12.0).reshape(3, 4)
        arr = ArrayValue.from_numpy(data, self.space())
        assert np.array_equal(arr.to_numpy(), data)

    def test_from_list(self):
        arr = ArrayValue.from_list([1, 2, 3], "int", self.space())
        assert arr.to_numpy().tolist() == [1, 2, 3]

    def test_bad_dtype(self):
        with pytest.raises(InterpreterError):
            ArrayValue("double", (2,), self.space())

    def test_nonpositive_extent(self):
        with pytest.raises(InterpreterError):
            ArrayValue("int", (0,), self.space())


class TestSweep:
    def test_best_is_max(self):
        sweep = sweep_threads(lambda p: {1: 1.0, 2: 1.8, 4: 3.1}[p], (1, 2, 4))
        assert sweep.best_threads == 4
        assert sweep.best_speedup == pytest.approx(3.1)

    def test_tie_prefers_fewer_threads(self):
        sweep = ThreadSweep(speedups={2: 2.0, 8: 2.0})
        assert sweep.best_threads == 2

    def test_rows_sorted(self):
        sweep = ThreadSweep(speedups={8: 1.0, 2: 1.0, 4: 1.0})
        assert [p for p, _ in sweep.as_rows()] == [2, 4, 8]


class TestErrors:
    def test_source_error_carries_line(self):
        err = SourceError("bad thing", line=42)
        assert err.line == 42
        assert "line 42" in str(err)

    def test_source_error_without_line(self):
        err = SourceError("bad thing")
        assert err.line is None
        assert str(err) == "bad thing"
