"""Generated experiment report tests."""

import pytest

from repro.reporting.experiments import _md_table, generate_experiment_report


class TestMdTable:
    def test_shape(self):
        text = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_float_formatting(self):
        assert "| 3.14 |" in _md_table(["x"], [[3.14159]])


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_experiment_report()

    def test_all_sections_present(self, report):
        for section in ("Table III", "Table IV", "Table V", "Table VI"):
            assert section in report

    def test_all_benchmarks_listed(self, report):
        from repro.bench_programs import all_benchmarks

        for spec in all_benchmarks():
            assert f"| {spec.name} |" in report

    def test_every_label_matches(self, report):
        assert "| NO |" not in report
        assert report.count("| yes |") >= 17

    def test_table6_punchline(self, report):
        # the dynamic row finds everything; both static rows miss sum_module
        lines = [l for l in report.splitlines() if l.startswith("| ")]
        dynamic = next(l for l in lines if "dynamic" in l)
        assert dynamic.count("yes") == 6
        icc = next(l for l in lines if l.startswith("| icc"))
        assert icc.rstrip("| ").endswith("X")

    def test_markdown_renders_consistently(self, report):
        # every table row has the same column count as its header
        blocks: list[list[str]] = []
        current: list[str] = []
        for line in report.splitlines():
            if line.startswith("|"):
                current.append(line)
            elif current:
                blocks.append(current)
                current = []
        if current:
            blocks.append(current)
        for block in blocks:
            cols = block[0].count("|")
            assert all(row.count("|") == cols for row in block)
