"""CU detection tests (Figure 1's read-compute-write grouping)."""

from repro.cu import detect_cus

from conftest import parsed


def cus_of(src, func="f"):
    prog = parsed(src)
    return prog, detect_cus(prog, prog.function(func).region_id)


class TestBasicGrouping:
    def test_figure1_two_cus(self):
        _, cus = cus_of(
            """\
void f(float &x, float &y) {
    x = x + 0.5;
    y = y + 1.5;
    float a = x * 2.0;
    float b = a + 1.0;
    x = b * 3.0;
    float c = y + 5.0;
    float d = c * c;
    y = d - 1.0;
}
"""
        )
        assert len(cus) == 2
        assert cus[0].lines == {2, 4, 5, 6}
        assert cus[1].lines == {3, 7, 8, 9}

    def test_temp_chain_absorbed_into_single_consumer(self):
        _, cus = cus_of(
            """\
void f(float &out, float v) {
    float t1 = v * 2.0;
    float t2 = t1 + 1.0;
    out = t2;
}
"""
        )
        assert len(cus) == 1
        assert cus[0].lines == {2, 3, 4}

    def test_shared_prologue_becomes_own_cu(self):
        # the cilksort CU_0 pattern: a temp consumed by several anchors
        prog, cus = cus_of(
            """\
void g(float A[], int lo, int n) { A[lo] = n * 1.0; }
void f(float A[], int n) {
    int q = n / 4;
    g(A, 0, q);
    g(A, q, q);
}
""",
        )
        kinds = [cu.kind for cu in cus]
        assert kinds == ["plain", "call", "call"]
        assert "q" in cus[0].writes

    def test_independent_state_writes_stay_separate(self):
        _, cus = cus_of(
            """\
void f(float &x, float &y) {
    x = 1.0;
    y = 2.0;
}
"""
        )
        assert len(cus) == 2


class TestCompoundUnits:
    def test_loop_is_one_cu(self):
        _, cus = cus_of(
            """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
}
"""
        )
        assert len(cus) == 1
        assert cus[0].kind == "loop"

    def test_three_loop_nests_three_cus(self):
        _, cus = cus_of(
            """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int i = 0; i < n; i++) { B[i] = i * 2.0; }
    for (int i = 0; i < n; i++) { C[i] = A[i] + B[i]; }
}
"""
        )
        assert len(cus) == 3
        assert all(cu.kind == "loop" for cu in cus)

    def test_call_statement_is_own_cu(self):
        _, cus = cus_of(
            """\
void g(float A[]) { A[0] = 1.0; }
void f(float A[]) {
    g(A);
    A[1] = 2.0;
}
"""
        )
        assert len(cus) == 2
        assert cus[0].kind == "call"
        assert cus[0].callees == ["g"]


class TestIfHandling:
    def test_call_free_if_is_atomic(self):
        _, cus = cus_of(
            """\
int f(int n) {
    if (n < 2) {
        return n;
    }
    int x = n * 2;
    return x + 1;
}
"""
        )
        assert cus[0].kind == "return"
        assert cus[0].early_exit
        assert cus[0].lines == {2, 3}

    def test_if_with_call_is_transparent(self):
        _, cus = cus_of(
            """\
void g(float A[]) { A[0] = 1.0; }
void f(float A[], int n) {
    if (n < 4) {
        g(A);
    }
    int q = n / 2;
    g(A);
    A[q] = 1.0;
}
"""
        )
        # the guard folds into a unit; g(A) inside is its own call CU
        call_cus = [cu for cu in cus if cu.kind == "call"]
        assert len(call_cus) == 2

    def test_bare_decls_and_returns_skipped(self):
        _, cus = cus_of(
            """\
int f(int n) {
    int x;
    x = n + 1;
    return x;
}
"""
        )
        # decl is invisible; x is a temp consumed by the return anchor
        assert len(cus) == 1
        assert cus[0].kind == "return"


class TestCUMetadata:
    def test_reads_writes_state_only_anchoring(self):
        _, cus = cus_of(
            """\
void f(float &out, float v) {
    float t = v * 2.0;
    out = t + 1.0;
}
"""
        )
        (cu,) = cus
        assert "out" in cu.writes
        assert "v" in cu.reads

    def test_labels_sequential(self):
        _, cus = cus_of(
            """\
void f(float &x, float &y, float &z) {
    x = 1.0;
    y = 2.0;
    z = 3.0;
}
"""
        )
        assert [cu.label for cu in cus] == ["CU_0", "CU_1", "CU_2"]

    def test_first_line_ordering(self):
        _, cus = cus_of(
            """\
void f(float &x, float &y) {
    x = 1.0;
    y = 2.0;
}
"""
        )
        assert cus[0].first_line < cus[1].first_line

    def test_empty_region(self):
        prog = parsed("void f() { }")
        assert detect_cus(prog, prog.function("f").region_id) == []
