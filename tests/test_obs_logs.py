"""Structured JSON logging: record shape, bound context, best-effort sinks."""

import io
import json

from repro.obs.logs import (
    JsonLogger,
    configure_logging,
    get_logger,
    new_correlation_id,
)


def _records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRecordShape:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        log.info("job.transition", state="queued")
        log.warning("run.retry", attempt=2)
        docs = _records(stream)
        assert [d["event"] for d in docs] == ["job.transition", "run.retry"]
        assert [d["level"] for d in docs] == ["info", "warning"]
        assert docs[0]["state"] == "queued"
        assert all(isinstance(d["ts"], float) for d in docs)

    def test_error_level(self):
        stream = io.StringIO()
        JsonLogger(stream=stream).error("run.failed", error_type="Boom")
        assert _records(stream)[0]["level"] == "error"

    def test_non_serializable_fields_stringify(self):
        stream = io.StringIO()
        JsonLogger(stream=stream).info("x", path=object())
        assert "object object" in _records(stream)[0]["path"]


class TestBinding:
    def test_bound_context_lands_on_every_record(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream).bind(job_id=7, correlation_id="abc")
        log.info("claimed")
        log.info("done")
        assert all(
            d["job_id"] == 7 and d["correlation_id"] == "abc" for d in _records(stream)
        )

    def test_bind_layers_and_call_fields_win(self):
        stream = io.StringIO()
        base = JsonLogger(stream=stream).bind(a=1)
        child = base.bind(b=2)
        child.info("e", b=3)
        doc = _records(stream)[0]
        assert (doc["a"], doc["b"]) == (1, 3)
        assert base.context == {"a": 1}  # parent unchanged

    def test_bound_children_share_one_sink(self):
        stream = io.StringIO()
        root = JsonLogger(stream=stream)
        root.bind(k=1).info("one")
        root.bind(k=2).info("two")
        assert [d["k"] for d in _records(stream)] == [1, 2]


class TestSinks:
    def test_null_sink_drops_silently(self):
        log = JsonLogger()
        assert not log.active
        log.info("nobody.listening")
        assert log.errors == 0

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = JsonLogger(path=str(path))
        assert log.active
        log.info("a")
        log.info("b")
        docs = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [d["event"] for d in docs] == ["a", "b"]

    def test_unwritable_path_counts_errors(self, tmp_path):
        log = JsonLogger(path=str(tmp_path / "no" / "dir" / "x.jsonl"))
        log.info("lost")
        log.info("also.lost")
        assert log.errors == 2

    def test_closed_stream_counts_errors(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        stream.close()
        log.info("late")
        assert log.errors == 1

    def test_bound_logger_shares_error_count(self, tmp_path):
        root = JsonLogger(path=str(tmp_path / "no" / "dir" / "x.jsonl"))
        root.bind(k=1).info("lost")
        assert root.errors == 1


class TestProcessLogger:
    def test_default_is_null_sink(self):
        assert get_logger().active is False

    def test_configure_and_reset(self):
        stream = io.StringIO()
        try:
            log = configure_logging(stream=stream)
            assert get_logger() is log
            get_logger().info("configured")
            assert _records(stream)[0]["event"] == "configured"
        finally:
            configure_logging()
        assert get_logger().active is False


class TestCorrelationIds:
    def test_ids_are_unique_hex(self):
        a, b = new_correlation_id(), new_correlation_id()
        assert a != b
        assert len(a) == 32 and int(a, 16) >= 0
