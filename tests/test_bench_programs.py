"""Benchmark program integrity: every registered kernel parses, validates,
runs, and computes the right answer (cross-checked against numpy)."""

import numpy as np
import pytest

from repro.bench_programs import all_benchmarks, get_benchmark
from repro.lang.validate import validate_program
from repro.runtime import run_program

NAMES = [spec.name for spec in all_benchmarks()]


class TestRegistry:
    def test_seventeen_benchmarks(self):
        assert len(NAMES) == 17

    def test_suites(self):
        suites = {spec.suite for spec in all_benchmarks()}
        assert suites == {"BOTS", "Polybench", "Starbench", "Parsec"}

    @pytest.mark.parametrize("name", NAMES)
    def test_parses_and_validates(self, name):
        validate_program(get_benchmark(name).program)

    @pytest.mark.parametrize("name", NAMES)
    def test_runs_without_error(self, name):
        spec = get_benchmark(name)
        for args in spec.arg_sets():
            run_program(spec.program, spec.entry, args)

    @pytest.mark.parametrize("name", NAMES)
    def test_paper_row_sane(self, name):
        row = get_benchmark(name).paper
        assert row.speedup > 1.0
        assert row.threads in (2, 3, 4, 8, 16, 32)
        assert 0 < row.hotspot_pct <= 100.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    @pytest.mark.parametrize("name", NAMES)
    def test_loc_positive(self, name):
        assert get_benchmark(name).loc > 5


class TestFunctionalCorrectness:
    def test_fib(self):
        spec = get_benchmark("fib")
        assert run_program(spec.program, "fib", [15]).value == 610

    def test_cilksort_sorts(self):
        spec = get_benchmark("sort")
        rng = np.random.default_rng(3)
        data = rng.random(200)
        result = run_program(spec.program, "cilksort", [data, np.zeros(200), 0, 200])
        assert np.allclose(result.arrays["A"], np.sort(data))

    def test_cilksort_handles_duplicates(self):
        spec = get_benchmark("sort")
        data = np.array([3.0, 1.0, 3.0, 1.0] * 16)
        result = run_program(spec.program, "cilksort", [data, np.zeros(64), 0, 64])
        assert np.allclose(result.arrays["A"], np.sort(data))

    def test_strassen_equals_numpy_matmul(self):
        spec = get_benchmark("strassen")
        rng = np.random.default_rng(4)
        n = 16
        A, B = rng.random((n, n)), rng.random((n, n))
        result = run_program(spec.program, "strassen", [A, B, np.zeros((n, n)), n])
        assert np.allclose(result.arrays["C"], A @ B, atol=1e-9)

    def test_nqueens_counts(self):
        spec = get_benchmark("nqueens")
        for n, expected in ((4, 2), (5, 10), (6, 4), (7, 40)):
            board = np.zeros(n, dtype=np.int64)
            assert run_program(spec.program, "nqueens", [board, 0, n]).value == expected

    def test_2mm_equals_numpy(self):
        spec = get_benchmark("2mm")
        args = spec.arg_sets()[0]
        tmp, A, B, C, D, ni, nj, nk, nl = args
        result = run_program(spec.program, spec.entry, args)
        expected_tmp = A @ B
        expected_D = D * 0.5 + expected_tmp @ C
        assert np.allclose(result.arrays["tmp"], expected_tmp)
        assert np.allclose(result.arrays["D"], expected_D)

    def test_3mm_equals_numpy(self):
        spec = get_benchmark("3mm")
        args = spec.arg_sets()[0]
        E, A, B, F, C, D, G, n = args
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["G"], (A @ B) @ (C @ D))

    def test_mvt_equals_numpy(self):
        spec = get_benchmark("mvt")
        args = spec.arg_sets()[0]
        A, x1, x2, y1, y2, n = args
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["x1"], A @ y1)
        assert np.allclose(result.arrays["x2"], A.T @ y2)

    def test_bicg_equals_numpy(self):
        spec = get_benchmark("bicg")
        args = spec.arg_sets()[0]
        A, s, q, p, r, nx, ny = args
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["s"], r @ A)
        assert np.allclose(result.arrays["q"], A @ p)

    def test_gesummv_equals_numpy(self):
        spec = get_benchmark("gesummv")
        args = spec.arg_sets()[0]
        alpha, beta, A, B, x, y, n = args
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["y"], alpha * (A @ x) + beta * (B @ x))

    def test_correlation_stats(self):
        spec = get_benchmark("correlation")
        args = spec.arg_sets()[0]
        data, mean, stddev, n, m = args
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["mean"], data.mean(axis=0))
        expected_std = np.sqrt(((data - data.mean(axis=0)) ** 2).mean(axis=0)) + 1e-4
        assert np.allclose(result.arrays["stddev"], expected_std)

    def test_rotcc_rotates(self):
        spec = get_benchmark("rot-cc")
        args = spec.arg_sets()[0]
        src = args[0]
        result = run_program(spec.program, spec.entry, args)
        assert np.allclose(result.arrays["tmp"], src[::-1])

    def test_kmeans_assigns_members(self):
        spec = get_benchmark("kmeans")
        args = spec.arg_sets()[0]
        result = run_program(spec.program, spec.entry, args)
        members = result.arrays["member"]
        kmax = args[4]
        assert members.min() >= 0
        assert members.max() < kmax

    def test_fluidanimate_densities_accumulate(self):
        spec = get_benchmark("fluidanimate")
        args = spec.arg_sets()[0]
        result = run_program(spec.program, spec.entry, args)
        assert (result.arrays["density"] > 0).all()
        assert (result.arrays["forces"] > 0).all()

    def test_ludcmp_substitution_chain(self):
        spec = get_benchmark("ludcmp")
        args = spec.arg_sets()[0]
        result = run_program(spec.program, spec.entry, args)
        x = result.arrays["x"]
        assert np.isfinite(x).all()
        assert np.abs(x).max() > 0

    def test_streamcluster_covers_all_chunks(self):
        spec = get_benchmark("streamcluster")
        args = spec.arg_sets()[0]
        result = run_program(spec.program, spec.entry, args)
        assert (result.arrays["asgn"] >= 0).all()

    def test_reg_detect_path_monotone(self):
        spec = get_benchmark("reg_detect")
        args = spec.arg_sets()[0]
        result = run_program(spec.program, spec.entry, args)
        path = result.arrays["path"]
        # accumulating positive means along the path: nondecreasing interior
        assert path[2] <= path[3] <= path[-2] or (np.diff(path[1:-1]) >= 0).all()

    def test_fdtd_fields_update(self):
        spec = get_benchmark("fdtd-2d")
        args = spec.arg_sets()[0]
        before_hz = args[2].copy()
        result = run_program(spec.program, spec.entry, args)
        assert not np.allclose(result.arrays["hz"], before_hz)
