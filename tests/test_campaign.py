"""The experiment-campaign harness: grid, store, runner, query, CLI.

The closure tests at the bottom are the PR's acceptance criteria: a
campaign over the full 17-program registry regenerates Table III
byte-identically to ``repro table3 --json``, and an identical rerun is
served entirely from digest-keyed warm results (zero submissions, zero
cold profile runs).
"""

import json

import numpy as np
import pytest

from repro.bench_programs.registry import all_benchmarks
from repro.bench_programs.workloads import scale_arg_sets
from repro.campaign import (
    CampaignStore,
    CampaignCell,
    cell_digest,
    cell_payload,
    default_grid,
    expand_grid,
    run_campaign,
)
from repro.campaign.query import (
    baseline_deltas,
    geomean,
    group_records,
    query_records,
    records_to_csv,
    table3_docs,
)
from repro.cli import main
from repro.patterns.schema import (
    SCHEMA_VERSION,
    campaign_record,
    validate_campaign_record,
)
from repro.service.client import ServiceClient

#: Everything here drives a live daemon: excluded from the fast CI lane (-m "not slow").
pytestmark = pytest.mark.slow
from repro.service.jobs import job_digest
from repro.service.server import AnalysisService

SMALL = ["gesummv", "sort"]


@pytest.fixture
def service(tmp_path):
    svc = AnalysisService(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
    svc.start_background()
    try:
        client = ServiceClient(svc.url)
        client.wait_healthy(timeout=10.0)
        yield svc, client
    finally:
        svc.shutdown()


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "campaigns.sqlite") as s:
        yield s


class TestGrid:
    def test_default_cell_payload_matches_plain_bench_submission(self):
        # the property warm reuse across campaign and ordinary service
        # traffic rests on: a default cell IS a plain bench job
        cell = CampaignCell(program="gesummv")
        assert cell_payload(cell) == {"name": "gesummv"}
        assert cell_digest(cell) == job_digest("bench", {"name": "gesummv"})

    def test_non_default_axes_change_the_digest(self):
        base = cell_digest(CampaignCell(program="gesummv"))
        assert cell_digest(CampaignCell(program="gesummv", scale=2.0)) != base
        assert cell_digest(CampaignCell(program="gesummv", machine="slow_sync")) != base
        assert cell_digest(CampaignCell(program="gesummv", threshold=0.5)) != base

    def test_expand_grid_order_and_count(self):
        cells = expand_grid(["a_prog", "b_prog"], ("default", "fast_sync"), (1.0, 2.0))
        assert len(cells) == 8
        # programs vary slowest (registry order preserved for --table3)
        assert [c.program for c in cells[:4]] == ["a_prog"] * 4

    def test_default_grid_covers_the_registry_in_order(self):
        cells = default_grid()
        assert [c.program for c in cells] == [s.name for s in all_benchmarks()]

    def test_unknown_machine_and_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="machine model"):
            CampaignCell(program="gesummv", machine="quantum")
        with pytest.raises(ValueError, match="scale"):
            CampaignCell(program="gesummv", scale=0.0)


class TestScaleArgSets:
    def test_identity_at_scale_one(self):
        arg_sets = [[np.ones((4, 4)), 4]]
        assert scale_arg_sets(arg_sets, 1.0) is arg_sets

    def test_dims_and_matching_ints_scale_together(self):
        rng = np.random.default_rng(0)
        arg_sets = [[rng.random((8, 8)), rng.random(8), 8, 3, 0.5]]
        [scaled] = scale_arg_sets(arg_sets, 0.5)
        assert scaled[0].shape == (4, 4)
        assert scaled[1].shape == (4,)
        assert scaled[2] == 4  # matches a dimension -> mapped
        assert scaled[3] == 3  # unrelated int untouched
        assert scaled[4] == 0.5  # floats untouched

    def test_deterministic_content(self):
        arg_sets = [[np.arange(6.0), 6]]
        a = scale_arg_sets(arg_sets, 2.0)
        b = scale_arg_sets(arg_sets, 2.0)
        np.testing.assert_array_equal(a[0][0], b[0][0])
        assert a[0][1] == 12


class TestCampaignEnvelope:
    def _cell_doc(self):
        return campaign_record({
            "campaign": "c", "cell_id": "gesummv|default|s1|tspec",
            "program": "gesummv", "machine": "default", "scale": 1.0,
            "threshold": None, "digest": "ab" * 32, "state": "done",
            "error": None, "result": None,
        })

    def test_round_trip(self):
        doc = self._cell_doc()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["record"] == "campaign_cell"
        assert validate_campaign_record(doc) is doc

    def test_rejects_malformed(self):
        for mutation in (
            {"schema_version": 99},
            {"record": "job"},
            {"state": "exploded"},
            {"campaign": ""},
            {"digest": ""},
        ):
            bad = {**self._cell_doc(), **mutation}
            with pytest.raises(ValueError):
                validate_campaign_record(bad)


class TestStore:
    def test_plan_is_idempotent_and_preserves_state(self, store):
        cells = default_grid(programs=SMALL)
        assert store.plan_cells("c", cells) == 2
        store.mark_cell("c", cells[0].cell_id, "done")
        assert store.plan_cells("c", cells) == 0  # resume adds nothing
        states = {c["cell_id"]: c["state"] for c in store.cells("c")}
        assert states[cells[0].cell_id] == "done"
        assert states[cells[1].cell_id] == "pending"

    def test_results_are_content_addressed(self, store):
        store.put_result("d1", {"best_speedup": 2.0})
        store.put_result("d1", {"best_speedup": 999.0})  # idempotent ignore
        assert store.get_result("d1") == {"best_speedup": 2.0}
        assert store.get_result("nope") is None
        assert store.result_count() == 1

    def test_status_and_campaign_listing(self, store):
        cells = default_grid(programs=SMALL)
        store.plan_cells("c", cells)
        store.mark_cell("c", cells[0].cell_id, "failed", error={"failed": True})
        status = store.status("c")
        assert status["states"] == {"pending": 1, "done": 0, "failed": 1}
        assert not status["complete"]
        assert [c["campaign"] for c in store.campaigns()] == ["c"]

    def test_round_trip_survives_reopen_byte_identically(self, tmp_path):
        path = tmp_path / "c.sqlite"
        doc = {"name": "gesummv", "best_speedup": 6.9482320159641775,
               "pipelines": [[0, 1, 0.5, 0.5, 0.9]]}
        with CampaignStore(path) as store:
            store.plan_cells("c", default_grid(programs=SMALL))
            store.put_result("d1", doc)
        with CampaignStore(path) as store:
            assert json.dumps(store.get_result("d1"), sort_keys=True) == \
                json.dumps(doc, sort_keys=True)
            assert store.status("c")["cells"] == 2


class TestRunner:
    def test_run_resume_and_digest_reuse(self, service, store):
        svc, client = service
        cells = default_grid(programs=SMALL, machines=("default", "slow_sync"))
        first = run_campaign(store, client, "c1", cells)
        assert first["submitted"] == 4 and first["failed"] == 0

        # identical rerun: all cells resume as done — zero service calls,
        # zero cold profile runs (the acceptance criterion)
        misses = svc.executor.cache.stats.misses
        jobs_before = len(client.jobs())
        second = run_campaign(store, client, "c1", cells)
        assert second["submitted"] == 0
        assert second["reused_resume"] == 4
        assert svc.executor.cache.stats.misses == misses
        assert len(client.jobs()) == jobs_before

        # a different campaign with the same coordinates hits the
        # content-addressed result layer, still with zero submissions
        third = run_campaign(store, client, "c2", cells)
        assert third["submitted"] == 0 and third["reused_store"] == 4
        assert svc.executor.cache.stats.misses == misses

    def test_interrupted_campaign_resumes_only_pending_cells(self, service, store):
        svc, client = service
        cells = default_grid(programs=SMALL)
        # simulate a campaign killed mid-run: one cell done, one never ran
        store.plan_cells("interrupted", cells)
        done = run_campaign(store, client, "warm", [cells[0]])
        assert done["submitted"] == 1
        status = store.status("interrupted")
        assert status["states"]["pending"] == 2

        summary = run_campaign(store, client, "interrupted", cells)
        # cells[0]'s digest is already stored (from 'warm'); cells[1] runs
        assert summary["reused_store"] == 1 and summary["submitted"] == 1
        assert store.status("interrupted")["complete"]

    def test_failed_cells_record_structured_errors(self, service, store, monkeypatch):
        svc, client = service
        cell = CampaignCell(program="gesummv", threshold=0.9)

        real_wait = client.wait

        def failing_wait(job_id, timeout=120.0, poll=0.1):
            record = real_wait(job_id, timeout=timeout, poll=poll)
            return {**record, "state": "failed",
                    "error": {"failed": True, "error_type": "Boom"}}

        monkeypatch.setattr(client, "wait", failing_wait)
        summary = run_campaign(store, client, "c", [cell])
        assert summary["failed"] == 1
        [record] = query_records(store, campaign="c")
        assert record["state"] == "failed"
        assert record["error"]["error_type"] == "Boom"
        assert record["result"] is None

    def test_grid_goes_out_as_a_single_batched_post(self, service, store):
        svc, client = service
        cells = default_grid(programs=SMALL, machines=("default", "slow_sync"))
        calls = []
        real_submit_many = client.submit_many

        def recording_submit_many(bodies):
            calls.append(len(bodies))
            return real_submit_many(bodies)

        client.submit_many = recording_submit_many
        summary = run_campaign(store, client, "batched", cells)
        assert summary["submitted"] == 4
        assert calls == [4]

    def test_minimal_client_falls_back_to_per_cell_submission(self, service, store):
        svc, client = service

        class MinimalClient:
            # only the documented floor: submit_benchmark + wait
            def submit_benchmark(self, program, **kwargs):
                return client.submit_benchmark(program, **kwargs)

            def wait(self, job_id, timeout=120.0, poll=0.1):
                return client.wait(job_id, timeout=timeout, poll=poll)

        summary = run_campaign(store, MinimalClient(), "minimal", default_grid(programs=SMALL))
        assert summary["submitted"] == 2 and summary["failed"] == 0

    def test_cells_metric_counts_dispositions(self, service, store):
        from repro.obs.metrics import get_registry

        svc, client = service
        cells = default_grid(programs=["gesummv"])
        run_campaign(store, client, "m1", cells)
        run_campaign(store, client, "m1", cells)
        text = get_registry().render()
        assert 'repro_campaign_cells_total{outcome="submitted"}' in text
        assert 'repro_campaign_cells_total{outcome="reused_resume"}' in text


class TestQuery:
    @pytest.fixture
    def populated(self, service, store):
        svc, client = service
        cells = default_grid(programs=SMALL, machines=("default", "slow_sync"))
        run_campaign(store, client, "c1", cells)
        run_campaign(store, client, "c2", cells)
        return store

    def test_filters(self, populated):
        assert len(query_records(populated)) == 8  # both campaigns
        assert len(query_records(populated, campaign="c1")) == 4
        records = query_records(populated, campaign="c1", machine="slow_sync")
        assert [r["program"] for r in records] == SMALL
        assert all(r["record"] == "campaign_cell" for r in records)
        for record in records:
            validate_campaign_record(record)
            assert record["result"]["schema_version"] == SCHEMA_VERSION

    def test_group_by_geomean(self, populated):
        groups = group_records(query_records(populated, campaign="c1"), ["machine"])
        assert [g["machine"] for g in groups] == ["default", "slow_sync"]
        for group in groups:
            assert group["cells"] == group["done"] == 2
            assert group["geomean_speedup"] == pytest.approx(
                geomean([
                    r["result"]["best_speedup"]
                    for r in query_records(
                        populated, campaign="c1", machine=group["machine"]
                    )
                ])
            )
        with pytest.raises(ValueError, match="unknown group keys"):
            group_records([], ["favorite_color"])

    def test_baseline_deltas_identical_campaigns(self, populated):
        rows = baseline_deltas(populated, "c2", "c1")
        assert len(rows) == 4
        assert all(r["delta"] == 0.0 and r["ratio"] == 1.0 for r in rows)

    def test_csv_is_byte_stable_across_reopen(self, populated):
        first = records_to_csv(query_records(populated, campaign="c1"))
        assert first.splitlines()[0].startswith("campaign,cell_id,program")
        reopened = CampaignStore(populated.path)
        try:
            again = records_to_csv(query_records(reopened, campaign="c1"))
        finally:
            reopened.close()
        assert first == again

    def test_table3_requires_a_complete_default_grid(self, populated):
        with pytest.raises(ValueError, match="no completed default cell"):
            table3_docs(populated, "c1")  # only 2 of 17 programs


class TestCampaignCli:
    def test_run_status_query_round_trip(self, tmp_path, capsys):
        db = str(tmp_path / "c.sqlite")
        cache = str(tmp_path / "cache")
        argv = ["campaign", "run", "--name", "cli", "--programs", *SMALL,
                "--db", db, "--cache-dir", cache]
        assert main(argv) == 0
        assert "2 submitted" in capsys.readouterr().out

        assert main(argv) == 0  # resume: nothing to do
        assert "2 already done" in capsys.readouterr().out

        assert main(["campaign", "status", "--name", "cli", "--db", db]) == 0
        assert "[complete]" in capsys.readouterr().out

        assert main(["campaign", "query", "--db", db, "--csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.count("\n") == 3  # header + 2 cells

        assert main(["campaign", "query", "--db", db, "--name", "cli",
                     "--group-by", "program", "--json", "--compact"]) == 0
        groups = json.loads(capsys.readouterr().out)
        assert {g["program"] for g in groups} == set(SMALL)

    def test_status_unknown_campaign_exits_nonzero(self, tmp_path, capsys):
        db = str(tmp_path / "c.sqlite")
        assert main(["campaign", "status", "--name", "ghost", "--db", db]) == 1
        assert "not found" in capsys.readouterr().out


class TestTableThreeClosure:
    """The acceptance criteria: full-registry campaign == live Table III."""

    def test_campaign_reproduces_table3_byte_identically(self, tmp_path, capsys):
        db = str(tmp_path / "c.sqlite")
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "--name", "full", "--db", db,
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["campaign", "query", "--name", "full", "--table3",
                     "--json", "--compact", "--db", db]) == 0
        from_campaign = capsys.readouterr().out

        assert main(["table3", "--json", "--compact", "--no-parallel",
                     "--cache-dir", cache]) == 0
        live = capsys.readouterr().out
        assert from_campaign == live

        # stored bytes stay stable across a store restart
        assert main(["campaign", "query", "--name", "full", "--table3",
                     "--json", "--compact", "--db", db]) == 0
        assert capsys.readouterr().out == from_campaign

    def test_identical_rerun_is_fully_warm(self, tmp_path):
        cells = default_grid()
        with CampaignStore(tmp_path / "c.sqlite") as store:
            svc = AnalysisService(
                port=0, workers=2, cache_dir=str(tmp_path / "cache")
            )
            svc.start_background()
            try:
                client = ServiceClient(svc.url)
                client.wait_healthy(timeout=10.0)
                first = run_campaign(store, client, "full", cells)
                assert first["submitted"] == len(cells) == 17
                assert first["failed"] == 0

                misses = svc.executor.cache.stats.misses
                second = run_campaign(store, client, "full", cells)
                assert second["submitted"] == 0
                assert second["reused_resume"] == 17
                # zero cold profile runs on the rerun
                assert svc.executor.cache.stats.misses == misses
            finally:
                svc.shutdown()
