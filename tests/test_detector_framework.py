"""Detector framework tests: registry ordering, plug-in detectors,
context memoization, stage telemetry, and threshold evidence."""

import numpy as np
import pytest

from repro.patterns.engine import analyze, analyze_profile, summarize_patterns
from repro.patterns.framework import (
    MIN_PIPELINE_EFFICIENCY,
    MIN_TASK_GRAIN,
    MIN_TASK_SPEEDUP,
    AnalysisContext,
    Detector,
    DetectorRegistry,
    Evidence,
    default_registry,
)
from repro.profiling.hotspots import hotspot_regions
from repro.profiling.runner import profile_runs

from conftest import parsed

# the six legacy stages in engine order, plus the wavefront stage that
# rides after them (requires=("pipelines",), registered last)
LEGACY_ORDER = [
    "loop-classes", "pipelines", "fusion", "tasks", "geometric",
    "reductions", "wavefronts",
]

REDUCTION_SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

BICG_SHAPE_SRC = """\
void f(float A[][], float s[], float q[], float p[], float r[], int nx, int ny) {
    for (int i = 0; i < nx; i++) {
        float acc = 0.0;
        for (int j = 0; j < ny; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            acc += A[i][j] * p[j];
        }
        q[i] = acc;
    }
}
"""

LOW_EFFICIENCY_SRC = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = B[j] + A[n - 1 - j]; }
}
"""


def analyzed(src, entry, args, **kw):
    program = parsed(src)
    return analyze(program, entry, [args], **kw)


class _Noop(Detector):
    def __init__(self, name, requires=()):
        self.name = name
        self.requires = tuple(requires)

    def run(self, ctx, result, trace):
        return []


class TestRegistry:
    def test_default_order_matches_legacy_engine(self):
        assert [d.name for d in default_registry().ordered()] == LEGACY_ORDER

    def test_requires_reorders_topologically(self):
        reg = DetectorRegistry()
        reg.register(_Noop("late", requires=("early",)))
        reg.register(_Noop("early"))
        assert [d.name for d in reg.ordered()] == ["early", "late"]

    def test_registration_order_breaks_ties(self):
        reg = DetectorRegistry()
        reg.register(_Noop("b"))
        reg.register(_Noop("a"))
        assert [d.name for d in reg.ordered()] == ["b", "a"]

    def test_duplicate_name_rejected_unless_replace(self):
        reg = DetectorRegistry()
        reg.register(_Noop("x"))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(_Noop("x"))
        reg.register(_Noop("x"), replace=True)
        assert len(reg) == 1

    def test_unknown_requirement_raises(self):
        reg = DetectorRegistry()
        reg.register(_Noop("orphan", requires=("missing",)))
        with pytest.raises(ValueError, match="unregistered"):
            reg.ordered()

    def test_dependency_cycle_raises(self):
        reg = DetectorRegistry()
        reg.register(_Noop("a", requires=("b",)))
        reg.register(_Noop("b", requires=("a",)))
        with pytest.raises(ValueError, match="cycle"):
            reg.ordered()


class TestPluggability:
    def test_custom_detector_runs_after_dependency(self):
        seen = {}

        class Spy(Detector):
            name = "spy"
            requires = ("loop-classes",)

            def run(self, ctx, result, trace):
                seen["loop_classes"] = dict(result.loop_classes)
                trace.count("ran")
                return [
                    Evidence(
                        detector=self.name,
                        kind="loop",
                        regions=(),
                        status="accepted",
                        reason="spy-ran",
                    )
                ]

        registry = default_registry()
        registry.register(Spy())
        result = analyzed(REDUCTION_SRC, "total", [np.ones(16), 16],
                          registry=registry)
        # the spy observed loop-classes output and left its own trail
        assert seen["loop_classes"] == result.loop_classes
        assert result.trace.stage("spy").counters == {"ran": 1}
        assert [ev.reason for ev in result.trace.for_detector("spy")] == ["spy-ran"]
        # the label is unaffected by the extra stage
        assert summarize_patterns(result) == "Reduction"

    def test_dropping_a_stage_skips_its_output(self):
        registry = default_registry()
        registry.unregister("reductions")
        result = analyzed(REDUCTION_SRC, "total", [np.ones(16), 16],
                          registry=registry)
        assert result.reductions == {}
        assert result.trace.stage("reductions") is None


class TestTrace:
    def test_stage_order_and_timing(self):
        result = analyzed(REDUCTION_SRC, "total", [np.ones(16), 16])
        assert [st.detector for st in result.trace.stages] == LEGACY_ORDER
        assert all(st.wall_time_s >= 0.0 for st in result.trace.stages)
        assert result.trace.total_wall_time_s >= 0.0

    def test_loop_counters_recorded(self):
        result = analyzed(REDUCTION_SRC, "total", [np.ones(16), 16])
        st = result.trace.stage("loop-classes")
        assert st.counters.get("loops", 0) >= 1


class TestContextMemoization:
    def _context(self, src, entry, args):
        program = parsed(src)
        profile = profile_runs(program, entry, [args])
        hotspots = hotspot_regions(profile, program)
        return AnalysisContext(program=program, profile=profile, hotspots=hotspots)

    def test_loop_class_and_graph_identity(self):
        ctx = self._context(REDUCTION_SRC, "total", [np.ones(16), 16])
        region = next(iter(ctx.profile.loop_trips))
        assert ctx.loop_class(region) is ctx.loop_class(region)
        assert ctx.reductions(region) is ctx.reductions(region)
        hot = ctx.hotspots[0].region
        assert ctx.cus(hot) is ctx.cus(hot)
        assert ctx.cu_graph(hot) is ctx.cu_graph(hot)
        assert ctx.hotspot_regions is ctx.hotspot_regions

    def test_context_results_match_legacy_analysis(self):
        program = parsed(REDUCTION_SRC)
        profile = profile_runs(program, "total", [[np.ones(16), 16]])
        via_ctx = analyze_profile(program, profile)
        direct = analyze(program, "total", [[np.ones(16), 16]])
        assert via_ctx.loop_classes.keys() == direct.loop_classes.keys()
        assert summarize_patterns(via_ctx) == summarize_patterns(direct)


class TestThresholdEvidence:
    def test_low_efficiency_pipeline_rejected_with_threshold(self):
        result = analyzed(LOW_EFFICIENCY_SRC, "f", [np.zeros(32), np.zeros(32), 32])
        rejected = [
            ev for ev in result.trace.for_detector("pipelines") if not ev.accepted
        ]
        assert rejected, "the inefficient pipeline must appear in evidence"
        ev = rejected[0]
        assert ev.reason == "efficiency-below-threshold"
        assert ev.threshold == "MIN_PIPELINE_EFFICIENCY"
        assert ev.threshold_value == MIN_PIPELINE_EFFICIENCY
        assert ev.observed is not None and ev.observed < MIN_PIPELINE_EFFICIENCY

    def test_fine_grain_tasks_rejected_with_threshold(self):
        result = analyzed(
            BICG_SHAPE_SRC,
            "f",
            [np.ones((20, 20)), np.zeros(20), np.zeros(20),
             np.ones(20), np.ones(20), 20, 20],
        )
        assert not summarize_patterns(result).startswith("Task parallelism")
        reasons = {
            ev.reason: ev
            for ev in result.trace.for_detector("tasks")
            if not ev.accepted
        }
        grain = reasons.get("grain-below-threshold")
        assert grain is not None, "grain rejection must appear in evidence"
        assert grain.threshold == "MIN_TASK_GRAIN"
        assert grain.threshold_value == MIN_TASK_GRAIN
        assert grain.observed is not None and grain.observed < MIN_TASK_GRAIN

    def test_low_speedup_tasks_rejected_with_threshold(self):
        result = analyzed(REDUCTION_SRC, "total", [np.ones(16), 16])
        rejected = [
            ev for ev in result.trace.for_detector("tasks") if not ev.accepted
        ]
        assert rejected
        assert all(ev.reason == "speedup-below-threshold" for ev in rejected)
        assert all(ev.threshold == "MIN_TASK_SPEEDUP" for ev in rejected)
        assert all(ev.observed < MIN_TASK_SPEEDUP for ev in rejected)
