"""Printer tests: parse → print → parse must preserve structure."""

from dataclasses import fields, is_dataclass

from repro.lang import format_program, parse_program

SAMPLES = [
    "int g = 4;\nvoid f() { g = g + 1; }",
    """\
float dot(float A[], float B[], int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc += A[i] * B[i];
    }
    return acc;
}
""",
    """\
void grid(float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (i == j) {
                C[i][j] = 1.0;
            } else {
                C[i][j] = 0.0;
            }
        }
    }
}
""",
    """\
int collatz(int n) {
    int steps = 0;
    while (n > 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps++;
    }
    return steps;
}
""",
    """\
int fact(int n) {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}
""",
    """\
void control(int n) {
    for (int i = 0; i < n; i++) {
        if (i == 3) {
            continue;
        }
        if (i == 7) {
            break;
        }
    }
}
""",
    "void refs(int &acc, float A[]) { acc = acc + toint(A[0]); }",
]

_IGNORED = {"line", "stmt_id", "region_id", "source", "regions", "stmts"}


def structural(node):
    """Recursively convert an AST to a structure-only representation."""
    if is_dataclass(node):
        out = {"__type__": type(node).__name__}
        for f in fields(node):
            if f.name in _IGNORED:
                continue
            out[f.name] = structural(getattr(node, f.name))
        return out
    if isinstance(node, (list, tuple)):
        return [structural(x) for x in node]
    if isinstance(node, frozenset):
        return sorted(node)
    return node


class TestRoundTrip:
    def test_corpus_programs_roundtrip(self):
        # 100+ seeded corpus programs (templates × metamorphic transforms)
        # fuzz the printer far beyond the handwritten samples
        from repro.corpus import generate_programs

        for tp in generate_programs(105, 20260808):
            first = parse_program(tp.source)
            printed = format_program(first)
            assert structural(parse_program(printed)) == structural(first), tp.template
            assert format_program(parse_program(printed)) == printed


    def test_samples_roundtrip(self):
        for src in SAMPLES:
            first = parse_program(src)
            printed = format_program(first)
            second = parse_program(printed)
            assert structural(first) == structural(second), printed

    def test_double_print_is_fixed_point(self):
        for src in SAMPLES:
            once = format_program(parse_program(src))
            twice = format_program(parse_program(once))
            assert once == twice

    def test_annotations_emitted(self):
        prog = parse_program("void f(int n) { n = 1; }")
        stmt = prog.function("f").body[0]
        out = format_program(prog, annotations={stmt.stmt_id: ["parallel for"]})
        assert "// parallel for" in out
