"""Every rung of the Table III label precedence, on synthetic fixtures.

``summarize_patterns`` ranks: fusion ≻ clean multi-loop pipeline ≻ task
parallelism (+ do-all) ≻ geometric decomposition (+ reduction) ≻ reduction
≻ do-all ≻ none.  Each test takes a really-analyzed result and overrides
exactly the fields that should (or should not) win, so a precedence
regression cannot hide behind detector behavior changes.
"""

import dataclasses

import numpy as np

from repro.patterns.engine import analyze, summarize_patterns
from repro.patterns.framework import MIN_PIPELINE_EFFICIENCY
from repro.patterns.result import (
    FusionCandidate,
    GeometricDecomposition,
    LoopClass,
    LoopClassification,
    MultiLoopPipeline,
)

from conftest import parsed

REDUCTION_SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

INDEPENDENT_LOOPS_SRC = """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0 + sqrt(i + 2.0); }
    for (int j = 0; j < n; j++) { B[j] = j * 2.0 + sqrt(j + 3.0); }
}
"""


def analyzed(src, entry, args):
    return analyze(parsed(src), entry, [args])


def base_result():
    """A real 'Reduction' result to graft synthetic findings onto."""
    return analyzed(REDUCTION_SRC, "total", [np.ones(32), 32])


def hot_loop(result):
    """The hotspot loop region of the base program."""
    loops = [r for r in result.loop_classes if r in result.hotspot_regions]
    assert loops
    return loops[0]


def synthetic_pipeline(loop_x, loop_y, efficiency=1.0):
    return MultiLoopPipeline(
        loop_x=loop_x, loop_y=loop_y, a=1.0, b=0.0,
        efficiency=efficiency, n_pairs=8, trips_x=32, trips_y=32,
    )


class TestPrecedenceLadder:
    def test_fusion_tops_everything(self):
        result = base_result()
        loop = hot_loop(result)
        pipe = synthetic_pipeline(loop, loop + 1)
        result = dataclasses.replace(
            result,
            pipelines=[pipe],
            fusions=[FusionCandidate(loop_x=loop, loop_y=loop + 1, pipeline=pipe)],
        )
        # reductions AND a clean pipeline are present — fusion still wins
        assert result.reductions and result.clean_pipelines()
        assert summarize_patterns(result) == "Fusion"

    def test_clean_pipeline_beats_reduction(self):
        result = base_result()
        loop = hot_loop(result)
        result = dataclasses.replace(
            result, pipelines=[synthetic_pipeline(loop, loop + 1)]
        )
        assert result.reductions
        assert summarize_patterns(result) == "Multi-loop pipeline"

    def test_unclean_pipeline_falls_through(self):
        result = base_result()
        loop = hot_loop(result)
        low = synthetic_pipeline(loop, loop + 1,
                                 efficiency=MIN_PIPELINE_EFFICIENCY / 2)
        result = dataclasses.replace(result, pipelines=[low])
        assert not result.clean_pipelines()
        assert summarize_patterns(result) == "Reduction"

    def test_task_parallelism_plus_doall(self):
        result = analyzed(
            INDEPENDENT_LOOPS_SRC, "f", [np.zeros(32), np.zeros(32), 32]
        )
        assert summarize_patterns(result) == "Task parallelism + Do-all"

    def test_task_parallelism_without_doall_workers(self):
        result = analyzed(
            INDEPENDENT_LOOPS_SRC, "f", [np.zeros(32), np.zeros(32), 32]
        )
        # demote every worker loop to sequential: the fork still pays off,
        # but the "+ Do-all" suffix must disappear
        demoted = {
            region: LoopClass(region=region,
                              classification=LoopClassification.SEQUENTIAL)
            for region in result.loop_classes
        }
        result = dataclasses.replace(result, loop_classes=demoted)
        assert summarize_patterns(result) == "Task parallelism"

    def test_geometric_plus_reduction(self):
        result = base_result()
        loop = hot_loop(result)
        fn_region = result.program.regions[loop].function
        gd = GeometricDecomposition(
            region=result.hotspots[0].region,
            function=fn_region,
            analyzed_loops={loop: result.loop_classes[loop]},
        )
        result = dataclasses.replace(result, geometric=[gd])
        # the base program's hot loop is a reduction in the GD function
        assert result.loop_classes[loop].is_reduction
        assert summarize_patterns(result) == "Geometric decomposition + Reduction"

    def test_geometric_plain_when_loops_doall(self):
        result = base_result()
        loop = hot_loop(result)
        doall = LoopClass(region=loop, classification=LoopClassification.DOALL)
        gd = GeometricDecomposition(
            region=result.hotspots[0].region,
            function=result.program.regions[loop].function,
            analyzed_loops={loop: doall},
        )
        result = dataclasses.replace(
            result, geometric=[gd], loop_classes={loop: doall}
        )
        assert summarize_patterns(result) == "Geometric decomposition"

    def test_reduction_rung(self):
        assert summarize_patterns(base_result()) == "Reduction"

    def test_doall_rung(self):
        result = base_result()
        loop = hot_loop(result)
        result = dataclasses.replace(
            result,
            reductions={},
            loop_classes={
                loop: LoopClass(region=loop,
                                classification=LoopClassification.DOALL)
            },
        )
        assert summarize_patterns(result) == "Do-all"

    def test_none_rung(self):
        result = base_result()
        loop = hot_loop(result)
        result = dataclasses.replace(
            result,
            reductions={},
            loop_classes={
                loop: LoopClass(region=loop,
                                classification=LoopClassification.SEQUENTIAL)
            },
        )
        assert summarize_patterns(result) == "None"


class TestRejectionsVisible:
    def test_efficiency_rejection_shows_up_in_evidence(self):
        result = analyzed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 0; j < n; j++) { B[j] = B[j] + A[n - 1 - j]; }
}
""",
            "f",
            [np.zeros(32), np.zeros(32), 32],
        )
        # the label falls through AND the trace says exactly why
        assert summarize_patterns(result) != "Multi-loop pipeline"
        assert any(
            ev.reason == "efficiency-below-threshold"
            and ev.threshold == "MIN_PIPELINE_EFFICIENCY"
            for ev in result.trace.rejected()
        )
