"""Adversarial near-miss corpus templates and scoring edge cases.

The adversarial templates construct programs that *look* like a pattern
but break one necessary condition, with the negative truth stamped by
construction: ``almost_reduction`` escapes its accumulator into an array
(a prefix sum), ``false_doall`` hides a single rare carried dependence
behind a branch, and ``near_wavefront`` feeds a consumer from its
producer through a stride that wrecks the iteration-pair affinity.

The rule-based detectors reject the first two outright; ``near_wavefront``
is designed to pressure the pipeline detector's fitted-line efficiency
gate, so its occasional false positive is *expected* and asserted as
tolerated — that is what keeps corpus precision from saturating at 1.0.

Scoring edge cases ride along: undefined precision/recall on all-negative
slices must surface as null (rendered ``-``/empty), never as a fake 1.0.
"""

import dataclasses
import random

import pytest

from repro.cli import main as cli_main
from repro.corpus import (
    generate_corpus,
    generate_programs,
    load_corpus,
    score_corpus,
)
from repro.corpus.score import analyze_entry, predicted_patterns, score_csv, score_table
from repro.corpus.suite import CorpusEntry
from repro.corpus.templates import (
    ADVERSARIAL_TEMPLATES,
    PATTERN_DIMENSIONS,
    TEMPLATES,
)
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program


def _entry(tp) -> CorpusEntry:
    """Wrap an in-memory template program as a scoreable corpus entry."""
    return CorpusEntry(
        name=f"t-{tp.template}",
        template=tp.template,
        transforms=[],
        entry=tp.entry,
        arg_specs=tp.arg_specs,
        source=tp.source,
        source_digest="unused",
        truth=tp.truth,
    )


def _rules(tp) -> dict[str, bool]:
    return predicted_patterns(analyze_entry(_entry(tp)))


def _tree(root):
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestAdversarialGeneration:
    def test_adversarial_generation_is_byte_deterministic(self, tmp_path):
        generate_corpus(12, 5, tmp_path / "a", adversarial=True)
        generate_corpus(12, 5, tmp_path / "b", adversarial=True)
        assert _tree(tmp_path / "a") == _tree(tmp_path / "b")

    def test_plain_corpus_bytes_unchanged_by_the_new_flag(self, tmp_path):
        # the adversarial family must not perturb the plain (count, seed)
        # rotation: existing corpora keep their bytes forever
        plain = generate_programs(7, 7)
        again = generate_programs(7, 7, adversarial=False)
        assert [p.source for p in plain] == [p.source for p in again]

    def test_rotation_appends_after_the_base_templates(self):
        programs = generate_programs(len(TEMPLATES) + len(ADVERSARIAL_TEMPLATES), 0,
                                     adversarial=True)
        got = [p.template for p in programs]
        assert got[: len(TEMPLATES)] == [
            t(random.Random("x")).template for t in TEMPLATES
        ]
        assert got[len(TEMPLATES):] == [
            t(random.Random("x")).template for t in ADVERSARIAL_TEMPLATES
        ]

    def test_every_adversarial_program_parses_and_validates(self):
        for template in ADVERSARIAL_TEMPLATES:
            for seed in range(3):
                tp = template(random.Random(f"{seed}:adv"))
                validate_program(parse_program(tp.source))
                assert set(tp.truth) == set(PATTERN_DIMENSIONS)

    def test_truth_is_negative_by_construction(self):
        rng = random.Random(0)
        by_name = {t(rng).template: t for t in ADVERSARIAL_TEMPLATES}
        almost = by_name["almost_reduction"](random.Random(1))
        false_doall = by_name["false_doall"](random.Random(1))
        near = by_name["near_wavefront"](random.Random(1))
        assert not any(almost.truth.values())
        assert not any(false_doall.truth.values())
        assert near.truth["doall"] and not near.truth["wavefront"]
        assert not near.truth["pipeline"]

    def test_default_corpus_name_gains_adv_prefix(self, tmp_path):
        manifest = generate_corpus(3, 2, tmp_path, adversarial=True)
        assert manifest["name"] == "adv-corpus-s2-n3"


class TestAdversarialVerdicts:
    """What the rule-based detectors actually say about the near misses."""

    @pytest.mark.parametrize("seed", range(3))
    def test_almost_reduction_is_rejected(self, seed):
        tp = next(
            t(random.Random(f"t:{seed}"))
            for t in ADVERSARIAL_TEMPLATES
            if t(random.Random(0)).template == "almost_reduction"
        )
        pred = _rules(tp)
        assert pred == tp.truth  # every dimension a true negative

    @pytest.mark.parametrize("seed", range(3))
    def test_false_doall_is_rejected(self, seed):
        tp = next(
            t(random.Random(f"t:{seed}"))
            for t in ADVERSARIAL_TEMPLATES
            if t(random.Random(0)).template == "false_doall"
        )
        pred = _rules(tp)
        assert pred == tp.truth

    @pytest.mark.parametrize("seed", range(3))
    def test_near_wavefront_pressures_only_the_pipeline_gate(self, seed):
        tp = next(
            t(random.Random(f"t:{seed}"))
            for t in ADVERSARIAL_TEMPLATES
            if t(random.Random(0)).template == "near_wavefront"
        )
        pred = _rules(tp)
        # the designed false positive: the fitted-line efficiency gate may
        # pass at r^2 ~ 0, so pipeline=True is tolerated (not asserted) —
        # every other dimension must match the constructed truth
        for dim in PATTERN_DIMENSIONS:
            if dim != "pipeline":
                assert pred[dim] == tp.truth[dim], dim
        assert pred["doall"] is True
        assert pred["wavefront"] is False


class TestScoringEdgeCases:
    @pytest.fixture
    def negative_suite(self, tmp_path):
        # a 3-program corpus of pure negatives: indices 7..9 of the
        # adversarial rotation are the three near-miss templates
        out = tmp_path / "neg"
        generate_corpus(10, 1, out, adversarial=True)
        suite = load_corpus(out)
        return dataclasses.replace(
            suite,
            entries=tuple(
                e for e in suite.entries
                if e.template in ("almost_reduction", "false_doall")
            ),
        )

    def test_all_negative_corpus_reports_null_not_one(self, negative_suite):
        predictions = {
            e.name: {dim: False for dim in PATTERN_DIMENSIONS}
            for e in negative_suite.entries
        }
        score = score_corpus(negative_suite, predictions)
        for dim in PATTERN_DIMENSIONS:
            d = score["detectors"][dim]
            assert d["precision"] is None  # no positive predictions
            assert d["recall"] is None  # no positive truths
            assert d["f1"] is None
            assert d["accuracy"] == 1.0  # defined: all true negatives
        assert not score["mismatches"]

    def test_empty_prediction_set_is_all_null(self, negative_suite):
        score = score_corpus(negative_suite, {})
        assert score["programs"] == 0
        for dim in PATTERN_DIMENSIONS:
            assert score["detectors"][dim]["accuracy"] is None

    def test_null_metrics_render_as_dash_and_empty_cell(self, negative_suite):
        predictions = {
            e.name: {dim: False for dim in PATTERN_DIMENSIONS}
            for e in negative_suite.entries
        }
        score = score_corpus(negative_suite, predictions)
        table = score_table(score)
        assert "-" in table.split("doall", 1)[1]
        row = next(
            line for line in score_csv(score).splitlines()
            if line.startswith("doall")
        )
        # detector,tp,fp,fn,tn,precision,recall,f1,accuracy
        assert row.split(",")[5:8] == ["", "", ""]

    def test_empty_corpus_dir_fails_with_exit_code_2(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert cli_main(["corpus", "score", str(empty)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_tampered_label_rejected_with_exit_code_2(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        generate_corpus(3, 4, out)
        victim = next((out / "programs").glob("*.c"))
        victim.write_text(victim.read_text() + "\n// tampered\n")
        assert cli_main(["corpus", "score", str(out)]) == 2
        assert "digest mismatch" in capsys.readouterr().err
