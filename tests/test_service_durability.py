"""Restart durability: sqlite-backed stores survive daemon death."""

import threading

import pytest

from repro.profiling.serialize import canonical_json
from repro.service.client import ServiceClient
from repro.service.jobs import JobStore
from repro.service.server import AnalysisService
from repro.service.store import SqliteJobLog

#: Everything here drives a live daemon: excluded from the fast CI lane (-m "not slow").
pytestmark = pytest.mark.slow

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]


class TestSqliteJobLog:
    def test_write_after_close_counts_as_error(self, tmp_path):
        log = SqliteJobLog(str(tmp_path / "jobs.sqlite"))
        store = JobStore(db_path=str(tmp_path / "other.sqlite"))
        job = store.submit("bench", {"name": "x"})
        log.close()
        assert log.closed
        log.upsert(job)
        log.delete(job.id)
        assert log.errors == 2
        with pytest.raises(RuntimeError, match="closed"):
            log.load_rows()

    def test_rows_round_trip_documents(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        store = JobStore(db_path=db)
        job = store.submit("bench", {"name": "x"}, correlation_id="corr-1")
        store.claim(timeout=0.1)
        store.finish(job.id, {"nested": {"doc": [1, 2.5, "three"]}}, info={"k": 1})
        store.dispose()
        rows = SqliteJobLog(db).load_rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["state"] == "done"
        assert row["result"] == {"nested": {"doc": [1, 2.5, "three"]}}
        assert row["info"]["k"] == 1
        assert row["correlation_id"] == "corr-1"
        assert row["digest"] == job.digest


class TestStoreRestart:
    def test_interrupted_jobs_reenqueue_and_terminal_results_survive(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        done = first.submit("bench", {"name": "a"})
        first.claim(timeout=0.1)
        first.finish(done.id, {"kept": True})
        running = first.submit("bench", {"name": "b"})
        first.claim(timeout=0.1)  # running when the daemon "dies"
        queued = first.submit("bench", {"name": "c"})
        first.dispose()

        second = JobStore(db_path=db)
        # terminal result came back whole, served warm
        assert second.get(done.id).state == "done"
        assert second.get(done.id).result == {"kept": True}
        assert "recovered" not in second.get(done.id).info
        # both interrupted jobs are queued again and marked recovered
        for job_id in (running.id, queued.id):
            job = second.get(job_id)
            assert job.state == "queued"
            assert job.info["recovered"] is True
            assert job.started_at is None
        assert second.counts()["recovered"] == 2
        # the queue actually hands them out, oldest first
        assert second.claim(timeout=0.1).id == running.id
        assert second.claim(timeout=0.1).id == queued.id
        second.dispose()

    def test_ids_stay_monotonic_across_restart(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        old = first.submit("bench", {"name": "a"})
        first.dispose()
        second = JobStore(db_path=db)
        new = second.submit("bench", {"name": "b"})
        assert new.id > old.id
        second.dispose()

    def test_follower_links_survive_restart(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        leader = first.submit("bench", {"name": "a"})
        follower = first.submit("bench", {"name": "a"})
        assert follower.coalesced_with == leader.id
        first.dispose()

        second = JobStore(db_path=db)
        # the follower is still attached: completing the leader resolves both
        assert second.get(follower.id).coalesced_with == leader.id
        claimed = second.claim(timeout=0.1)
        assert claimed.id == leader.id
        second.finish(leader.id, {"ok": 1})
        assert second.get(follower.id).state == "done"
        assert second.get(follower.id).result == {"ok": 1}
        # and the follower never entered the queue
        assert second.claim(timeout=0.05) is None
        second.dispose()

    def test_follower_stays_attached_when_leader_interrupted_running(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        leader = first.submit("bench", {"name": "a"})
        follower = first.submit("bench", {"name": "a"})
        first.claim(timeout=0.1)  # leader running when the daemon dies
        first.dispose()
        second = JobStore(db_path=db)
        # the interrupted leader is queued again and the follower is still
        # riding on it — the shared work runs once, for both
        assert second.get(leader.id).state == "queued"
        assert second.get(follower.id).coalesced_with == leader.id
        second.claim(timeout=0.1)
        second.finish(leader.id, {"ok": 2})
        assert second.get(follower.id).state == "done"
        second.dispose()

    def test_cancel_requested_interrupted_job_restores_cancelled(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        job = first.submit("bench", {"name": "a"})
        first.claim(timeout=0.1)
        first.cancel(job.id)  # cooperative: cancel_requested, still running
        first.dispose()
        second = JobStore(db_path=db)
        # the dead daemon never recorded the completion; restart grants it
        assert second.get(job.id).state == "cancelled"
        assert second.claim(timeout=0.05) is None
        second.dispose()

    def test_restore_respects_history_bound(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = JobStore(db_path=db)
        ids = []
        for n in range(4):
            job = first.submit("bench", {"name": f"n{n}"})
            first.claim(timeout=0.1)
            first.finish(job.id, None)
            ids.append(job.id)
        first.dispose()
        second = JobStore(db_path=db, max_history=2)
        assert second.get(ids[0]) is None and second.get(ids[1]) is None
        assert second.get(ids[2]) is not None and second.get(ids[3]) is not None
        second.dispose()


class TestServiceRestart:
    def _start_http_only(self, svc):
        """Serve HTTP with the workers parked — jobs queue but never run."""
        thread = threading.Thread(
            target=svc.httpd.serve_forever, kwargs={"poll_interval": 0.2}, daemon=True
        )
        thread.start()
        return thread

    def _kill(self, svc):
        """Abrupt daemon death: close the socket and freeze the sqlite
        state mid-queue — no draining, no graceful completion."""
        svc.httpd.shutdown()
        svc.httpd.server_close()
        svc.store.dispose()

    def test_killed_daemon_mid_queue_reruns_interrupted_jobs(self, tmp_path):
        """The ISSUE's restart-durability acceptance: kill the daemon with
        accepted-but-unfinished jobs, restart on the same sqlite path, and
        watch the work complete."""
        db = str(tmp_path / "jobs.sqlite")
        first = AnalysisService(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), db_path=db
        )
        self._start_http_only(first)
        client = ServiceClient(first.url)
        client.wait_healthy(timeout=5.0)
        submitted = [
            client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=seed)
            for seed in range(3)
        ]
        assert all(r["state"] == "queued" for r in submitted)
        self._kill(first)

        second = AnalysisService(
            port=0, workers=2, cache_dir=str(tmp_path / "cache"), db_path=db
        )
        second.start_background()
        try:
            assert second.store.recovered == 3
            client2 = ServiceClient(second.url)
            client2.wait_healthy(timeout=5.0)
            for record in submitted:
                final = client2.wait(record["id"], timeout=120.0)
                assert final["state"] == "done"
                assert final["info"]["recovered"] is True
                assert final["result"]["schema_version"] is not None
        finally:
            second.shutdown()

    def test_terminal_results_served_warm_without_reexecution(self, tmp_path):
        db = str(tmp_path / "jobs.sqlite")
        first = AnalysisService(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), db_path=db
        )
        first.start_background()
        client = ServiceClient(first.url)
        client.wait_healthy(timeout=5.0)
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        done = client.wait(job["id"], timeout=120.0)
        assert done["state"] == "done"
        first.shutdown()  # clean shutdown persists the terminal row

        second = AnalysisService(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), db_path=db
        )
        second.start_background()
        try:
            client2 = ServiceClient(second.url)
            client2.wait_healthy(timeout=5.0)
            warm = client2.job(job["id"])
            assert warm["state"] == "done"
            # byte-identical result document, no re-execution: the new
            # daemon has run zero jobs and the record kept its timestamps
            assert canonical_json(warm["result"]) == canonical_json(done["result"])
            assert warm["started_at"] == done["started_at"]
            assert warm["finished_at"] == done["finished_at"]
            assert second.store.counts()["states"]["running"] == 0
            assert second.store.recovered == 0
        finally:
            second.shutdown()
