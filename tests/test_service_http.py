"""Client round-trips against a real daemon on an ephemeral port."""

import io
import json
import threading
from contextlib import redirect_stdout

import pytest

import repro
from repro.cli import main
from repro.patterns.schema import SCHEMA_VERSION, strip_trace_timings
from repro.profiling.serialize import canonical_json
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import AnalysisService

#: Everything here drives a live daemon: excluded from the fast CI lane (-m "not slow").
pytestmark = pytest.mark.slow

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]

#: Triple-loop matmul — slow enough (hundreds of ms interpreted) to hold a
#: worker busy while the tests race a second submission against it.
SLOW_SRC = """\
void mm(float A[][], float B[][], float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            C[i][j] = 0.0;
            for (int k = 0; k < n; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
}
"""

SLOW_ARGS = [
    ["rand", "A:24,24"], ["rand", "B:24,24"], ["zeros", "C:24,24"], ["scalar", "24"],
]


def _metric_value(text, name):
    """First sample value of *name* in Prometheus exposition *text*."""
    for line in text.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


@pytest.fixture
def service(tmp_path):
    svc = AnalysisService(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
    svc.start_background()
    try:
        yield svc
    finally:
        svc.shutdown()


@pytest.fixture
def client(service):
    c = ServiceClient(service.url)
    c.wait_healthy(timeout=5.0)
    return c


class TestEndpoints:
    def test_health_and_version(self, client):
        assert client.health()["status"] == "ok"
        version = client.version()
        assert version["version"] == repro.__version__
        assert version["schema_version"] == SCHEMA_VERSION

    def test_unknown_routes_and_jobs(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.job(12345)
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.cancel(12345)
        assert exc.value.status == 404

    def test_submit_validation(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", {"kind": "mystery"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", {"kind": "source", "entry": "f"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit_benchmark("no_such_benchmark")
        assert exc.value.status == 400

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["workers"]["count"] == 2
        assert set(stats["cache"]) == {
            "hits", "misses", "stores", "evictions", "read_errors", "store_errors",
        }
        assert stats["jobs"]["queue_depth"] == 0


class TestRoundTrip:
    def test_submit_poll_result(self, client):
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        assert job["state"] == "queued" and job["record"] == "job"
        record = client.wait(job["id"], timeout=60.0)
        assert record["state"] == "done"
        assert record["result"]["schema_version"] == SCHEMA_VERSION
        assert record["info"]["profile_cache_hit"] is False

    def test_result_matches_detect_json_bytes(self, client, tmp_path):
        """The daemon's analysis document is byte-identical to the CLI's
        `detect --json --compact` for the same program, once the trace's
        wall-clock timings (run-specific noise) are stripped."""
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        buf = io.StringIO()
        with redirect_stdout(buf):
            assert main([
                "detect", str(path), "--entry", "total", "--rand", "A:16",
                "--scalar", "16", "--json", "--compact",
                "--cache-dir", str(tmp_path / "cli-cache"),
            ]) == 0
        cli_doc = json.loads(buf.getvalue())

        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        record = client.wait(job["id"], timeout=60.0)
        assert canonical_json(strip_trace_timings(record["result"])) == \
            canonical_json(strip_trace_timings(cli_doc))

    def test_repeat_submission_reports_cache_hit(self, client):
        first = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(first["id"], timeout=60.0)
        second = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        record = client.wait(second["id"], timeout=60.0)
        assert record["info"]["profile_cache_hit"] is True
        assert client.stats()["cache"]["hits"] >= 1

    def test_eight_concurrent_distinct_submissions(self, client):
        """≥ 8 concurrent clients saturate the 2-worker pool; every job
        completes and the worker bound holds.  Distinct seeds give each
        submission its own digest, so nothing coalesces — all 8 run."""
        records, errors = [], []

        def one(seed):
            try:
                job = client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=seed)
                records.append(client.wait(job["id"], timeout=120.0))
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(seed,)) for seed in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not errors
        assert len(records) == 8
        assert all(r["state"] == "done" for r in records)
        assert len({r["digest"] for r in records}) == 8

    def test_eight_concurrent_identical_submissions_coalesce(self, tmp_path):
        """8 concurrent identical submits → exactly 1 execution, 8 results,
        byte-identity across all 8 (the ISSUE's coalescing acceptance).

        The HTTP loop runs but the workers stay parked until the whole
        burst has landed, so every submission provably arrives while the
        leader is still in flight — no timing luck involved."""
        svc = AnalysisService(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
        http_thread = threading.Thread(
            target=svc.httpd.serve_forever, kwargs={"poll_interval": 0.2}, daemon=True
        )
        http_thread.start()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=5.0)
            before = client.metrics()
            records, errors = [], []

            def one():
                try:
                    records.append(
                        client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=77)
                    )
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=one) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors and len(records) == 8

            svc.executor.start()  # now let the pool drain the burst
            finals = [client.wait(r["id"], timeout=120.0) for r in records]
            assert all(r["state"] == "done" for r in finals)
            # exactly one leader executed; the other seven attached to it
            leaders = [r for r in finals if r["coalesced_with"] is None]
            followers = [r for r in finals if r["coalesced_with"] is not None]
            assert len(leaders) == 1 and len(followers) == 7
            assert all(f["coalesced_with"] == leaders[0]["id"] for f in followers)
            assert len({r["digest"] for r in finals}) == 1
            # all eight carry byte-identical result documents
            full = [client.job(r["id"])["result"] for r in finals]
            assert len({canonical_json(doc) for doc in full}) == 1
            # metrics: 7 coalesced submissions, exactly 1 execution
            after = client.metrics()
            coalesced = _metric_value(
                after, "repro_jobs_coalesced_total"
            ) - _metric_value(before, "repro_jobs_coalesced_total")
            assert coalesced == 7
            runs = _metric_value(
                after, 'repro_job_run_seconds_count{kind="source"}'
            ) - _metric_value(before, 'repro_job_run_seconds_count{kind="source"}')
            assert runs == 1
        finally:
            svc.shutdown()

    def test_bench_submission_matches_table3(self, client):
        record = client.wait(client.submit_benchmark("reg_detect")["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["result"]["label"] == "Multi-loop pipeline"

    def test_crashing_job_fails_daemon_survives(self, client):
        job = client.submit_source("void f() { x = 1; }", entry="f")
        record = client.wait(job["id"], timeout=30.0)
        assert record["state"] == "failed"
        assert record["error"]["failed"] is True
        assert record["error"]["error_type"] == "ValidationError"
        assert record["error"]["schema_version"] == SCHEMA_VERSION
        # the daemon keeps serving after the failure
        after = client.wait(
            client.submit_source(SRC, entry="total", args=SRC_ARGS)["id"],
            timeout=60.0,
        )
        assert after["state"] == "done"


class TestCancel:
    def test_cancel_while_queued(self, tmp_path):
        svc = AnalysisService(port=0, workers=1, cache_dir=str(tmp_path / "cache"))
        svc.start_background()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=5.0)
            # occupy the single worker, then cancel the job stuck behind it
            slow = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS)
            queued = client.submit_source(SRC, entry="total", args=SRC_ARGS)
            record = client.cancel(queued["id"])
            assert record["state"] == "cancelled"
            assert client.job(queued["id"])["state"] == "cancelled"
            done = client.wait(slow["id"], timeout=120.0)
            assert done["state"] == "done"
        finally:
            svc.shutdown()

    def test_cancel_terminal_conflicts(self, client):
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(job["id"], timeout=60.0)
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409
        # DELETE on the already-terminal job again: still 409, not 500/404
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409

    def test_cancel_while_running_is_cooperative(self, tmp_path):
        import time as _time

        log_path = tmp_path / "jobs.jsonl"
        svc = AnalysisService(
            port=0, workers=1,
            cache_dir=str(tmp_path / "cache"),
            jsonl_path=str(log_path),
        )
        svc.start_background()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=5.0)
            metrics_before = client.metrics()
            job = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS)
            # wait until the single worker actually claims it
            deadline = _time.monotonic() + 30.0
            while client.job(job["id"])["state"] != "running":
                assert _time.monotonic() < deadline, "job never started running"
                _time.sleep(0.02)
            record = client.cancel(job["id"])
            assert record["state"] == "running"
            assert record["cancel_requested"] is True
            final = client.wait(job["id"], timeout=120.0)
            assert final["state"] == "cancelled"
            assert final.get("result") is None
            assert final["info"]["completed_as"] == "done"
            # the cancellation is visible in the daemon's metrics...
            # counters are process-global across tests, so assert the delta
            metrics_after = client.metrics()
            delta = _metric_value(
                metrics_after, "repro_jobs_cancelled_total"
            ) - _metric_value(metrics_before, "repro_jobs_cancelled_total")
            assert delta == 1
        finally:
            svc.shutdown()
        # ...and in its structured log, correlated with the submission
        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        by_event = {}
        for doc in events:
            by_event.setdefault(doc["event"], []).append(doc)
        assert "job.cancel_requested" in by_event
        cancel_doc = by_event["job.cancel_requested"][0]
        assert cancel_doc["correlation_id"] == job["correlation_id"]
        terminal = [
            d for d in by_event["job.transition"] if d["state"] == "cancelled"
        ]
        assert terminal and terminal[-1]["correlation_id"] == job["correlation_id"]


class TestListing:
    def test_list_and_filter(self, client):
        done_job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(done_job["id"], timeout=60.0)
        failed_job = client.submit_source("void f() { x = 1; }", entry="f")
        client.wait(failed_job["id"], timeout=30.0)

        everything = client.jobs()
        assert {r["id"] for r in everything} >= {done_job["id"], failed_job["id"]}
        # summaries never carry the result payload
        assert all("result" not in r for r in everything)
        failed = client.jobs(state="failed")
        assert failed_job["id"] in {r["id"] for r in failed}
        assert all(r["state"] == "failed" for r in failed)

    def test_limit_returns_newest_first(self, client):
        ids = []
        for seed in range(3):
            job = client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=seed)
            client.wait(job["id"], timeout=60.0)
            ids.append(job["id"])
        newest_two = client.jobs(limit=2)
        assert [r["id"] for r in newest_two] == [ids[-1], ids[-2]]

    def test_limit_validation(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v1/jobs?limit=banana")
        assert exc.value.status == 400


class TestValidation:
    def test_sweep_unknown_names_rejected_at_submission(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit_sweep(names=["reg_detect", "no_such_benchmark"])
        assert exc.value.status == 400
        assert "no_such_benchmark" in exc.value.message

    def test_sweep_malformed_names_rejected(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit_sweep(names=[42])  # type: ignore[list-item]
        assert exc.value.status == 400

    def test_handler_bug_returns_json_500_not_html(self, service, client, monkeypatch):
        # break one endpoint from the outside; the catch-all must answer
        # with the service's JSON error shape, never http.server's HTML page
        def boom():
            raise RuntimeError("stats exploded")

        monkeypatch.setattr(service, "stats", boom)
        with pytest.raises(ServiceError) as exc:
            client.stats()
        assert exc.value.status == 500
        assert "internal error" in exc.value.message
        assert "stats exploded" in exc.value.message
        # the daemon keeps serving other routes afterwards
        assert client.health()["status"] == "ok"

    def test_bench_campaign_knobs_validated_at_submission(self, client):
        for bad in (
            {"scale": -1}, {"scale": "big"},
            {"threshold": 2.0}, {"threshold": "high"},
            {"min_pairs": -1}, {"min_pairs": 1.5},
            {"machine": "fast"}, {"machine": {"warp_drive": 1.0}},
            {"machine": {"spawn_cost": -5.0}}, {"machine": {"threads": 4}},
        ):
            with pytest.raises(ServiceError) as exc:
                client.submit_benchmark("reg_detect", **bad)
            assert exc.value.status == 400, bad

    def test_bench_accepts_campaign_knobs(self, client):
        job = client.submit_benchmark(
            "reg_detect", scale=1.0, threshold=0.1,
            machine={"spawn_cost": 10.0},
        )
        record = client.wait(job["id"], timeout=120.0)
        assert record["state"] == "done", record.get("error")

    def test_malformed_content_length_is_json_400(self, service):
        # a bad Content-Length must be a clean 400 with a JSON error body,
        # not a ValueError surfacing through the 500 catch-all
        import http.client

        conn = http.client.HTTPConnection(service.host, service.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/jobs", skip_accept_encoding=True)
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            doc = json.loads(response.read())
            assert "Content-Length" in doc["error"]
        finally:
            conn.close()
        # negative lengths are rejected the same way ('-1'.isdigit() is False)
        conn = http.client.HTTPConnection(service.host, service.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/jobs", skip_accept_encoding=True)
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestRetryAfterParsing:
    """Client-side ``Retry-After`` leniency (RFC 9110: server sends ints)."""

    def test_parse_retry_after_is_lenient(self):
        from repro.service.client import _parse_retry_after

        assert _parse_retry_after("7") == 7.0
        assert _parse_retry_after(" 2.5 ") == 2.5  # fractional tolerated
        assert _parse_retry_after("-3") == 0.0  # never sleep backwards
        assert _parse_retry_after(None) is None
        # non-numeric forms (e.g. an HTTP-date) degrade to None, not a crash
        assert _parse_retry_after("Fri, 08 Aug 2026 12:00:00 GMT") is None
        assert _parse_retry_after("") is None

    def test_non_numeric_retry_after_header_is_ignored(self, service):
        # regression: a proxy-style HTTP-date Retry-After must not crash the
        # client's error path — the ServiceError simply carries no hint
        import urllib.error
        import urllib.request

        from repro.service import client as client_mod

        real_urlopen = urllib.request.urlopen

        def date_flavored(request, **kwargs):
            try:
                return real_urlopen(request, **kwargs)
            except urllib.error.HTTPError as exc:
                exc.headers["Retry-After"] = "Fri, 08 Aug 2026 12:00:00 GMT"
                raise

        sick = ServiceClient(service.url, retry_limit=0)
        try:
            client_mod.urllib.request.urlopen = date_flavored
            with pytest.raises(ServiceError) as exc:
                sick._request("GET", "/v1/jobs/999999")
        finally:
            client_mod.urllib.request.urlopen = real_urlopen
        assert exc.value.status == 404
        assert exc.value.retry_after is None


class TestAdmissionControl:
    @pytest.fixture
    def bounded(self, tmp_path):
        svc = AnalysisService(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), max_queue=1
        )
        svc.start_background()
        try:
            client = ServiceClient(svc.url, retry_limit=0)
            client.wait_healthy(timeout=5.0)
            yield svc, client
        finally:
            svc.shutdown()

    def _saturate(self, client):
        """Fill the 1-worker/1-slot daemon: one running, one queued."""
        import time as _time

        running = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=201)
        deadline = _time.monotonic() + 30.0
        while client.job(running["id"])["state"] != "running":
            assert _time.monotonic() < deadline, "job never started running"
            _time.sleep(0.02)
        queued = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=202)
        return running, queued

    def test_full_queue_answers_429_with_retry_after(self, bounded):
        svc, client = bounded
        self._saturate(client)
        with pytest.raises(ServiceError) as exc:
            client.submit_source(SRC, entry="total", args=SRC_ARGS, seed=203)
        assert exc.value.status == 429
        assert exc.value.retry_after is not None and exc.value.retry_after >= 1
        # RFC 9110 delay-seconds: the server's hint is whole seconds
        assert float(exc.value.retry_after).is_integer()
        stats = client.stats()
        assert stats["admission"]["max_queue"] == 1
        assert stats["admission"]["rejected"] >= 1
        assert stats["jobs"]["rejected"] >= 1

    def test_coalesced_submission_bypasses_full_queue(self, bounded):
        svc, client = bounded
        _, queued = self._saturate(client)
        follower = client.submit_source(
            SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=202
        )
        assert follower["coalesced_with"] == queued["id"]

    def test_client_honors_retry_after_and_recovers(self, bounded):
        svc, client = bounded
        _, queued = self._saturate(client)
        # free the queue slot shortly after the first 429
        threading.Timer(0.3, lambda: client.cancel(queued["id"])).start()
        retrying = ServiceClient(
            svc.url, retry_limit=10, retry_after_cap=0.2, client_id="retrier"
        )
        record = retrying.submit_source(SRC, entry="total", args=SRC_ARGS, seed=204)
        assert record["state"] == "queued"
        clients = client.stats()["clients"]
        assert clients["retrier"]["rejected"] >= 1
        assert clients["retrier"]["accepted"] == 1

    def test_per_client_accounting_in_stats_and_metrics(self, bounded):
        svc, client = bounded
        named = ServiceClient(svc.url, client_id="alice")
        job = named.submit_source(SRC, entry="total", args=SRC_ARGS, seed=205)
        named.wait(job["id"], timeout=60.0)
        tallies = named.stats()["clients"]["alice"]
        assert tallies["accepted"] == 1
        text = named.metrics()
        assert 'repro_client_requests_total{client="alice",outcome="accepted"}' in text


class TestBatchSubmission:
    """JSON-array bodies on POST /v1/jobs and ServiceClient.submit_many."""

    def test_batch_round_trip(self, client):
        records = client.submit_many([
            {"kind": "source", "source": SRC, "entry": "total",
             "args": SRC_ARGS, "seed": 301},
            {"kind": "source", "source": SRC, "entry": "total",
             "args": SRC_ARGS, "seed": 302},
            {"kind": "bench", "name": "reg_detect"},
        ])
        assert len(records) == 3
        assert all(r["record"] == "job" for r in records)
        # every body was stamped with its own correlation id
        assert len({r["correlation_id"] for r in records}) == 3
        finals = [client.wait(r["id"], timeout=120.0) for r in records]
        assert all(r["state"] == "done" for r in finals)
        assert finals[2]["result"]["label"] == "Multi-loop pipeline"

    def test_batch_validation_is_atomic(self, client):
        """One bad item fails the whole batch with per-index errors and
        provably enqueues nothing."""
        before = {r["id"] for r in client.jobs()}
        with pytest.raises(ServiceError) as exc:
            client.submit_many([
                {"kind": "bench", "name": "reg_detect"},          # valid
                {"kind": "bench", "name": "no_such_benchmark"},   # invalid
                {"kind": "mystery"},                              # invalid
            ])
        assert exc.value.status == 400
        assert "2 invalid submission(s)" in exc.value.message
        items = exc.value.payload["items"]
        assert [item["index"] for item in items] == [1, 2]
        assert "no_such_benchmark" in items[0]["error"]
        # the valid first item was NOT admitted
        assert {r["id"] for r in client.jobs()} == before

    def test_batch_non_object_item_rejected(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", [42])
        assert exc.value.status == 400
        assert exc.value.payload["items"][0]["index"] == 0

    def test_empty_batch_rejected_by_server(self, client):
        # the client short-circuits []; the wire protocol still answers 400
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", [])
        assert exc.value.status == 400
        # and the client-side short circuit performs no request at all
        assert client.submit_many([]) == []

    @pytest.fixture
    def bounded(self, tmp_path):
        svc = AnalysisService(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), max_queue=1
        )
        svc.start_background()
        try:
            c = ServiceClient(svc.url, retry_limit=0)
            c.wait_healthy(timeout=5.0)
            yield svc, c
        finally:
            svc.shutdown()

    def _saturate(self, client):
        import time as _time

        running = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=211)
        deadline = _time.monotonic() + 30.0
        while client.job(running["id"])["state"] != "running":
            assert _time.monotonic() < deadline, "job never started running"
            _time.sleep(0.02)
        queued = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS, seed=212)
        return running, queued

    def test_queue_full_mid_batch_returns_accepted_prefix(self, bounded):
        svc, client = bounded
        _, queued = self._saturate(client)
        # first item coalesces with the queued job (bypasses the bound and
        # is deterministically accepted); the second hits the full queue
        with pytest.raises(ServiceError) as exc:
            client.submit_many([
                {"kind": "source", "source": SLOW_SRC, "entry": "mm",
                 "args": SLOW_ARGS, "seed": 212,
                 "correlation_id": queued["correlation_id"]},
                {"kind": "source", "source": SRC, "entry": "total",
                 "args": SRC_ARGS, "seed": 213},
            ])
        assert exc.value.status == 429
        assert exc.value.retry_after is not None and exc.value.retry_after >= 1
        accepted = exc.value.payload["accepted"]
        assert len(accepted) == 1
        assert accepted[0]["coalesced_with"] == queued["id"]

    def test_submit_many_retries_only_the_tail(self, bounded):
        svc, client = bounded
        _, queued = self._saturate(client)
        # free the queue slot shortly after the first 429
        threading.Timer(0.3, lambda: client.cancel(queued["id"])).start()
        retrying = ServiceClient(
            svc.url, retry_limit=10, retry_after_cap=0.2, client_id="batch-retrier"
        )
        records = retrying.submit_many([
            {"kind": "source", "source": SLOW_SRC, "entry": "mm",
             "args": SLOW_ARGS, "seed": 212,
             "correlation_id": queued["correlation_id"]},
            {"kind": "source", "source": SRC, "entry": "total",
             "args": SRC_ARGS, "seed": 214},
        ])
        assert len(records) == 2
        # head accepted on the first attempt (coalesced), tail after retry —
        # and the head was never resubmitted (no duplicate job ids)
        assert records[0]["coalesced_with"] == queued["id"]
        assert records[1]["coalesced_with"] is None
        assert len({r["id"] for r in records}) == 2
        tallies = client.stats()["clients"]["batch-retrier"]
        assert tallies["rejected"] >= 1
        assert tallies["accepted"] >= 1


class TestCliCommands:
    def test_submit_jobs_result_cli(self, service, client, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        assert main([
            "submit", str(path), "--entry", "total", "--rand", "A:16",
            "--scalar", "16", "--wait", "--url", service.url, "--json", "--compact",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"

        assert main(["jobs", "--url", service.url]) == 0
        assert "done" in capsys.readouterr().out

        assert main(["result", str(record["id"]), "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_submit_bench_cli(self, service, capsys):
        assert main([
            "submit", "--bench", "reg_detect", "--wait", "--url", service.url,
            "--json", "--compact",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["result"]["label"] == "Multi-loop pipeline"

    def test_submit_failed_job_exits_nonzero(self, service, tmp_path, capsys):
        path = tmp_path / "bad.minic"
        path.write_text("void f() { x = 1; }")
        assert main([
            "submit", str(path), "--entry", "f", "--wait", "--url", service.url,
        ]) == 1
        assert "ValidationError" in capsys.readouterr().out

    def test_submit_unreachable_daemon(self, capsys):
        assert main([
            "submit", "--bench", "reg_detect", "--url", "http://127.0.0.1:1",
        ]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_list_json(self, capsys):
        assert main(["list", "--json", "--compact"]) == 0
        docs = json.loads(capsys.readouterr().out)
        names = {d["name"] for d in docs}
        assert "reg_detect" in names and "fib" in names
        assert all(
            set(d) == {"name", "suite", "entry", "loc", "paper_pattern", "expected_label"}
            for d in docs
        )

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestMetricsEndpoint:
    def test_metrics_expose_job_cache_pool_and_stage_series(self, client):
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        assert client.wait(job["id"], timeout=60.0)["state"] == "done"
        text = client.metrics()
        # jobs
        assert _metric_value(text, "repro_jobs_submitted_total") >= 1
        assert _metric_value(text, "repro_jobs_completed_total") >= 1
        assert "repro_job_queue_wait_seconds_bucket" in text
        assert 'repro_job_run_seconds_count{kind="source"}' in text
        # cache (the cold submission missed, then stored)
        assert _metric_value(text, "repro_profile_cache_misses_total") >= 1
        assert _metric_value(text, "repro_profile_cache_stores_total") >= 1
        assert "repro_cache_read_seconds_bucket" in text
        # pool gauges read live executor state
        assert _metric_value(text, "repro_pool_workers") == 2
        assert "repro_jobs_queue_depth" in text
        # per-detector-stage histograms
        assert 'repro_detector_stage_seconds_count{stage="loop-classes"}' in text
        assert "# TYPE repro_detector_stage_seconds histogram" in text

    def test_metrics_cli_prints_exposition(self, service, capsys):
        assert main(["metrics", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_jobs_submitted_total counter" in out

    def test_metrics_cli_unreachable_daemon(self, capsys):
        assert main(["metrics", "--url", "http://127.0.0.1:1"]) == 1
        assert "metrics:" in capsys.readouterr().err
