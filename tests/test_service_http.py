"""Client round-trips against a real daemon on an ephemeral port."""

import io
import json
import threading
from contextlib import redirect_stdout

import pytest

import repro
from repro.cli import main
from repro.patterns.schema import SCHEMA_VERSION, strip_trace_timings
from repro.profiling.serialize import canonical_json
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import AnalysisService

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_ARGS = [["rand", "A:16"], ["scalar", "16"]]

#: Triple-loop matmul — slow enough (hundreds of ms interpreted) to hold a
#: worker busy while the tests race a second submission against it.
SLOW_SRC = """\
void mm(float A[][], float B[][], float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            C[i][j] = 0.0;
            for (int k = 0; k < n; k++) {
                C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }
        }
    }
}
"""

SLOW_ARGS = [
    ["rand", "A:24,24"], ["rand", "B:24,24"], ["zeros", "C:24,24"], ["scalar", "24"],
]


@pytest.fixture
def service(tmp_path):
    svc = AnalysisService(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
    svc.start_background()
    try:
        yield svc
    finally:
        svc.shutdown()


@pytest.fixture
def client(service):
    c = ServiceClient(service.url)
    c.wait_healthy(timeout=5.0)
    return c


class TestEndpoints:
    def test_health_and_version(self, client):
        assert client.health()["status"] == "ok"
        version = client.version()
        assert version["version"] == repro.__version__
        assert version["schema_version"] == SCHEMA_VERSION

    def test_unknown_routes_and_jobs(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.job(12345)
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.cancel(12345)
        assert exc.value.status == 404

    def test_submit_validation(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", {"kind": "mystery"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/v1/jobs", {"kind": "source", "entry": "f"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit_benchmark("no_such_benchmark")
        assert exc.value.status == 400

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["workers"]["count"] == 2
        assert set(stats["cache"]) == {
            "hits", "misses", "stores", "evictions", "read_errors", "store_errors",
        }
        assert stats["jobs"]["queue_depth"] == 0


class TestRoundTrip:
    def test_submit_poll_result(self, client):
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        assert job["state"] == "queued" and job["record"] == "job"
        record = client.wait(job["id"], timeout=60.0)
        assert record["state"] == "done"
        assert record["result"]["schema_version"] == SCHEMA_VERSION
        assert record["info"]["profile_cache_hit"] is False

    def test_result_matches_detect_json_bytes(self, client, tmp_path):
        """The daemon's analysis document is byte-identical to the CLI's
        `detect --json --compact` for the same program, once the trace's
        wall-clock timings (run-specific noise) are stripped."""
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        buf = io.StringIO()
        with redirect_stdout(buf):
            assert main([
                "detect", str(path), "--entry", "total", "--rand", "A:16",
                "--scalar", "16", "--json", "--compact",
                "--cache-dir", str(tmp_path / "cli-cache"),
            ]) == 0
        cli_doc = json.loads(buf.getvalue())

        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        record = client.wait(job["id"], timeout=60.0)
        assert canonical_json(strip_trace_timings(record["result"])) == \
            canonical_json(strip_trace_timings(cli_doc))

    def test_repeat_submission_reports_cache_hit(self, client):
        first = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(first["id"], timeout=60.0)
        second = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        record = client.wait(second["id"], timeout=60.0)
        assert record["info"]["profile_cache_hit"] is True
        assert client.stats()["cache"]["hits"] >= 1

    def test_eight_concurrent_submissions(self, client):
        """≥ 8 concurrent clients saturate the 2-worker pool; every job
        completes and the worker bound holds."""
        records, errors = [], []

        def one():
            try:
                job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
                records.append(client.wait(job["id"], timeout=120.0))
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not errors
        assert len(records) == 8
        assert all(r["state"] == "done" for r in records)

    def test_bench_submission_matches_table3(self, client):
        record = client.wait(client.submit_benchmark("reg_detect")["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["result"]["label"] == "Multi-loop pipeline"

    def test_crashing_job_fails_daemon_survives(self, client):
        job = client.submit_source("void f() { x = 1; }", entry="f")
        record = client.wait(job["id"], timeout=30.0)
        assert record["state"] == "failed"
        assert record["error"]["failed"] is True
        assert record["error"]["error_type"] == "ValidationError"
        assert record["error"]["schema_version"] == SCHEMA_VERSION
        # the daemon keeps serving after the failure
        after = client.wait(
            client.submit_source(SRC, entry="total", args=SRC_ARGS)["id"],
            timeout=60.0,
        )
        assert after["state"] == "done"


class TestCancel:
    def test_cancel_while_queued(self, tmp_path):
        svc = AnalysisService(port=0, workers=1, cache_dir=str(tmp_path / "cache"))
        svc.start_background()
        try:
            client = ServiceClient(svc.url)
            client.wait_healthy(timeout=5.0)
            # occupy the single worker, then cancel the job stuck behind it
            slow = client.submit_source(SLOW_SRC, entry="mm", args=SLOW_ARGS)
            queued = client.submit_source(SRC, entry="total", args=SRC_ARGS)
            record = client.cancel(queued["id"])
            assert record["state"] == "cancelled"
            assert client.job(queued["id"])["state"] == "cancelled"
            done = client.wait(slow["id"], timeout=120.0)
            assert done["state"] == "done"
        finally:
            svc.shutdown()

    def test_cancel_terminal_conflicts(self, client):
        job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(job["id"], timeout=60.0)
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409


class TestListing:
    def test_list_and_filter(self, client):
        done_job = client.submit_source(SRC, entry="total", args=SRC_ARGS)
        client.wait(done_job["id"], timeout=60.0)
        failed_job = client.submit_source("void f() { x = 1; }", entry="f")
        client.wait(failed_job["id"], timeout=30.0)

        everything = client.jobs()
        assert {r["id"] for r in everything} >= {done_job["id"], failed_job["id"]}
        # summaries never carry the result payload
        assert all("result" not in r for r in everything)
        failed = client.jobs(state="failed")
        assert failed_job["id"] in {r["id"] for r in failed}
        assert all(r["state"] == "failed" for r in failed)


class TestCliCommands:
    def test_submit_jobs_result_cli(self, service, client, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        assert main([
            "submit", str(path), "--entry", "total", "--rand", "A:16",
            "--scalar", "16", "--wait", "--url", service.url, "--json", "--compact",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"

        assert main(["jobs", "--url", service.url]) == 0
        assert "done" in capsys.readouterr().out

        assert main(["result", str(record["id"]), "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "Primary pattern: Reduction" in out

    def test_submit_bench_cli(self, service, capsys):
        assert main([
            "submit", "--bench", "reg_detect", "--wait", "--url", service.url,
            "--json", "--compact",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["result"]["label"] == "Multi-loop pipeline"

    def test_submit_failed_job_exits_nonzero(self, service, tmp_path, capsys):
        path = tmp_path / "bad.minic"
        path.write_text("void f() { x = 1; }")
        assert main([
            "submit", str(path), "--entry", "f", "--wait", "--url", service.url,
        ]) == 1
        assert "ValidationError" in capsys.readouterr().out

    def test_submit_unreachable_daemon(self, capsys):
        assert main([
            "submit", "--bench", "reg_detect", "--url", "http://127.0.0.1:1",
        ]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_list_json(self, capsys):
        assert main(["list", "--json", "--compact"]) == 0
        docs = json.loads(capsys.readouterr().out)
        names = {d["name"] for d in docs}
        assert "reg_detect" in names and "fib" in names
        assert all(
            set(d) == {"name", "suite", "entry", "loc", "paper_pattern", "expected_label"}
            for d in docs
        )

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out
