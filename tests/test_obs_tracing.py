"""Span tracing: tree structure, thread-local activation, no-op paths."""

import threading

from repro.obs.metrics import set_enabled
from repro.obs.tracing import (
    NOOP_SPAN,
    Tracer,
    activate,
    current_tracer,
    ensure_tracer,
    span,
)


class TestSpanTree:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("job.run") as outer:
            with tracer.span("parse") as inner:
                pass
        spans = {sp.name: sp for sp in tracer.finished()}
        assert spans["parse"].parent_id == outer.span_id
        assert spans["job.run"].parent_id is None
        assert inner.span_id != outer.span_id

    def test_ids_are_sequential_and_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [sp.span_id for sp in tracer.finished()] == [1, 2]

    def test_finished_is_completion_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [sp.name for sp in tracer.finished()] == ["inner", "outer"]

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [sp.name for sp in tracer.finished()] == ["boom"]
        # the stack unwound: the next span is a root again
        with tracer.span("after"):
            pass
        assert tracer.finished()[-1].parent_id is None

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("cache.read", key="abc") as sp:
            sp.set(outcome="hit")
        done = tracer.finished()[0]
        assert done.attrs == {"key": "abc", "outcome": "hit"}

    def test_record_appends_premeasured_span(self):
        tracer = Tracer()
        sp = tracer.record("job.queue_wait", 0.25, kind="source")
        assert sp.duration_s == 0.25
        assert tracer.finished() == [sp]

    def test_durations_are_nonnegative(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.finished()[0].duration_s >= 0.0


class TestThreadLocalActivation:
    def test_free_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("orphan") as sp:
            assert sp is NOOP_SPAN
            assert sp.set(k=1) is sp  # chainable no-op

    def test_free_span_reaches_active_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with span("reached"):
                pass
        assert current_tracer() is None
        assert [sp.name for sp in tracer.finished()] == ["reached"]

    def test_activation_nests(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                with span("deep"):
                    pass
            assert current_tracer() is outer
        assert [sp.name for sp in inner.finished()] == ["deep"]
        assert outer.finished() == []

    def test_ensure_tracer_reuses_active(self):
        tracer = Tracer()
        with activate(tracer):
            with ensure_tracer() as got:
                assert got is tracer

    def test_ensure_tracer_creates_and_activates(self):
        with ensure_tracer() as tracer:
            assert current_tracer() is tracer
            with span("inside"):
                pass
        assert current_tracer() is None
        assert [sp.name for sp in tracer.finished()] == ["inside"]

    def test_activation_is_per_thread(self):
        tracer = Tracer()
        seen = []

        def other_thread():
            seen.append(current_tracer())
            with span("elsewhere") as sp:
                seen.append(sp is NOOP_SPAN)

        with activate(tracer):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert seen == [None, True]

    def test_threads_nest_independently_on_shared_tracer(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                barrier.wait(timeout=5.0)

        threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished()
        # both roots: neither thread saw the other's open span as a parent
        assert {sp.parent_id for sp in spans} == {None}
        assert {sp.span_id for sp in spans} == {1, 2}


class TestDisabledTracing:
    def test_disabled_spans_record_nothing(self):
        tracer = Tracer()
        prev = set_enabled(False)
        try:
            with tracer.span("invisible") as sp:
                assert sp is NOOP_SPAN
            assert tracer.record("also.invisible", 1.0) is NOOP_SPAN
        finally:
            set_enabled(prev)
        assert tracer.finished() == []
