"""Dependence profiler tests: RAW/WAR/WAW, carriers, privatization."""

import numpy as np

from repro.profiling import profile_run
from repro.profiling.model import RAW, WAR, WAW

from conftest import parsed


def deps_of(profile, kind=None, var=None, carrier="any"):
    out = []
    for dep, count in profile.deps.items():
        if kind is not None and dep.kind != kind:
            continue
        if var is not None and dep.var != var:
            continue
        if carrier != "any" and dep.carrier != carrier:
            continue
        out.append((dep, count))
    return out


class TestBasicDependences:
    def test_raw_within_straightline_code(self):
        prog = parsed(
            """\
int f(int n) {
    int a = n + 1;
    int b = a * 2;
    return b;
}
"""
        )
        profile, _ = profile_run(prog, "f", [3])
        raws = deps_of(profile, kind=RAW, var="a")
        assert any(d.src_line == 2 and d.dst_line == 3 for d, _ in raws)

    def test_waw_recorded(self):
        prog = parsed(
            """\
int f(int n) {
    int a = 1;
    a = 2;
    return a;
}
"""
        )
        profile, _ = profile_run(prog, "f", [0])
        assert deps_of(profile, kind=WAW, var="a")

    def test_war_recorded(self):
        prog = parsed(
            """\
int f(int n) {
    int a = 1;
    int b = a;
    a = 2;
    return a + b;
}
"""
        )
        profile, _ = profile_run(prog, "f", [0])
        wars = deps_of(profile, kind=WAR, var="a")
        assert any(d.src_line == 3 and d.dst_line == 4 for d, _ in wars)

    def test_no_false_deps_between_distinct_arrays(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = 1.0;
    }
    for (int i = 0; i < n; i++) {
        B[i] = 2.0;
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(4), np.zeros(4), 4])
        assert not deps_of(profile, var="A", kind=RAW)
        assert not profile.pairs


class TestCarriedClassification:
    def test_loop_carried_raw(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    for (int i = 1; i < n; i++) {
        A[i] = A[i - 1] + 1.0;
    }
}
"""
        )
        prog_loop = next(r for r in prog.regions.values() if r.kind == "loop")
        profile, _ = profile_run(prog, "f", [np.zeros(6), 6])
        carried = deps_of(profile, kind=RAW, var="A", carrier=prog_loop.region_id)
        assert carried

    def test_loop_independent_raw_not_carried(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
        B[i] = A[i] * 2.0;
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(6), np.zeros(6), 6])
        assert all(d.carrier is None for d, _ in deps_of(profile, var="A", kind=RAW))

    def test_outer_loop_carrier_for_cross_iteration_inner_work(self):
        prog = parsed(
            """\
void f(float A[][], int n) {
    for (int t = 0; t < 3; t++) {
        for (int i = 0; i < n; i++) {
            A[0][i] = A[0][i] + 1.0;
        }
    }
}
"""
        )
        outer = next(
            r.region_id
            for r in prog.regions.values()
            if r.kind == "loop" and r.parent == prog.function("f").region_id
        )
        profile, _ = profile_run(prog, "f", [np.zeros((1, 4)), 4])
        carried = deps_of(profile, kind=RAW, var="A", carrier=outer)
        assert carried

    def test_init_clause_write_is_not_carried(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    int i = 0;
    for (i = 0; i < n; i++) {
        s += 1;
    }
    return s;
}
"""
        )
        profile, _ = profile_run(prog, "f", [4])
        # the init write of i must not create a carried RAW from "iteration -1"
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        for dep, _ in deps_of(profile, var="i", kind=RAW, carrier=loop):
            assert dep.src_line != 4 or dep.dst_line != 4 or True  # smoke
        # more precisely: carried deps on i must originate from the step, line 4
        carried_i = deps_of(profile, var="i", carrier=loop)
        assert all(d.src_line == 4 for d, _ in carried_i)


class TestPrivatization:
    def test_written_first_scalar_is_privatizable(self):
        prog = parsed(
            """\
void f(float A[], int n) {
    for (int i = 0; i < n; i++) {
        float t = A[i] * 2.0;
        A[i] = t + 1.0;
    }
}
"""
        )
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        profile, _ = profile_run(prog, "f", [np.zeros(5), 5])
        assert (loop, "t") in profile.loop_accessed
        assert (loop, "t") not in profile.read_first

    def test_read_first_scalar_is_not_privatizable(self):
        prog = parsed(
            """\
float f(float A[], int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc += A[i];
    }
    return acc;
}
"""
        )
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        profile, _ = profile_run(prog, "f", [np.ones(5), 5])
        assert (loop, "acc") in profile.read_first


class TestCrossFunctionDeps:
    def test_reference_parameter_aliases(self):
        prog = parsed(
            """\
void add(float &acc, float v) {
    acc += v;
}
float f(float A[], int n) {
    float total = 0.0;
    for (int i = 0; i < n; i++) {
        add(total, A[i]);
    }
    return total;
}
"""
        )
        loop = next(r.region_id for r in prog.regions.values() if r.kind == "loop")
        profile, _ = profile_run(prog, "f", [np.ones(5), 5])
        carried = [d for d in profile.deps if d.carrier == loop and d.kind == RAW]
        assert any(d.var == "acc" for d in carried)
        # Algorithm 3's tables must show the accumulating line inside add()
        assert profile.loop_var_writes[(loop, "acc")] == {2}

    def test_sites_lift_callee_work_to_call_site(self):
        prog = parsed(
            """\
void produce(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
}
float consume(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) { s += A[i]; }
    return s;
}
float f(float A[], int n) {
    produce(A, n);
    return consume(A, n);
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.zeros(5), 5])
        f_region = prog.function("f").region_id
        lifted = [
            d
            for d in profile.deps
            if d.region == f_region and d.kind == RAW and d.var == "A"
        ]
        assert lifted
        # call sites are at lines 10 (produce) and 11 (consume)
        assert all((d.src_site, d.dst_site) == (10, 11) for d in lifted)


class TestCosts:
    def test_total_cost_matches_interpreter(self):
        prog = parsed(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
        )
        profile, result = profile_run(prog, "f", [10])
        assert profile.total_cost == result.total_cost

    def test_site_costs_cover_loop_body(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}
"""
        )
        profile, _ = profile_run(prog, "f", [10])
        f_region = prog.function("f").region_id
        # the for statement at line 3 carries the loop's inclusive cost
        assert profile.site_costs[(f_region, 3)] > 20
