"""End-to-end integration: a composite application exercising several
patterns at once, checked through the full public API surface."""

import numpy as np
import pytest

from repro import analyze_source, analysis_report, summarize_patterns
from repro.patterns.ranking import rank_patterns
from repro.reporting.dot import cu_graph_dot, pet_dot
from repro.runtime.replay import validate_doall
from repro.sim import plan_and_simulate

#: A miniature signal-processing app: normalize (do-all), smooth (do-all,
#: 1-1 dependent on normalize -> pipeline/fusion candidates), then two
#: independent statistics (task parallelism), each a reduction.
SOURCE = """\
float process(float raw[], float norm[], float smooth[], int n) {
    for (int i = 0; i < n; i++) {
        norm[i] = raw[i] / (fabs(raw[i]) + 1.0);
    }
    for (int j = 0; j < n; j++) {
        smooth[j] = norm[j] * 0.5 + sqrt(norm[j] * norm[j] + 1.0);
    }
    float energy = 0.0;
    for (int k = 0; k < n; k++) {
        energy += smooth[k] * smooth[k];
    }
    float peak = 0.0;
    for (int m = 0; m < n; m++) {
        peak = max(peak, smooth[m]);
    }
    return energy + peak;
}
"""


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(21)
    n = 128
    return analyze_source(
        SOURCE,
        entry="process",
        arg_sets=[[rng.random(n) - 0.5, np.zeros(n), np.zeros(n), n]],
    )


class TestComposite:
    def test_every_loop_classified(self, result):
        assert len(result.loop_classes) == 4
        kinds = sorted(lc.classification.value for lc in result.loop_classes.values())
        assert kinds.count("do-all") == 2
        assert kinds.count("reduction") == 2

    def test_fusion_found_between_the_sweeps(self, result):
        assert result.fusions, "normalize+smooth should fuse"

    def test_reduction_operators_inferred(self, result):
        ops = {
            c.operator
            for lc in result.loop_classes.values()
            for c in lc.reductions
        }
        assert {"+", "max"} <= ops

    def test_primary_label(self, result):
        assert summarize_patterns(result) == "Fusion"

    def test_ranking_offers_alternatives(self, result):
        labels = [o.label for o in rank_patterns(result)]
        assert "Fusion" in labels
        assert "Reduction" in labels

    def test_simulated_speedup_positive(self, result):
        outcome = plan_and_simulate(result)
        assert outcome.best_speedup > 2.0

    def test_report_renders_everything(self, result):
        text = analysis_report(result)
        assert "Fusion" in text or "fusion" in text
        assert "Reduction in" in text
        assert "Annotated source" in text

    def test_dot_outputs_render(self, result):
        assert pet_dot(result.profile.pet).startswith("digraph")
        region = result.program.function("process").region_id
        task = result.tasks[region]
        assert cu_graph_dot(task).startswith("digraph")

    def test_doall_claims_validated_empirically(self, result):
        rng = np.random.default_rng(21)
        n = 128
        args = [rng.random(n) - 0.5, np.zeros(n), np.zeros(n), n]
        for region, lc in result.loop_classes.items():
            if lc.is_doall:
                assert validate_doall(result.program, "process", args, region)

    def test_hotspot_shares_consistent(self, result):
        total = result.profile.total_cost
        for h in result.hotspots:
            assert 0 < h.inclusive_cost <= total
