"""Regression fit and efficiency factor (Eq. 1-2) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.regression import efficiency_factor, fit_iteration_pairs


class TestFit:
    def test_exact_line_snaps_to_integers(self):
        fit = fit_iteration_pairs([(i, i) for i in range(10)])
        assert fit.a == 1.0
        assert fit.b == 0.0
        assert fit.r2 == pytest.approx(1.0)

    def test_offset_line(self):
        fit = fit_iteration_pairs([(i, i - 3) for i in range(3, 20)])
        assert fit.a == 1.0
        assert fit.b == -3.0

    def test_fractional_slope(self):
        fit = fit_iteration_pairs([(4 * j, j) for j in range(12)])
        assert fit.a == pytest.approx(0.25)

    def test_noisy_fit_r2_below_one(self):
        rng = np.random.default_rng(0)
        pairs = [(i, i + int(rng.integers(-2, 3))) for i in range(50)]
        fit = fit_iteration_pairs(pairs)
        assert 0.9 < fit.r2 < 1.0
        assert fit.a == pytest.approx(1.0, abs=0.1)

    def test_single_pair_degenerates(self):
        fit = fit_iteration_pairs([(5, 7)])
        assert fit.a == 0.0
        assert fit.b == 7.0

    def test_zero_variance_x(self):
        fit = fit_iteration_pairs([(3, 1), (3, 5), (3, 9)])
        assert fit.a == 0.0
        assert fit.b == pytest.approx(5.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_iteration_pairs([])

    @given(
        a=st.integers(1, 5),
        b=st.integers(-5, 5),
        n=st.integers(5, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_recovers_exact_integer_lines(self, a, b, n):
        pairs = [(x, a * x + b) for x in range(n)]
        fit = fit_iteration_pairs(pairs)
        assert fit.a == pytest.approx(a)
        assert fit.b == pytest.approx(b)


class TestEfficiencyFactor:
    def test_perfect_pipeline(self):
        assert efficiency_factor(1.0, 0.0, 100, 100) == pytest.approx(1.0)

    def test_paper_reg_detect_value(self):
        # a=1, b=-1 over ~100 iterations -> e ~ 0.99 (Table IV)
        e = efficiency_factor(1.0, -1.0, 100, 100)
        assert e == pytest.approx((1 - 0.01) ** 2, abs=1e-6)
        assert 0.97 < e < 1.0

    def test_paper_fluidanimate_shape(self):
        # a=0.05 with 20x iteration ratio normalizes back to slope 1
        e = efficiency_factor(0.05, -3.5, 2000, 100)
        assert 0.9 < e < 1.0

    def test_wait_for_everything_is_zero(self):
        # all of y waits for the very end of x
        assert efficiency_factor(0.0, 0.0, 100, 100) == 0.0

    def test_positive_b_exceeds_one(self):
        # Table II: first b iterations of y depend on nothing -> e > 1
        assert efficiency_factor(1.0, 20.0, 100, 100) > 1.0

    def test_fully_negative_line_is_zero(self):
        assert efficiency_factor(0.5, -100.0, 100, 100) == 0.0

    def test_degenerate_trip_counts(self):
        assert efficiency_factor(1.0, 0.0, 0, 100) == 0.0
        assert efficiency_factor(1.0, 0.0, 100, 0) == 0.0

    @given(
        a=st.floats(0.01, 10.0, allow_nan=False),
        b=st.floats(-50.0, 50.0, allow_nan=False),
        nx=st.integers(1, 500),
        ny=st.integers(1, 500),
    )
    @settings(max_examples=150, deadline=None)
    def test_nonnegative_and_finite(self, a, b, nx, ny):
        e = efficiency_factor(a, b, nx, ny)
        assert e >= 0.0
        assert np.isfinite(e)

    @given(
        b=st.floats(-20.0, -0.1, allow_nan=False),
        nx=st.integers(10, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_negative_b_reduces_efficiency(self, b, nx):
        base = efficiency_factor(1.0, 0.0, nx, nx)
        shifted = efficiency_factor(1.0, b, nx, nx)
        assert shifted <= base + 1e-12

    @given(nx=st.integers(2, 400))
    @settings(max_examples=60, deadline=None)
    def test_normalization_is_scale_free(self, nx):
        # a perfect pipeline is perfect at any size
        assert efficiency_factor(1.0, 0.0, nx, nx) == pytest.approx(1.0)
        # and a 4:1 slope with matching trip counts is also perfect
        assert efficiency_factor(0.25, 0.0, 4 * nx, nx) == pytest.approx(1.0)
