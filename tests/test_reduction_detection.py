"""Algorithm 3 tests: dynamic reduction detection + operator inference."""

import numpy as np

from repro.patterns.reduction import detect_reductions, infer_operator
from repro.profiling import profile_run

from conftest import parsed


def reductions_of(src, entry, args, which=0):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    loops = [r.region_id for r in prog.regions.values() if r.kind == "loop"]
    return prog, detect_reductions(prog, profile, loops[which])


class TestDetection:
    def test_sum_local(self):
        _, cands = reductions_of(
            """\
int sum_local(int arr[], int size) {
    int sum = 0;
    for (int i = 0; i < size; i++) {
        sum += arr[i];
    }
    return sum;
}
""",
            "sum_local",
            [np.arange(10, dtype=np.int64), 10],
        )
        assert len(cands) == 1
        assert cands[0].var == "sum"
        assert cands[0].line == 4
        assert cands[0].operator == "+"

    def test_sum_module_cross_function(self):
        _, cands = reductions_of(
            """\
void add(int &sum, int v) {
    sum += v * v;
}
int f(int arr[], int size) {
    int sum = 0;
    for (int i = 0; i < size; i++) {
        add(sum, arr[i]);
    }
    return sum;
}
""",
            "f",
            [np.arange(10, dtype=np.int64), 10],
        )
        assert len(cands) == 1
        assert cands[0].var == "sum"
        assert cands[0].line == 2  # the accumulating line inside add()

    def test_two_variables_reported(self):
        _, cands = reductions_of(
            """\
float f(float A[], int n) {
    float s = 0.0;
    float m = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
        m += A[i] * A[i];
    }
    return s + m;
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert {c.var for c in cands} == {"m", "s"}

    def test_array_accumulation_across_outer_loop(self):
        # bicg's s[j]: carried RAW + WAW in the outer loop at one line
        prog = parsed(
            """\
void f(float A[][], float s[], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s[j] = s[j] + A[i][j];
        }
    }
}
"""
        )
        profile, _ = profile_run(prog, "f", [np.ones((6, 6)), np.zeros(6), 6])
        outer = min(r.region_id for r in prog.regions.values() if r.kind == "loop")
        cands = detect_reductions(prog, profile, outer)
        assert [c.var for c in cands] == ["s"]


class TestRejections:
    def test_recurrence_rejected(self):
        # path[i] = path[i-1] + ... is a carried RAW at one line but NOT a
        # reduction (no carried WAW: each cell written once)
        _, cands = reductions_of(
            "void f(float P[], int n) { for (int i = 1; i < n; i++) { P[i] = P[i - 1] + 1.0; } }",
            "f",
            [np.zeros(10), 10],
        )
        assert cands == []

    def test_multiple_write_lines_rejected(self):
        _, cands = reductions_of(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
        s = s * 0.99;
    }
    return s;
}
""",
            "f",
            [np.ones(8), 8],
        )
        assert cands == []

    def test_read_at_other_line_rejected(self):
        _, cands = reductions_of(
            """\
float f(float A[], float B[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
        B[i] = s;
    }
    return s;
}
""",
            "f",
            [np.ones(8), np.zeros(8), 8],
        )
        assert cands == []

    def test_induction_variable_not_a_reduction(self):
        _, cands = reductions_of(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += 1; } return s; }",
            "f",
            [8],
        )
        assert [c.var for c in cands] == ["s"]  # i excluded, s kept

    def test_doall_loop_has_no_candidates(self):
        _, cands = reductions_of(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = i * 1.0; } }",
            "f",
            [np.zeros(8), 8],
        )
        assert cands == []


class TestOperatorInference:
    def infer(self, body_line, var="s"):
        src = f"""\
float f(float A[], int n) {{
    float s = 0.0;
    for (int i = 0; i < n; i++) {{
        {body_line}
    }}
    return s;
}}
"""
        prog = parsed(src)
        return infer_operator(prog, 4, var)

    def test_plus_equals(self):
        assert self.infer("s += A[i];") == "+"

    def test_times_equals(self):
        assert self.infer("s *= A[i];") == "*"

    def test_explicit_plus(self):
        assert self.infer("s = s + A[i];") == "+"

    def test_commuted_plus(self):
        assert self.infer("s = A[i] + s;") == "+"

    def test_min_call(self):
        assert self.infer("s = min(s, A[i]);") == "min"

    def test_max_call(self):
        assert self.infer("s = max(s, A[i]);") == "max"

    def test_non_associative_shape_unknown(self):
        assert self.infer("s = A[i] - s;") is None

    def test_var_on_both_sides_unknown(self):
        assert self.infer("s = s + s * A[i];") is None

    def test_unrelated_line_unknown(self):
        prog = parsed("void f() { int x = 0; }")
        assert infer_operator(prog, 99, "x") is None
