"""Metamorphic invariants of the learned baseline.

The corpus transforms are semantics-preserving relabelings of the same
computation: *rename* is alpha-conversion, *dead-statement insertion*
adds write-only locals no live statement ever reads.  A feature vector
that moved under either would be learning names or noise, so the suite
pins byte-equality of the extracted features — and therefore of every
learned prediction — across each transform, every template (base and
adversarial), multiple seeds, and both profiling engines.

This is the test-side half of the live-view contract documented in
:mod:`repro.learn.features`: dead dependences are dropped, dead line
costs are subtracted from every *dynamically* enclosing region, dead CUs
are excluded, and no feature mentions a line number or identifier.
"""

import random

import pytest

from repro.corpus.templates import ADVERSARIAL_TEMPLATES, TEMPLATES
from repro.corpus.transforms import insert_dead_statements, rename_identifiers
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.learn import extract_features, train_model
from repro.profiling.cache import cached_profile_runs
from repro.service.jobs import build_call_args

ALL_TEMPLATES = TEMPLATES + ADVERSARIAL_TEMPLATES

TRANSFORMS = {
    "rename": rename_identifiers,
    "dead-statements": insert_dead_statements,
}


def _features(source: str, entry: str, arg_specs, engine: str = "compiled"):
    program = parse_program(source)
    validate_program(program)
    args = build_call_args(arg_specs, seed=0)
    profile, _ = cached_profile_runs(
        program, entry, [args], cache=None, engine=engine
    )
    return extract_features(program, profile)


def _template_case(template, seed: int):
    tp = template(random.Random(f"meta:{seed}"))
    base = _features(tp.source, tp.entry, tp.arg_specs)
    return tp, base


@pytest.mark.parametrize("template", ALL_TEMPLATES,
                         ids=lambda t: t.__name__)
@pytest.mark.parametrize("seed", range(2))
@pytest.mark.parametrize("transform", sorted(TRANSFORMS))
def test_features_invariant_under_transform(template, seed, transform):
    tp, base = _template_case(template, seed)
    transformed = TRANSFORMS[transform](tp.source, random.Random(seed))
    if transformed == tp.source:  # transform found nothing to do
        pytest.skip("transform was the identity on this program")
    other = _features(transformed, tp.entry, tp.arg_specs)
    diffs = {k: (base[k], other[k]) for k in base if base[k] != other[k]}
    assert not diffs


@pytest.mark.parametrize("template", ALL_TEMPLATES,
                         ids=lambda t: t.__name__)
def test_features_invariant_across_engines(template):
    tp, base = _template_case(template, 0)
    tree = _features(tp.source, tp.entry, tp.arg_specs, engine="tree")
    assert tree == base


def test_predictions_invariant_under_all_transforms():
    # train one model per kind on the untransformed features, then demand
    # identical verdicts for every transformed variant: equality of the
    # vectors makes this a corollary, but the check goes through the real
    # predict path so a future feature/model skew cannot hide
    rows = []
    cases = []
    for index, template in enumerate(ALL_TEMPLATES):
        tp, base = _template_case(template, 1)
        rows.append(
            {"name": f"p{index}", "features": base, "truth": tp.truth}
        )
        cases.append((tp, base))
    for kind in ("logistic", "tree"):
        model = train_model(rows, kind=kind, seed=3, trained_on={})
        for tp, base in cases:
            expected = model.predict(base)
            for name, transform in sorted(TRANSFORMS.items()):
                variant = transform(tp.source, random.Random(5))
                feats = _features(variant, tp.entry, tp.arg_specs)
                assert model.predict(feats) == expected, (
                    f"{kind} verdict moved under {name} for {tp.template}"
                )
