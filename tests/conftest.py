"""Shared helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import parse_program
from repro.lang.validate import validate_program
from repro.patterns.engine import analyze
from repro.profiling import profile_run
from repro.runtime import run_program


def parsed(source: str):
    """Parse + validate a MiniC source string."""
    program = parse_program(source)
    validate_program(program)
    return program


@pytest.fixture
def reduction_program():
    return parsed(
        """\
float total(float A[], int n) {
    float sum = 0.0;
    for (int i = 0; i < n; i++) {
        sum += A[i];
    }
    return sum;
}
"""
    )


@pytest.fixture
def fib_program():
    return parsed(
        """\
int fib(int n) {
    if (n < 2) {
        return n;
    }
    int x = fib(n - 1);
    int y = fib(n - 2);
    return x + y;
}
"""
    )


@pytest.fixture
def pipeline_program():
    """Two dependent loops: stage 1 do-all, stage 2 sequential (reg_detect)."""
    return parsed(
        """\
void kernel(float mean[], float path[], int n) {
    for (int i = 0; i < n; i++) {
        mean[i] = mean[i] * 0.5 + i;
    }
    for (int j = 1; j < n; j++) {
        path[j] = path[j - 1] + mean[j];
    }
}
"""
    )


def run(program, entry, args):
    return run_program(program, entry, args)


def profiled(program, entry, args):
    return profile_run(program, entry, args)


def analyzed(program, entry, args, **kw):
    return analyze(program, entry, [args], **kw)


__all__ = ["parsed", "run", "profiled", "analyzed", "np"]
