"""Static analysis helper tests (repro.lang.analysis)."""

from repro.lang.analysis import (
    array_names,
    called_functions,
    expr_reads,
    function_loops,
    is_recursive,
    loop_nests,
    max_loop_depth,
    source_loc,
    stmt_calls,
    stmt_declares,
    stmt_lines,
    stmt_reads,
    stmt_writes,
    top_level_loops,
)
from repro.lang.parser import parse_program

SRC = """\
int g;
float GA[4];

int helper(int v) {
    return v * 2;
}

int deep(int v) {
    return helper(v) + 1;
}

void work(float A[], int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        float t = A[i];
        if (t > 0.0) {
            acc += helper(i);
        }
        for (int j = 0; j < 2; j++) {
            A[i] = A[i] + j;
        }
    }
    g = acc;
}
"""


def prog():
    return parse_program(SRC)


class TestReadsWrites:
    def test_stmt_reads_recursive(self):
        p = prog()
        loop = p.function("work").body[1]
        reads = stmt_reads(loop)
        assert {"A", "n", "i", "t", "j", "acc"} <= reads

    def test_stmt_writes_recursive(self):
        p = prog()
        loop = p.function("work").body[1]
        assert {"acc", "t", "A", "i", "j"} <= stmt_writes(loop)

    def test_compound_assign_reads_target(self):
        p = parse_program("void f(int x) { x += 1; }")
        stmt = p.function("f").body[0]
        assert "x" in stmt_reads(stmt)

    def test_non_recursive_scope(self):
        p = prog()
        loop = p.function("work").body[1]
        assert stmt_writes(loop, recursive=False) == set()

    def test_expr_reads_arrays_by_base_name(self):
        p = parse_program("float f(float A[][]) { return A[1][2]; }")
        stmt = p.function("f").body[0]
        assert expr_reads(stmt.value) == {"A"}


class TestStructure:
    def test_function_loops_in_order(self):
        loops = function_loops(prog().function("work"))
        assert len(loops) == 2
        assert loops[0].line < loops[1].line

    def test_top_level_loops_skips_nested(self):
        tl = top_level_loops(prog().function("work").body)
        assert len(tl) == 1

    def test_loop_nests_depth(self):
        nests = loop_nests(prog().function("work").body)
        assert len(nests) == 1
        assert nests[0].depth == 0
        assert nests[0].inner[0].depth == 1
        assert len(nests[0].flat()) == 2

    def test_max_loop_depth(self):
        assert max_loop_depth(prog().function("work")) == 2
        assert max_loop_depth(prog().function("helper")) == 0

    def test_stmt_lines_cover_nested(self):
        loop = prog().function("work").body[1]
        lines = stmt_lines(loop)
        assert {14, 15, 16, 17, 19, 20} <= lines

    def test_stmt_declares(self):
        loop = prog().function("work").body[1]
        assert {"i", "t", "j"} <= stmt_declares(loop)


class TestCallGraph:
    def test_stmt_calls(self):
        loop = prog().function("work").body[1]
        assert [c.name for c in stmt_calls(loop)] == ["helper"]

    def test_called_functions_direct_only(self):
        p = prog()
        names = [f.name for f in called_functions(p.function("deep"), p)]
        assert names == ["helper"]

    def test_is_recursive_direct(self):
        p = parse_program("int f(int n) { if (n < 1) { return 0; } return f(n - 1); }")
        assert is_recursive(p.function("f"), p)

    def test_is_recursive_mutual(self):
        p = parse_program(
            "int a(int n) { return b(n); }\nint b(int n) { return a(n); }"
        )
        assert is_recursive(p.function("a"), p)
        assert is_recursive(p.function("b"), p)

    def test_not_recursive(self):
        p = prog()
        assert not is_recursive(p.function("work"), p)


class TestMisc:
    def test_array_names(self):
        names = array_names(prog())
        assert names == {"GA", "A"}

    def test_source_loc_ignores_comments_and_blanks(self):
        src = "// header\n\nint f() {\n  /* block\n     comment */\n  return 1;\n}\n"
        assert source_loc(src) == 3  # signature, return, closing brace

    def test_source_loc_inline_block_comment(self):
        assert source_loc("/* x */ int g;\n") == 1
