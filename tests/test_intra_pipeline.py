"""Intra-loop pipeline detection tests (DSWP-style extension)."""

import numpy as np
import pytest

from repro.patterns.intra_pipeline import detect_intra_loop_pipeline
from repro.profiling import profile_run

from conftest import parsed


def detect(src, entry, args, which=0):
    prog = parsed(src)
    profile, _ = profile_run(prog, entry, args)
    loops = [r.region_id for r in prog.regions.values() if r.kind == "loop"]
    return detect_intra_loop_pipeline(prog, profile, loops[which])


class TestDetection:
    def test_two_stage_sequential_loop(self):
        # stage 1: sequential accumulation into state; stage 2: heavy output
        pipe = detect(
            """\
void f(float A[], float B[], float &acc, int n) {
    for (int i = 0; i < n; i++) {
        acc = acc * 0.9 + A[i];
        B[i] = acc * acc + sqrt(acc * acc + 1.0);
    }
}
""",
            "f",
            [np.ones(20), np.zeros(20), 0.0, 20],
        )
        assert pipe is not None
        assert pipe.n_stages == 2
        assert pipe.estimated_speedup > 1.2

    def test_stage_order_respects_dataflow(self):
        pipe = detect(
            """\
void f(float A[], float B[], float C[], float &s, int n) {
    for (int i = 0; i < n; i++) {
        s = s + A[i];
        B[i] = s * 2.0;
        C[i] = B[i] + sqrt(B[i] + 1.0);
    }
}
""",
            "f",
            [np.ones(16), np.zeros(16), np.zeros(16), 0.0, 16],
        )
        assert pipe is not None
        assert pipe.n_stages >= 2
        # the accumulator stage comes first
        first_stage_cus = {pipe.cus[c].writes and c for c in pipe.stages[0]}
        assert first_stage_cus

    def test_backward_carried_dependence_rejected(self):
        # the late stage writes state the early stage reads next iteration
        pipe = detect(
            """\
void f(float A[], float B[], float &s, float &t, int n) {
    for (int i = 0; i < n; i++) {
        s = s + A[i] * t;
        t = s * 0.5 + B[i];
    }
}
""",
            "f",
            [np.ones(16), np.ones(16), 0.0, 1.0, 16],
        )
        assert pipe is None

    def test_single_cu_body_rejected(self):
        pipe = detect(
            "void f(float A[], int n) { for (int i = 1; i < n; i++) { A[i] = A[i-1] + 1.0; } }",
            "f",
            [np.zeros(16), 16],
        )
        assert pipe is None

    def test_dominant_stage_rejected(self):
        # 99% of the work in one stage: nothing to pipeline
        pipe = detect(
            """\
void f(float A[], float B[], float &s, int n) {
    for (int i = 0; i < n; i++) {
        s = s + 1.0;
        float acc = 0.0;
        for (int k = 0; k < 50; k++) {
            acc += A[i] * k + sqrt(A[i] + k + 1.0);
        }
        B[i] = acc + s;
    }
}
""",
            "f",
            [np.ones(12), np.zeros(12), 0.0, 12],
        )
        assert pipe is None

    def test_non_loop_region_rejected(self):
        prog = parsed("int f() { return 1; }")
        profile, _ = profile_run(prog, "f", [])
        assert detect_intra_loop_pipeline(prog, profile, prog.function("f").region_id) is None

    def test_forward_carried_dependence_tolerated(self):
        # stage 1 writes A[i] read by stage 2 at i-1 next iteration: forward
        pipe = detect(
            """\
void f(float A[], float B[], float &s, int n) {
    for (int i = 1; i < n; i++) {
        s = s * 0.5 + i;
        B[i] = s + B[i - 1] * 0.25 + sqrt(s + 1.0);
    }
}
""",
            "f",
            [np.zeros(16), np.zeros(16), 0.0, 16],
        )
        # B's recurrence stays within the late stage: still a pipeline
        assert pipe is not None
