"""Content-addressed profile cache: keying, invalidation, recovery."""

import json

import numpy as np
import pytest

from repro.api import compile_source
from repro.profiling import (
    canonical_profile_json,
    profile_digest,
    profile_runs,
)
from repro.profiling.cache import (
    ProfileCache,
    cached_profile_runs,
    profile_cache_key,
)

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""

SRC_VARIANT = SRC.replace("s += A[i];", "s += A[i] * 2.0;")


@pytest.fixture
def program():
    return compile_source(SRC)


@pytest.fixture
def args():
    return [[np.ones(16), 16]]


@pytest.fixture
def cache(tmp_path):
    return ProfileCache(root=tmp_path / "profiles")


class TestCacheKey:
    def test_identical_inputs_identical_key(self, args):
        k1 = profile_cache_key(SRC, "total", args)
        k2 = profile_cache_key(SRC, "total", [[np.ones(16), 16]])
        assert k1 == k2

    def test_changed_source_changes_key(self, args):
        assert profile_cache_key(SRC, "total", args) != profile_cache_key(
            SRC_VARIANT, "total", args
        )

    def test_changed_input_changes_key(self):
        base = profile_cache_key(SRC, "total", [[np.ones(16), 16]])
        assert base != profile_cache_key(SRC, "total", [[np.zeros(16), 16]])
        assert base != profile_cache_key(SRC, "total", [[np.ones(17), 17]])
        assert base != profile_cache_key(SRC, "total", [[np.ones(16), 15]])

    def test_changed_config_changes_key(self, args):
        base = profile_cache_key(SRC, "total", args)
        assert base != profile_cache_key(SRC, "total", args, record_calltree=False)
        assert base != profile_cache_key(SRC, "total", args, max_cost=1_000)

    def test_int_float_args_distinct(self):
        assert profile_cache_key(SRC, "total", [[1]]) != profile_cache_key(
            SRC, "total", [[1.0]]
        )


class TestCachedRuns:
    def test_miss_then_hit(self, program, args, cache):
        p1, hit1 = cached_profile_runs(program, "total", args, cache=cache)
        p2, hit2 = cached_profile_runs(program, "total", args, cache=cache)
        assert (hit1, hit2) == (False, True)
        assert cache.stats.stores == 1 and cache.stats.hits == 1
        assert profile_digest(p1) == profile_digest(p2)

    def test_hit_performs_zero_reinterpretation(self, program, args, cache, monkeypatch):
        cached_profile_runs(program, "total", args, cache=cache)

        def _fail(*_a, **_k):  # pragma: no cover - would mean a cache miss
            raise AssertionError("interpreter ran despite a warm cache")

        monkeypatch.setattr("repro.profiling.cache.profile_runs", _fail)
        profile, hit = cached_profile_runs(program, "total", args, cache=cache)
        assert hit and profile.total_cost > 0

    def test_changed_input_misses(self, program, cache):
        _, hit1 = cached_profile_runs(program, "total", [[np.ones(16), 16]], cache=cache)
        _, hit2 = cached_profile_runs(program, "total", [[np.ones(8), 8]], cache=cache)
        assert not hit1 and not hit2
        assert cache.stats.stores == 2

    def test_changed_config_misses(self, program, args, cache):
        cached_profile_runs(program, "total", args, cache=cache)
        _, hit = cached_profile_runs(
            program, "total", args, record_calltree=False, cache=cache
        )
        assert not hit

    def test_cached_profile_drives_same_detection(self, program, args, cache):
        from repro.patterns.engine import analyze_profile, summarize_patterns

        fresh = profile_runs(program, "total", args)
        cached_profile_runs(program, "total", args, cache=cache)
        warm, hit = cached_profile_runs(program, "total", args, cache=cache)
        assert hit
        assert summarize_patterns(analyze_profile(program, warm)) == summarize_patterns(
            analyze_profile(program, fresh)
        )


class TestCorruption:
    def test_corrupted_entry_is_evicted_and_recomputed(self, program, args, cache):
        _, _ = cached_profile_runs(program, "total", args, cache=cache)
        key = profile_cache_key(program.source, "total", args)
        path = cache.path_for(key)
        path.write_text("{ truncated garbage")

        assert cache.load(key) is None
        assert not path.exists()
        assert cache.stats.evictions == 1

        profile, hit = cached_profile_runs(program, "total", args, cache=cache)
        assert not hit and profile.total_cost > 0
        assert path.exists()

    def test_valid_json_wrong_schema_is_evicted(self, program, args, cache):
        cached_profile_runs(program, "total", args, cache=cache)
        key = profile_cache_key(program.source, "total", args)
        cache.path_for(key).write_text(json.dumps({"version": 999}))
        assert cache.load(key) is None
        assert cache.stats.evictions == 1

    def test_missing_entry_is_plain_miss(self, cache):
        assert cache.load("0" * 64) is None
        assert cache.stats.misses == 1 and cache.stats.evictions == 0


class TestFailurePaths:
    """Cache trouble must never forfeit a computed profile."""

    def test_unwritable_root_still_returns_profile(self, program, args, tmp_path):
        # the root sits under a regular *file*, so every mkdir/write fails
        # with a real OSError — works even when the suite runs as root,
        # unlike permission-bit tricks
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ProfileCache(root=blocker / "cache")
        profile, hit = cached_profile_runs(program, "total", args, cache=cache)
        assert not hit and profile.total_cost > 0
        assert cache.stats.store_errors == 1
        assert cache.stats.stores == 0

    def test_unwritable_root_recomputes_every_call(self, program, args, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ProfileCache(root=blocker / "cache")
        p1, _ = cached_profile_runs(program, "total", args, cache=cache)
        p2, hit = cached_profile_runs(program, "total", args, cache=cache)
        assert not hit
        assert cache.stats.store_errors == 2
        assert profile_digest(p1) == profile_digest(p2)

    def test_unreadable_entry_counts_read_error_not_cold_miss(self, cache):
        key = "ab" + "0" * 62
        # a directory where the entry file should be: read_text raises
        # IsADirectoryError (an OSError that is not FileNotFoundError)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.mkdir()
        assert cache.load(key) is None
        assert cache.stats.read_errors == 1
        assert cache.stats.misses == 1  # still a miss: caller recomputes
        assert cache.stats.evictions == 0

    def test_cold_miss_does_not_count_read_error(self, cache):
        assert cache.load("0" * 64) is None
        assert cache.stats.misses == 1 and cache.stats.read_errors == 0

    def test_store_error_does_not_mask_later_success(self, program, args, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        broken = ProfileCache(root=blocker / "cache")
        cached_profile_runs(program, "total", args, cache=broken)
        healthy = ProfileCache(root=tmp_path / "profiles")
        _, hit1 = cached_profile_runs(program, "total", args, cache=healthy)
        _, hit2 = cached_profile_runs(program, "total", args, cache=healthy)
        assert (hit1, hit2) == (False, True)
        assert healthy.stats.store_errors == 0


class TestDeterminism:
    def test_repeated_runs_byte_identical(self, program, args):
        a = canonical_profile_json(profile_runs(program, "total", args))
        b = canonical_profile_json(profile_runs(program, "total", args))
        assert a == b

    def test_round_trip_byte_identical(self, program, args):
        from repro.profiling import profile_from_dict

        text = canonical_profile_json(profile_runs(program, "total", args))
        rebuilt = profile_from_dict(json.loads(text))
        assert canonical_profile_json(rebuilt) == text

    def test_digest_matches_stored_bytes(self, program, args, cache):
        profile, _ = cached_profile_runs(program, "total", args, cache=cache)
        key = profile_cache_key(program.source, "total", args)
        stored = cache.path_for(key).read_text()
        assert stored == canonical_profile_json(profile)


class TestStatsConcurrency:
    """CacheStats.bump is the only mutation path and must be atomic."""

    def test_concurrent_bumps_lose_no_increments(self):
        import threading

        from repro.profiling.cache import CacheStats

        stats = CacheStats()
        threads_per_counter = 4
        bumps_each = 500

        def hammer(counter):
            for _ in range(bumps_each):
                stats.bump(counter)

        threads = [
            threading.Thread(target=hammer, args=(counter,))
            for counter in ("hits", "misses", "stores")
            for _ in range(threads_per_counter)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = threads_per_counter * bumps_each
        snap = stats.as_dict()
        assert snap["hits"] == expected
        assert snap["misses"] == expected
        assert snap["stores"] == expected

    def test_bump_rejects_unknown_counter(self):
        from repro.profiling.cache import CacheStats

        with pytest.raises(ValueError, match="unknown cache counter"):
            CacheStats().bump("wins")

    def test_stats_survive_pickling_without_the_lock(self):
        # workers ship stats across process boundaries; the lock must be
        # dropped on the way out and recreated on the way in
        import pickle

        from repro.profiling.cache import CacheStats

        stats = CacheStats()
        stats.bump("hits", 3)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.hits == 3
        clone.bump("hits")  # the recreated lock works
        assert clone.hits == 4

    def test_merge_accumulates_a_snapshot(self):
        from repro.profiling.cache import CacheStats

        a, b = CacheStats(), CacheStats()
        a.bump("hits", 2)
        b.bump("hits", 5)
        b.bump("read_errors")
        a.merge(b)
        assert a.hits == 7 and a.read_errors == 1
