"""Wavefront / skewed-pipeline detection: real subjects + corpus truth.

fdtd-2d and reg_detect are the real positives (the carried and skewed
shapes respectively), ludcmp the plain-pipeline negative; the generated
wavefront templates then validate the detector against constructed ground
truth across seeds.  Table III safety — the wavefront stage never touches
the primary label — is asserted on every subject.
"""

import random

import pytest

from repro.bench_programs.registry import analyze_benchmark
from repro.corpus.score import analyze_entry, predicted_patterns
from repro.corpus.suite import CorpusEntry
from repro.corpus.templates import t_doall, t_wavefront_carried, t_wavefront_skewed
from repro.patterns.engine import summarize_patterns
from repro.patterns.schema import analysis_from_dict, analysis_to_dict
from repro.patterns.wavefront import MIN_WAVEFRONT_R2, common_carrier


def _entry_for(tp):
    """Wrap a TemplateProgram as the CorpusEntry analyze_entry expects."""
    from repro.corpus.labels import source_digest

    return CorpusEntry(
        name=f"test-{tp.template}",
        template=tp.template,
        source=tp.source,
        entry=tp.entry,
        arg_specs=tuple(tp.arg_specs),
        truth=tp.truth,
        transforms=tuple(tp.transforms),
        source_digest=source_digest(tp.source),
    )


class TestRealSubjects:
    def test_fdtd2d_accepts_carried_wavefronts(self):
        result = analyze_benchmark("fdtd-2d")
        carried = [w for w in result.wavefronts if w.direction == "backward"]
        assert carried, "fdtd-2d's time-carried field coupling must be found"
        # every carried wavefront names its carrier loop and fits tightly
        for w in carried:
            assert w.carrier is not None
            assert w.is_carried
            assert w.a > 0
            assert w.r2 >= MIN_WAVEFRONT_R2
        # the hz(t-1) -> ey(t)/ex(t) couplings share the time loop carrier
        assert len({w.carrier for w in carried}) == 1

    def test_reg_detect_accepts_skewed_forward(self):
        result = analyze_benchmark("reg_detect")
        skewed = [w for w in result.wavefronts if w.direction == "forward"]
        assert skewed, "reg_detect's a=1, b=-1 skew must be found"
        for w in skewed:
            assert w.carrier is None
            assert not w.is_carried
            assert w.a == pytest.approx(1.0)
            assert w.b < 0

    def test_ludcmp_plain_pipeline_rejected(self):
        # ludcmp's forward dependence fits a=1, b=0: a plain pipeline, not
        # a skewed one — the no-skew-offset gate must reject it
        result = analyze_benchmark("ludcmp")
        assert result.wavefronts == []
        rejections = [
            ev for ev in result.trace.for_detector("wavefronts")
            if not ev.accepted
        ]
        assert any(ev.reason == "no-skew-offset" for ev in rejections)

    def test_primary_labels_unchanged_by_wavefront_stage(self):
        # Table III safety: wavefronts ride along, the label never moves
        from repro.bench_programs.registry import get_benchmark

        for name in ("fdtd-2d", "reg_detect", "ludcmp"):
            result = analyze_benchmark(name)
            assert summarize_patterns(result) == get_benchmark(name).expected_label


class TestEvidence:
    def test_accepted_evidence_names_the_deciding_threshold(self):
        result = analyze_benchmark("fdtd-2d")
        accepted = [
            ev for ev in result.trace.for_detector("wavefronts") if ev.accepted
        ]
        assert accepted
        for ev in accepted:
            assert ev.kind == "wavefront"
            assert ev.threshold == "MIN_WAVEFRONT_R2"
            assert ev.threshold_value == MIN_WAVEFRONT_R2
            assert ev.observed is not None and ev.observed >= MIN_WAVEFRONT_R2
            assert ev.reason in (
                "carried-affine-dependence", "skewed-forward-dependence"
            )

    def test_stage_counters_balance(self):
        result = analyze_benchmark("fdtd-2d")
        stage = result.trace.stage("wavefronts")
        assert stage is not None
        counters = stage.counters
        assert counters["accepted"] == len(result.wavefronts)
        assert counters["accepted"] + counters["rejected"] == counters["candidates"]


class TestSchema:
    def test_wavefronts_round_trip(self):
        result = analyze_benchmark("fdtd-2d")
        doc = analysis_to_dict(result)
        assert "wavefronts" in doc
        restored = analysis_from_dict(doc)
        assert len(restored.wavefronts) == len(result.wavefronts)
        for original, loaded in zip(result.wavefronts, restored.wavefronts):
            assert (loaded.loop_x, loaded.loop_y) == (original.loop_x, original.loop_y)
            assert loaded.carrier == original.carrier
            assert loaded.direction == original.direction
            assert loaded.a == original.a and loaded.b == original.b
            assert loaded.r2 == original.r2

    def test_key_is_a_tolerated_extension(self):
        # absent on wavefront-free programs, and old documents without the
        # key load with an empty list — the trace.spans convention
        result = analyze_benchmark("gesummv")
        doc = analysis_to_dict(result)
        assert "wavefronts" not in doc
        assert analysis_from_dict(doc).wavefronts == []


class TestCorpusTemplates:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_carried_template_detected(self, seed):
        tp = t_wavefront_carried(random.Random(f"wf:{seed}"))
        result = analyze_entry(_entry_for(tp))
        assert any(w.direction == "backward" for w in result.wavefronts)
        assert predicted_patterns(result)["wavefront"] is True

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_skewed_template_detected(self, seed):
        tp = t_wavefront_skewed(random.Random(f"wf:{seed}"))
        result = analyze_entry(_entry_for(tp))
        skewed = [w for w in result.wavefronts if w.direction == "forward"]
        assert skewed and all(w.b < 0 for w in skewed)

    def test_doall_template_has_no_wavefronts(self):
        tp = t_doall(random.Random("wf:neg"))
        result = analyze_entry(_entry_for(tp))
        assert result.wavefronts == []
        assert predicted_patterns(result)["wavefront"] is False


class TestCarrierHelper:
    def test_common_carrier_finds_innermost_shared_loop(self):
        from repro.lang.parser import parse_program
        from repro.lang.validate import validate_program

        program = parse_program(
            """\
void k(float A[], float B[], int n, int t) {
    for (int s = 0; s < t; s++) {
        for (int i = 0; i < n; i++) {
            A[i] = A[i] + 1.0;
        }
        for (int j = 0; j < n; j++) {
            B[j] = A[j] * 2.0;
        }
    }
}
"""
        )
        validate_program(program)
        loops = sorted(
            (r.line, rid)
            for rid, r in program.regions.items()
            if r.kind == "loop"
        )
        outer, inner_i, inner_j = [rid for _, rid in loops]
        assert common_carrier(program, inner_i, inner_j) == outer
        # the outer loop itself shares no enclosing loop with its children
        assert common_carrier(program, outer, outer) is None
