"""CLI perf surface: bench --smoke and the cached detect path."""

from repro.cli import main

SRC = """\
float total(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""


class TestBenchSmoke:
    def test_smoke_passes_and_exercises_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "smoke-cache")
        assert main(["bench", "--smoke", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 store(s), 1 hit(s)" in out
        assert "OK: cache exercised" in out

    def test_smoke_warm_cache_dir_hits_twice(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "smoke-cache")
        assert main(["bench", "--smoke", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # second invocation: both runs hit the pre-existing entry
        code = main(["bench", "--smoke", "--cache-dir", cache_dir])
        captured = capsys.readouterr()
        assert code == 1  # cold run hit the cache -> assertion trips, honestly
        assert "cold run unexpectedly hit the cache" in captured.err

    def test_bench_requires_name_or_smoke(self, capsys):
        assert main(["bench"]) == 2


class TestDetectCached:
    def test_detect_without_profile_uses_cache(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        cache_dir = str(tmp_path / "cache")
        argv = [
            "detect", str(path), "--entry", "total",
            "--rand", "A:32", "--scalar", "32",
            "--cache-dir", cache_dir, "--no-source",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "instrumented run" in first
        assert "Reduction" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "Reduction" in second

    def test_detect_without_entry_or_profile_errors(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        assert main(["detect", str(path)]) == 2

    def test_profile_command_populates_cache(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        cache_dir = str(tmp_path / "cache")
        out_file = tmp_path / "p.json"
        argv = [
            "profile", str(path), "--entry", "total",
            "--rand", "A:32", "--scalar", "32",
            "-o", str(out_file), "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        assert "instrumented run" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out
        assert out_file.exists()

    def test_no_cache_flag_always_reinterprets(self, tmp_path, capsys):
        path = tmp_path / "total.minic"
        path.write_text(SRC)
        out_file = tmp_path / "p.json"
        argv = [
            "profile", str(path), "--entry", "total",
            "--rand", "A:32", "--scalar", "32",
            "-o", str(out_file), "--no-cache",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hit" not in out
