"""Loop-fusion rewrite and annotation tests."""

import numpy as np
import pytest

from repro.patterns.engine import analyze
from repro.runtime import run_program
from repro.transform import FusionError, annotate, annotated_source, fuse_loops

from conftest import parsed

FUSABLE = """\
void f(float A[], float B[], float C[], int n) {
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
    for (int j = 0; j < n; j++) {
        C[j] = B[j] + 1.0;
    }
}
"""


def loops_of(prog, func="f"):
    return [r.region_id for r in prog.regions.values() if r.kind == "loop"]


class TestFuseLoops:
    def test_fused_program_structure(self):
        prog = parsed(FUSABLE)
        lx, ly = loops_of(prog)
        fused = fuse_loops(prog, lx, ly)
        remaining = [r for r in fused.regions.values() if r.kind == "loop"]
        assert len(remaining) == 1

    def test_semantics_preserved(self):
        prog = parsed(FUSABLE)
        lx, ly = loops_of(prog)
        fused = fuse_loops(prog, lx, ly)
        a = np.arange(10.0)
        r1 = run_program(prog, "f", [a, np.zeros(10), np.zeros(10), 10])
        r2 = run_program(fused, "f", [a, np.zeros(10), np.zeros(10), 10])
        assert np.allclose(r1.arrays["C"], r2.arrays["C"])
        assert np.allclose(r1.arrays["B"], r2.arrays["B"])

    def test_induction_variable_renamed(self):
        prog = parsed(FUSABLE)
        lx, ly = loops_of(prog)
        fused = fuse_loops(prog, lx, ly)
        assert "j" not in fused.source

    def test_same_induction_name_ok(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int i = 0; i < n; i++) { B[i] = A[i] + 1.0; }
}
"""
        )
        lx, ly = loops_of(prog)
        fused = fuse_loops(prog, lx, ly)
        r = run_program(fused, "f", [np.zeros(6), np.zeros(6), 6])
        assert np.allclose(r.arrays["B"], np.arange(6.0) + 1)

    def test_mismatched_ranges_rejected(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 1; j < n; j++) { B[j] = A[j]; }
}
"""
        )
        lx, ly = loops_of(prog)
        with pytest.raises(FusionError):
            fuse_loops(prog, lx, ly)

    def test_different_bodies_rejected(self):
        prog = parsed(
            """\
void f(float A[], int n, int m) {
    for (int i = 0; i < n; i++) { A[i] = 1.0; }
    for (int j = 0; j < m; j++) { A[j] = 2.0; }
}
"""
        )
        lx, ly = loops_of(prog)
        with pytest.raises(FusionError):
            fuse_loops(prog, lx, ly)

    def test_unknown_region_rejected(self):
        prog = parsed(FUSABLE)
        with pytest.raises(FusionError):
            fuse_loops(prog, 998, 999)

    def test_loops_in_different_functions_rejected(self):
        prog = parsed(
            """\
void g(float A[], int n) {
    for (int i = 0; i < n; i++) { A[i] = 1.0; }
}
void f(float A[], int n) {
    for (int j = 0; j < n; j++) { A[j] = 2.0; }
}
"""
        )
        regions = [r.region_id for r in prog.regions.values() if r.kind == "loop"]
        with pytest.raises(FusionError):
            fuse_loops(prog, regions[0], regions[1])

    def test_fused_program_is_revalidated(self):
        prog = parsed(FUSABLE)
        lx, ly = loops_of(prog)
        fused = fuse_loops(prog, lx, ly)
        # ids are reassigned and consistent
        assert fused.stmts
        assert all(s.stmt_id >= 0 for s in fused.stmts.values())


class TestAnnotations:
    def test_doall_annotation(self):
        prog = parsed(
            "void f(float A[], int n) { for (int i = 0; i < n; i++) { A[i] = 1.0; } }"
        )
        result = analyze(prog, "f", [[np.zeros(16), 16]])
        text = annotated_source(result)
        assert "parallel for" in text

    def test_reduction_annotation_includes_operator(self):
        prog = parsed(
            """\
float f(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}
"""
        )
        result = analyze(prog, "f", [[np.ones(16), 16]])
        text = annotated_source(result)
        assert "reduction(+:s)" in text

    def test_pipeline_stage_annotations(self):
        prog = parsed(
            """\
void f(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) { A[i] = i * 1.0; }
    for (int j = 1; j < n; j++) { B[j] = B[j - 1] + A[j]; }
}
"""
        )
        result = analyze(prog, "f", [[np.zeros(16), np.zeros(16), 16]])
        text = annotated_source(result)
        assert "pipeline stage 1 of 2" in text
        assert "pipeline stage 2 of 2" in text

    def test_fusion_annotation(self):
        prog = parsed(FUSABLE)
        result = analyze(prog, "f", [[np.ones(16), np.zeros(16), np.zeros(16), 16]])
        text = annotated_source(result)
        assert "fuse-with next-stage" in text

    def test_task_annotations(self, fib_program):
        result = analyze(fib_program, "fib", [[10]])
        text = annotated_source(result)
        assert "task fork" in text
        assert "task worker" in text
        assert "task barrier" in text

    def test_annotation_map_keys_are_stmt_ids(self, fib_program):
        result = analyze(fib_program, "fib", [[10]])
        notes = annotate(result)
        assert all(k in fib_program.stmts for k in notes)
