"""CLI failure semantics: table3 failure rows/footer/exit codes, bench."""

import json

from repro.bench_programs.registry import get_benchmark
from repro.cli import main
from repro.runtime.parallel import BenchmarkOutcome, FailedOutcome, outcome_from_dict

SUCCESS = BenchmarkOutcome(
    name="ok_prog",
    suite="polybench",
    loc=12,
    label="Do-all",
    primary_share=0.91,
    best_speedup=3.25,
    best_threads=8,
    pipelines=(),
    profile_digest="d" * 64,
    evidence_accepted=2,
    evidence_rejected=1,
)
FAILURE = FailedOutcome(
    name="bad_prog",
    error_type="ValueError",
    message="injected failure",
    traceback_summary="worker.py:3 in _crash",
    attempts=2,
)


class TestTable3FailureRendering:
    def _patch(self, monkeypatch, outcomes):
        seen = {}

        def fake_analyze_registry(**kwargs):
            seen.update(kwargs)
            return outcomes

        monkeypatch.setattr(
            "repro.runtime.parallel.analyze_registry", fake_analyze_registry
        )
        return seen

    def test_failed_row_renders_dash_cells_and_footer(self, monkeypatch, capsys):
        self._patch(monkeypatch, [SUCCESS, FAILURE])
        assert main(["table3"]) == 0  # --keep-going is the default
        out = capsys.readouterr().out
        assert "ok_prog" in out and "bad_prog" in out
        bad_row = next(line for line in out.splitlines() if "bad_prog" in line)
        assert bad_row.count(" - ") >= 6  # every non-name cell is a dash
        assert "1 of 2 program(s) failed:" in out
        assert "bad_prog: ValueError: injected failure (attempts=2)" in out
        assert "worker.py:3 in _crash" in out

    def test_fail_fast_exits_nonzero(self, monkeypatch, capsys):
        seen = self._patch(monkeypatch, [SUCCESS, FAILURE])
        assert main(["table3", "--fail-fast"]) == 1
        assert seen["fail_fast"] is True

    def test_keep_going_flag_explicit(self, monkeypatch, capsys):
        seen = self._patch(monkeypatch, [SUCCESS, FAILURE])
        assert main(["table3", "--keep-going"]) == 0
        assert seen["fail_fast"] is False

    def test_timeout_and_retries_thread_through(self, monkeypatch, capsys):
        seen = self._patch(monkeypatch, [SUCCESS])
        assert main(["table3", "--timeout", "2.5", "--retries", "3"]) == 0
        assert seen["timeout"] == 2.5
        assert seen["retries"] == 3
        out = capsys.readouterr().out
        assert "failed" not in out  # no footer without failures

    def test_json_mixes_success_and_failure_records(self, monkeypatch, capsys):
        self._patch(monkeypatch, [SUCCESS, FAILURE])
        assert main(["table3", "--json", "--compact"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 2
        assert "failed" not in docs[0]
        assert docs[1]["failed"] is True
        assert [outcome_from_dict(d) for d in docs] == [SUCCESS, FAILURE]

    def test_json_fail_fast_exit_code(self, monkeypatch, capsys):
        self._patch(monkeypatch, [FAILURE])
        assert main(["table3", "--json", "--fail-fast"]) == 1
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["error_type"] == "ValueError"


class TestTable3SerialParallelIdentity:
    def test_output_byte_identical_when_no_failures(self, monkeypatch, capsys):
        """Acceptance: with a healthy registry, ``table3 --parallel`` must
        render byte-for-byte what the serial path renders (subset of two
        programs to keep the double sweep cheap)."""
        specs = [get_benchmark("gesummv"), get_benchmark("reg_detect")]
        monkeypatch.setattr(
            "repro.bench_programs.registry.all_benchmarks", lambda: specs
        )
        assert main(["table3", "--no-parallel"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["table3", "--parallel"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "gesummv" in serial_out and "failed" not in serial_out


class TestBenchFailurePaths:
    def test_unknown_benchmark_fails_structurally(self, capsys):
        assert main(["bench", "no_such_benchmark"]) == 1
        err = capsys.readouterr().err
        assert "FAILED after 1 attempt(s)" in err
        assert "KeyError" in err

    def test_unknown_benchmark_json_failure_record(self, capsys):
        assert main(["bench", "no_such_benchmark", "--json", "--compact"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["failed"] is True
        assert doc["error_type"] == "KeyError"
        assert isinstance(outcome_from_dict(doc), FailedOutcome)

    def test_retries_counted_in_record(self, capsys):
        assert main(["bench", "no_such_benchmark", "--retries", "2"]) == 1
        assert "FAILED after 3 attempt(s)" in capsys.readouterr().err

    def test_healthy_bench_unaffected(self, capsys):
        assert main(["bench", "reg_detect", "--no-source", "--timeout", "60"]) == 0
        assert "Simulated best speedup" in capsys.readouterr().out
