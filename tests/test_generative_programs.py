"""Generative property tests: random MiniC programs vs a Python oracle.

A hypothesis strategy emits random structured programs (assignments,
compound assignments, if/else, bounded for-loops over int variables) while
building an equivalent Python source string.  Division is excluded so the
two languages agree exactly on integer semantics.

Checked properties:

* the interpreter computes exactly what Python computes,
* parse → print → parse is a fixed point,
* attaching the profiler never changes results or costs,
* profiling the same program twice yields identical profiles.
"""

import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.lang.validate import validate_program
from repro.profiling import Profiler, profile_run
from repro.runtime import Interpreter, run_program

VARS = ["v0", "v1", "v2", "v3"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 1))
        if choice == 0:
            return str(draw(st.integers(-9, 9)))
        return draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    left = draw(st.sampled_from(VARS))
    right = draw(expressions(depth=1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=0):
    """Returns (minic_lines, python_lines)."""
    kind = draw(st.integers(0, 5 if depth == 0 else 3))
    if kind <= 1:  # plain assignment
        var = draw(st.sampled_from(VARS))
        expr = draw(expressions())
        return [f"{var} = {expr};"], [f"{var} = {expr}"]
    if kind == 2:  # compound assignment
        var = draw(st.sampled_from(VARS))
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        expr = draw(expressions())
        return [f"{var} {op} {expr};"], [f"{var} {op} {expr}"]
    if kind == 3:  # if/else
        cond = draw(conditions())
        then_m, then_p = draw(block(depth + 1))
        else_m, else_p = draw(block(depth + 1))
        minic = [f"if {cond} {{"] + _ind(then_m) + ["} else {"] + _ind(else_m) + ["}"]
        python = [f"if {cond}:"] + _pind(then_p) + ["else:"] + _pind(else_p)
        return minic, python
    # bounded for loop
    trips = draw(st.integers(1, 4))
    ivar = f"i{depth}"
    body_m, body_p = draw(block(depth + 1))
    minic = [f"for (int {ivar} = 0; {ivar} < {trips}; {ivar}++) {{"] + _ind(
        body_m
    ) + ["}"]
    python = [f"for {ivar} in range({trips}):"] + _pind(body_p)
    return minic, python


def _ind(lines):
    return ["    " + line for line in lines]


def _pind(lines):
    return ["    " + line for line in (lines or ["pass"])]


@st.composite
def block(draw, depth=0):
    n = draw(st.integers(1, 3))
    minic: list[str] = []
    python: list[str] = []
    for _ in range(n):
        m, p = draw(statements(depth=depth))
        minic.extend(m)
        python.extend(p)
    return minic, python


@st.composite
def programs(draw):
    body_m, body_p = draw(block())
    decls_m = [f"int {v} = {i + 1};" for i, v in enumerate(VARS)]
    decls_p = [f"{v} = {i + 1}" for i, v in enumerate(VARS)]
    ret = "v0 + 2 * v1 + 3 * v2 - v3"
    minic = "int main() {\n" + "\n".join(
        _ind(decls_m + body_m + [f"return {ret};"])
    ) + "\n}\n"
    python = "\n".join(decls_p + body_p + [f"__result__ = {ret}"])
    return minic, python


def python_oracle(python_src: str) -> int:
    scope: dict = {}
    exec(textwrap.dedent(python_src), {}, scope)  # noqa: S102 - test oracle
    return scope["__result__"]


class TestAgainstOracle:
    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_interpreter_matches_python(self, data):
        minic, python = data
        program = parse_program(minic)
        validate_program(program)
        result = run_program(program, "main", [])
        assert result.value == python_oracle(python)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_fixed_point(self, data):
        minic, _ = data
        once = format_program(parse_program(minic))
        twice = format_program(parse_program(once))
        assert once == twice

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_profiler_does_not_perturb_execution(self, data):
        minic, _ = data
        program = parse_program(minic)
        plain = Interpreter(program).run("main", [])
        profiler = Profiler()
        profiled = Interpreter(program, sink=profiler).run("main", [])
        assert plain.value == profiled.value
        assert plain.total_cost == profiled.total_cost

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_profiling_is_deterministic(self, data):
        minic, _ = data
        program = parse_program(minic)
        p1, _ = profile_run(program, "main", [])
        p2, _ = profile_run(program, "main", [])
        assert p1.deps == p2.deps
        assert p1.total_cost == p2.total_cost
        assert p1.line_costs == p2.line_costs
