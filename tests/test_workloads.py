"""Workload generator tests."""

import numpy as np
import pytest

from repro.bench_programs.workloads import (
    DISTRIBUTIONS,
    WORKLOADS,
    arg_sets_for,
    matrix,
    points,
    vector,
)


class TestVector:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS)
    def test_shape_and_range(self, dist):
        v = vector(64, dist, seed=1, lo=2.0, hi=5.0)
        assert v.shape == (64,)
        assert (v >= 2.0 - 1e-9).all() and (v <= 5.0 + 1e-9).all()

    def test_sorted_is_sorted(self):
        v = vector(50, "sorted", seed=2)
        assert (np.diff(v) >= 0).all()

    def test_reversed_is_descending(self):
        v = vector(50, "reversed", seed=2)
        assert (np.diff(v) <= 0).all()

    def test_constant_is_constant(self):
        v = vector(10, "constant")
        assert np.ptp(v) == 0

    def test_clustered_has_few_distinct_modes(self):
        v = vector(256, "clustered", seed=3)
        # rounding to 2 decimals collapses each blob
        assert len(np.unique(np.round(v, 2))) < 128

    def test_seeded_determinism(self):
        assert np.array_equal(vector(32, "uniform", seed=9), vector(32, "uniform", seed=9))

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            vector(8, "zigzag")


class TestMatrixAndPoints:
    def test_matrix_shape(self):
        m = matrix(5, 7, "clustered", seed=1)
        assert m.shape == (5, 7)

    def test_points_clustered_tighter_than_uniform(self):
        clustered = points(200, 3, "clustered", seed=4, k=3)
        uniform = points(200, 3, "uniform", seed=4)
        # clustered data has smaller mean nearest-centroid spread
        def spread(data):
            center = data.mean(axis=0)
            return np.linalg.norm(data - center, axis=1).std()

        assert clustered.shape == uniform.shape == (200, 3)
        assert spread(clustered) != spread(uniform)

    def test_points_unknown_distribution(self):
        with pytest.raises(ValueError):
            points(10, 2, "spiral")


class TestArgSets:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_arg_sets_run(self, name):
        from repro.bench_programs import get_benchmark
        from repro.runtime import run_program

        spec = get_benchmark(name)
        for args in arg_sets_for(name, ("uniform",)):
            run_program(spec.program, spec.entry, args)

    def test_one_arg_set_per_distribution(self):
        sets = arg_sets_for("sort", ("uniform", "sorted"))
        assert len(sets) == 2

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            arg_sets_for("nope", ("uniform",))
