"""Interpreter semantics tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InterpreterError, StepLimitExceeded, ValidationError
from repro.lang import parse_program
from repro.lang.validate import validate_program
from repro.runtime import run_program

from conftest import parsed


def run_expr(expr: str, **scalars):
    """Evaluate an int expression in a tiny wrapper function."""
    params = ", ".join(f"int {k}" for k in scalars)
    prog = parsed(f"int f({params}) {{ return {expr}; }}")
    return run_program(prog, "f", list(scalars.values())).value


class TestArithmetic:
    def test_basic_ops(self):
        assert run_expr("a + b * 2", a=3, b=4) == 11

    def test_c_division_truncates_toward_zero(self):
        assert run_expr("a / b", a=7, b=2) == 3
        assert run_expr("a / b", a=-7, b=2) == -3
        assert run_expr("a / b", a=7, b=-2) == -3

    def test_c_modulo_sign(self):
        assert run_expr("a % b", a=7, b=3) == 1
        assert run_expr("a % b", a=-7, b=3) == -1

    def test_comparisons_yield_int(self):
        assert run_expr("(a < b) + (a == a)", a=1, b=2) == 2

    def test_logical_short_circuit_and(self):
        # (b != 0 && a / b > 0) must not divide when b == 0
        assert run_expr("b != 0 && a / b > 0", a=4, b=0) == 0

    def test_logical_short_circuit_or(self):
        assert run_expr("b == 0 || a / b > 0", a=4, b=0) == 1

    def test_unary(self):
        assert run_expr("-a", a=5) == -5
        assert run_expr("!a", a=0) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            run_expr("a / b", a=1, b=0)

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_c_div_mod_identity(self, a, b):
        q = run_expr("a / b", a=a, b=b)
        r = run_expr("a % b", a=a, b=b)
        assert q * b + r == a
        assert abs(r) < b


class TestControlFlow:
    def test_if_else(self):
        prog = parsed("int f(int n) { if (n > 0) { return 1; } return -1; }")
        assert run_program(prog, "f", [5]).value == 1
        assert run_program(prog, "f", [-5]).value == -1

    def test_for_loop_sum(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) {
        s += i;
    }
    return s;
}
"""
        )
        assert run_program(prog, "f", [10]).value == 55

    def test_while_loop(self):
        prog = parsed(
            """\
int f(int n) {
    int c = 0;
    while (n > 1) {
        n = n / 2;
        c++;
    }
    return c;
}
"""
        )
        assert run_program(prog, "f", [1024]).value == 10

    def test_break(self):
        prog = parsed(
            """\
int f(int n) {
    int i = 0;
    for (i = 0; i < n; i++) {
        if (i == 3) {
            break;
        }
    }
    return i;
}
"""
        )
        assert run_program(prog, "f", [100]).value == 3

    def test_continue_still_steps(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) {
            continue;
        }
        s += i;
    }
    return s;
}
"""
        )
        assert run_program(prog, "f", [10]).value == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        prog = parsed(
            """\
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s += 1;
        }
    }
    return s;
}
"""
        )
        assert run_program(prog, "f", [7]).value == 49

    def test_step_limit(self):
        prog = parsed("void f() { while (1) { int x = 0; } }")
        with pytest.raises(StepLimitExceeded):
            run_program(prog, "f", [], max_cost=10_000)


class TestFunctions:
    def test_recursion(self, fib_program):
        assert run_program(fib_program, "fib", [12]).value == 144

    def test_mutual_recursion(self):
        prog = parsed(
            """\
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
"""
        )
        assert run_program(prog, "is_even", [10]).value == 1
        assert run_program(prog, "is_odd", [10]).value == 0

    def test_by_value_semantics(self):
        prog = parsed(
            """\
void bump(int x) { x = x + 1; }
int f(int x) { bump(x); return x; }
"""
        )
        assert run_program(prog, "f", [1]).value == 1

    def test_by_reference_semantics(self):
        prog = parsed(
            """\
void bump(int &x) { x = x + 1; }
int f(int x) { int y = x; bump(y); return y; }
"""
        )
        assert run_program(prog, "f", [1]).value == 2

    def test_intrinsics(self):
        prog = parsed("float f(float x) { return sqrt(x) + fabs(0.0 - 2.0); }")
        assert run_program(prog, "f", [9.0]).value == pytest.approx(5.0)

    def test_intrinsic_domain_error(self):
        prog = parsed("float f(float x) { return sqrt(x); }")
        with pytest.raises(InterpreterError):
            run_program(prog, "f", [-1.0])


class TestArrays:
    def test_array_argument_roundtrip(self):
        prog = parsed(
            """\
void scale(float A[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = A[i] * 2.0;
    }
}
"""
        )
        result = run_program(prog, "scale", [np.arange(5.0), 5])
        assert np.allclose(result.arrays["A"], [0, 2, 4, 6, 8])

    def test_2d_row_major(self):
        prog = parsed(
            """\
void fill(int M[][], int r, int c) {
    for (int i = 0; i < r; i++) {
        for (int j = 0; j < c; j++) {
            M[i][j] = i * 100 + j;
        }
    }
}
"""
        )
        result = run_program(prog, "fill", [np.zeros((3, 4), dtype=np.int64), 3, 4])
        assert result.arrays["M"][2][3] == 203

    def test_local_array(self):
        prog = parsed(
            """\
int f(int n) {
    int buf[16];
    for (int i = 0; i < n; i++) {
        buf[i] = i * i;
    }
    return buf[n - 1];
}
"""
        )
        assert run_program(prog, "f", [10]).value == 81

    def test_out_of_bounds_raises(self):
        prog = parsed("int f(float A[]) { return toint(A[99]); }")
        with pytest.raises(InterpreterError):
            run_program(prog, "f", [np.zeros(4)])

    def test_global_array_shared_across_calls(self):
        prog = parsed(
            """\
int slots[8];
void put(int i, int v) { slots[i] = v; }
int get(int i) { return slots[i]; }
int f() { put(3, 42); return get(3); }
"""
        )
        assert run_program(prog, "f", []).value == 42

    def test_int_array_stays_int(self):
        prog = parsed(
            """\
int f(int A[]) {
    A[0] = 7 / 2;
    return A[0];
}
"""
        )
        result = run_program(prog, "f", [np.zeros(2, dtype=np.int64)])
        assert result.value == 3


class TestGlobals:
    def test_global_init_expression(self):
        prog = parsed("int g = 3 * 4 + 1;\nint f() { return g; }")
        assert run_program(prog, "f", []).value == 13

    def test_global_mutation_visible(self):
        prog = parsed(
            """\
int counter = 0;
void tick() { counter++; }
int f(int n) {
    for (int i = 0; i < n; i++) { tick(); }
    return counter;
}
"""
        )
        result = run_program(prog, "f", [5])
        assert result.value == 5
        assert result.globals["counter"] == 5


class TestValidation:
    def test_undeclared_variable(self):
        with pytest.raises(ValidationError):
            parsed("void f() { x = 1; }")

    def test_arity_mismatch(self):
        with pytest.raises(ValidationError):
            parsed("void g(int a) { }\nvoid f() { g(1, 2); }")

    def test_indexing_scalar(self):
        with pytest.raises(ValidationError):
            parsed("void f(int n) { n[0] = 1; }")

    def test_wrong_rank(self):
        with pytest.raises(ValidationError):
            parsed("void f(float A[][]) { A[0] = 1.0; }")

    def test_break_outside_loop(self):
        with pytest.raises(ValidationError):
            parsed("void f() { break; }")

    def test_unknown_function(self):
        with pytest.raises(ValidationError):
            parsed("void f() { nope(); }")

    def test_shadowing_intrinsic(self):
        with pytest.raises(ValidationError):
            parsed("float sqrt(float x) { return x; }")


class TestDeterminism:
    @given(st.integers(0, 12))
    def test_same_input_same_result_and_cost(self, n):
        prog = parsed(
            """\
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
"""
        )
        r1 = run_program(prog, "fib", [n])
        r2 = run_program(prog, "fib", [n])
        assert r1.value == r2.value
        assert r1.total_cost == r2.total_cost
