"""Multi-loop pipeline schedule simulation.

The fitted dependence ``Y = aX + b`` (iteration *j* of loop y needs loop x
up to iteration ``(j - b)/a``) is replayed over the measured per-iteration
costs:

* stage x runs on ``P - 1`` threads when it is do-all (cyclically
  scheduled so early iterations finish early — what a pipelined producer
  wants), or on one thread otherwise;
* stage y is the consumer; iteration *j* starts when its own previous
  iteration is done (y is sequential — otherwise fusion would have fired)
  *and* stage x has retired iteration ``x_req(j)``, plus a handoff cost.

The simulated region time is when both stages have drained.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.result import SimOutcome


def _producer_finish_times(
    costs: Sequence[float], threads: int, machine: Machine
) -> list[float]:
    """Finish time of each iteration under cyclic scheduling on *threads*."""
    clocks = [machine.spawn_cost] * threads
    finish: list[float] = []
    for i, c in enumerate(costs):
        t = i % threads
        clocks[t] += c
        finish.append(clocks[t])
    return finish


def simulate_pipeline(
    costs_x: Sequence[float],
    costs_y: Sequence[float],
    a: float,
    b: float,
    machine: Machine,
    threads: int | None = None,
    stage_x_parallel: bool = True,
    streaming: float = 0.0,
) -> SimOutcome:
    """Simulate one co-invocation of a two-stage multi-loop pipeline."""
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    serial = float(sum(costs_x) + sum(costs_y))
    if p == 1 or not costs_x or not costs_y:
        return SimOutcome(threads=p, serial_time=serial, parallel_time=serial)

    p_x = max(1, p - 1) if stage_x_parallel else 1
    finish_x = _producer_finish_times(costs_x, p_x, machine)
    n_x = len(costs_x)

    def x_req(j: int) -> int | None:
        """Last x iteration that y's iteration j must wait for."""
        if a == 0.0:
            # all of y depends on the single dependence frontier at b
            return n_x - 1
        need = (j - b) / a
        if need < 0:
            return None
        return min(int(math.ceil(need)), n_x - 1)

    clock = machine.spawn_cost
    for j, c in enumerate(costs_y):
        req = x_req(j)
        ready = 0.0 if req is None else finish_x[req] + machine.pipeline_sync
        clock = max(clock, ready) + c
    t_par = max(clock, finish_x[-1]) + machine.barrier_cost(p)
    # the memory roofline binds the whole pipeline region too
    t_par = max(t_par, machine.parallel_time(serial, p, streaming))
    return SimOutcome(
        threads=p,
        serial_time=serial,
        parallel_time=float(t_par),
        detail=f"pipeline: a={a:.3g}, b={b:.3g}, Px={p_x}",
    )


def simulate_pipeline_chain(
    stage_costs: Sequence[Sequence[float]],
    fits: Sequence[tuple[float, float]],
    machine: Machine,
    threads: int | None = None,
    stage0_parallel: bool = True,
    streaming: float = 0.0,
) -> SimOutcome:
    """Simulate an n-stage multi-loop pipeline.

    *stage_costs* holds per-iteration costs for each of the n loops;
    *fits* holds the fitted ``(a, b)`` between consecutive stages (n-1
    entries) — Section III-A: "If there is a chain dependence of n loops,
    it gives n pairs of relationships.  A pipeline of n stages can be
    easily implemented by merging the information provided by the tool."

    Stage 0 may be do-all (spread over the threads left after dedicating
    one to each downstream stage); stages 1..n-1 consume sequentially, each
    iteration waiting for its fitted dependence in the previous stage.
    """
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    if len(stage_costs) < 2 or len(fits) != len(stage_costs) - 1:
        raise SimulationError(
            "need n >= 2 stages and exactly n-1 (a, b) fits between them"
        )
    serial = float(sum(sum(c) for c in stage_costs))
    if p == 1 or any(not c for c in stage_costs):
        return SimOutcome(threads=p, serial_time=serial, parallel_time=serial)

    downstream = len(stage_costs) - 1
    p0 = max(1, p - downstream) if stage0_parallel else 1
    finish = _producer_finish_times(stage_costs[0], p0, machine)
    drain = finish[-1]  # every stage must fully retire, consumed or not

    for stage_i in range(1, len(stage_costs)):
        a, b = fits[stage_i - 1]
        costs = stage_costs[stage_i]
        n_prev = len(finish)
        clock = machine.spawn_cost
        new_finish: list[float] = []
        for j, c in enumerate(costs):
            if a == 0.0:
                req: int | None = n_prev - 1
            else:
                need = (j - b) / a
                req = None if need < 0 else min(int(math.ceil(need)), n_prev - 1)
            ready = 0.0 if req is None else finish[req] + machine.pipeline_sync
            clock = max(clock, ready) + c
            new_finish.append(clock)
        finish = new_finish
        drain = max(drain, finish[-1])

    t_par = drain + machine.barrier_cost(p)
    t_par = max(t_par, machine.parallel_time(serial, p, streaming))
    return SimOutcome(
        threads=p,
        serial_time=serial,
        parallel_time=float(t_par),
        detail=f"pipeline chain: {len(stage_costs)} stages",
    )


def simulate_pipeline_invocations(
    invocations: Sequence[tuple[Sequence[float], Sequence[float]]],
    a: float,
    b: float,
    machine: Machine,
    threads: int | None = None,
    stage_x_parallel: bool = True,
    streaming: float = 0.0,
) -> SimOutcome:
    """Sum the pipeline simulation over repeated co-invocations (e.g. the
    per-frame loop pairs of fluidanimate)."""
    p = machine.threads if threads is None else threads
    total = SimOutcome(threads=p, serial_time=0.0, parallel_time=0.0)
    for cx, cy in invocations:
        total = total + simulate_pipeline(
            cx,
            cy,
            a,
            b,
            machine,
            threads=p,
            stage_x_parallel=stage_x_parallel,
            streaming=streaming,
        )
    return total
