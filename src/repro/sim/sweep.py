"""Thread sweeps — the paper tests every benchmark at up to 32 threads and
reports the thread count at which the highest speedup occurred."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

DEFAULT_THREAD_COUNTS = (1, 2, 3, 4, 8, 16, 32)


@dataclass(frozen=True)
class ThreadSweep:
    """Speedup at each thread count, plus the best configuration."""

    speedups: dict[int, float]

    @property
    def best_threads(self) -> int:
        return max(self.speedups, key=lambda p: (self.speedups[p], -p))

    @property
    def best_speedup(self) -> float:
        return self.speedups[self.best_threads]

    def as_rows(self) -> list[tuple[int, float]]:
        return sorted(self.speedups.items())


def sweep_threads(
    speedup_at: Callable[[int], float],
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    map_fn: Callable[[Callable[[int], float], Sequence[int]], Sequence[float]] = map,
) -> ThreadSweep:
    """Evaluate *speedup_at* over *thread_counts*.

    *map_fn* lets callers fan the (independent) evaluations out — e.g.
    ``ProcessPoolExecutor.map`` from :mod:`repro.runtime.parallel`.  Results
    keep the order of *thread_counts* regardless of completion order.
    """
    speedups = [float(s) for s in map_fn(speedup_at, thread_counts)]
    return ThreadSweep(speedups=dict(zip(thread_counts, speedups)))
