"""Task-graph and recursive-task schedule simulation."""

from __future__ import annotations

import heapq
from typing import Callable, Hashable

from repro.errors import SimulationError
from repro.graphs.digraph import DiGraph
from repro.sim.machine import Machine
from repro.sim.result import SimOutcome


def simulate_task_graph(
    graph: DiGraph,
    weights: dict[Hashable, float],
    machine: Machine,
    threads: int | None = None,
) -> SimOutcome:
    """Event-driven greedy list scheduling of a task DAG on P workers.

    Each node of *graph* is one task with cost ``weights[node]``; an edge
    ``a -> b`` means b waits for a.  Ready tasks are assigned to idle
    workers in serial order, paying ``spawn_cost`` each; the makespan plus
    one final barrier is the parallel time.
    """
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    nodes = graph.nodes()
    serial = float(sum(weights.get(n, 0.0) for n in nodes))
    if p == 1 or len(nodes) <= 1:
        return SimOutcome(threads=p, serial_time=serial, parallel_time=serial)

    remaining = {n: graph.in_degree(n) for n in nodes}
    ready = sorted((n for n, d in remaining.items() if d == 0), key=str)
    workers = [0.0] * p  # next-free time per worker
    finish: dict[Hashable, float] = {}
    earliest: dict[Hashable, float] = {n: 0.0 for n in nodes}
    done = 0
    while ready or done < len(nodes):
        if not ready:  # pragma: no cover - cycle guard
            raise SimulationError("task graph contains a cycle")
        task = ready.pop(0)
        w = min(range(p), key=lambda i: workers[i])
        start = max(workers[w], earliest[task]) + machine.spawn_cost
        end = start + weights.get(task, 0.0)
        workers[w] = end
        finish[task] = end
        done += 1
        for succ in graph.successors(task):
            earliest[succ] = max(earliest[succ], end)
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)
        ready.sort(key=str)
    makespan = max(finish.values()) + machine.barrier_cost(p)
    return SimOutcome(
        threads=p,
        serial_time=serial,
        parallel_time=float(makespan),
        detail=f"task graph: {len(nodes)} tasks",
    )


def simulate_recursive_tasks(
    work: float,
    span: float,
    n_tasks: int,
    machine: Machine,
    threads: int | None = None,
    streaming: float = 0.0,
) -> SimOutcome:
    """Greedy-scheduler model for recursive task trees (fib/sort/strassen).

    ``T_P = (W + c·n)/P + D`` — the classic greedy bound where each of the
    *n_tasks* tasks pays a small work-first bookkeeping cost ``c`` (a
    work-stealing runtime only pays a full spawn on the steal path, whose
    count is O(P·D) and folded into the barrier/span terms).
    """
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    if p == 1:
        return SimOutcome(threads=1, serial_time=work, parallel_time=work)
    inflated = work + machine.task_overhead * n_tasks
    t_par = (
        machine.parallel_time(inflated, p, streaming)
        + span
        + machine.barrier_cost(p)
    )
    return SimOutcome(
        threads=p,
        serial_time=float(work),
        parallel_time=float(t_par),
        detail=f"recursive tasks: W={work:.0f}, D={span:.0f}, n={n_tasks}",
    )
