"""Geometric-decomposition schedule simulation.

Each invocation of the candidate function becomes one data chunk handed to a
worker (Listing 7's ``new_thread(localSearch(points[i*chunk_size], ...))``).
Chunks are LPT-scheduled on P workers; the final barrier joins them.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.result import SimOutcome


def simulate_geometric(
    chunk_costs: Sequence[float],
    machine: Machine,
    threads: int | None = None,
    streaming: float = 0.0,
) -> SimOutcome:
    """Schedule one function call per chunk across the thread pool."""
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    serial = float(sum(chunk_costs))
    if p == 1 or len(chunk_costs) <= 1:
        return SimOutcome(threads=p, serial_time=serial, parallel_time=serial)
    # longest-processing-time greedy onto p workers
    heap = [0.0] * p
    heapq.heapify(heap)
    for cost in sorted(chunk_costs, reverse=True):
        soonest = heapq.heappop(heap)
        heapq.heappush(heap, soonest + cost + machine.spawn_cost)
    makespan = max(heap) + machine.barrier_cost(p)
    contended = machine.parallel_time(serial, p, streaming)
    return SimOutcome(
        threads=p,
        serial_time=serial,
        parallel_time=float(max(makespan, contended)),
        detail=f"geometric: {len(chunk_costs)} chunks",
    )
