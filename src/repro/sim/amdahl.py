"""Amdahl composition of simulated regions with the serial remainder."""

from __future__ import annotations

from typing import Sequence

from repro.sim.result import SimOutcome


def compose_speedup(total_serial: float, regions: Sequence[SimOutcome]) -> float:
    """Overall program speedup when *regions* run in parallel.

    ``total_serial`` is the whole program's serial instruction count; the
    parts outside the simulated regions stay serial.  Region serial times
    exceeding the program total (possible through rounding) are clamped.
    """
    region_serial = sum(r.serial_time for r in regions)
    region_parallel = sum(r.parallel_time for r in regions)
    remainder = max(0.0, total_serial - region_serial)
    t_par = remainder + region_parallel
    if t_par <= 0:
        return 1.0
    return total_serial / t_par
