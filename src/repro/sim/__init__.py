"""Parallel-execution simulation.

The paper reports wall-clock speedups of hand-parallelized benchmarks on a
2×8-core Xeon.  A pure-Python reproduction cannot obtain such numbers, so
this package *simulates* the execution schedule each detected pattern
implies, over the per-iteration/per-activation costs the profiler actually
measured (DESIGN.md §2):

* do-all — static block scheduling across threads, barrier per invocation;
* reduction — do-all plus a tree combine;
* task graphs — event-driven greedy list scheduling;
* recursive task trees — the greedy-scheduler bound ``W/P + D`` plus
  per-task spawn overhead;
* multi-loop pipelines — stage y's iteration *j* starts once stage x has
  finished iteration ``(j - b)/a`` (the fitted dependence), with the thread
  budget split across the stages;
* geometric decomposition — chunk (function invocation) scheduling.

Overall program speedups compose the simulated region times with the
unparallelized remainder (Amdahl), and :func:`sweep_threads` reproduces the
paper's 1–32 thread sweeps.
"""

from repro.sim.machine import Machine
from repro.sim.result import SimOutcome
from repro.sim.doall import simulate_doall, simulate_reduction
from repro.sim.tasks import simulate_recursive_tasks, simulate_task_graph
from repro.sim.pipeline import (
    simulate_pipeline,
    simulate_pipeline_chain,
    simulate_pipeline_invocations,
)
from repro.sim.geometric import simulate_geometric
from repro.sim.amdahl import compose_speedup
from repro.sim.sweep import ThreadSweep, sweep_threads
from repro.sim.planner import plan_and_simulate, simulate_analysis

__all__ = [
    "Machine",
    "SimOutcome",
    "simulate_doall",
    "simulate_reduction",
    "simulate_task_graph",
    "simulate_recursive_tasks",
    "simulate_pipeline",
    "simulate_pipeline_chain",
    "simulate_pipeline_invocations",
    "simulate_geometric",
    "compose_speedup",
    "ThreadSweep",
    "sweep_threads",
    "plan_and_simulate",
    "simulate_analysis",
]
