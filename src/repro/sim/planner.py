"""Planner: turn an AnalysisResult into simulated program speedups.

This is the bridge Table III's harness uses: given the detected pattern of a
program, extract the measured cost structure from the profile (per-iteration
loop costs, activation costs, work/span) and simulate the pattern's schedule
at each thread count, composing with the serial remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cu.model import CU
from repro.patterns.engine import AnalysisResult, summarize_patterns
from repro.patterns.result import MultiLoopPipeline, TaskParallelism
from repro.profiling.model import CallNode, Profile
from repro.sim.amdahl import compose_speedup
from repro.sim.doall import simulate_doall, simulate_reduction
from repro.sim.geometric import simulate_geometric
from repro.sim.machine import DEFAULT_MACHINE, Machine
from repro.sim.pipeline import simulate_pipeline_invocations
from repro.sim.result import SimOutcome
from repro.sim.sweep import DEFAULT_THREAD_COUNTS, ThreadSweep, sweep_threads
from repro.sim.tasks import simulate_recursive_tasks, simulate_task_graph


# ---------------------------------------------------------------------------
# profile extraction helpers
# ---------------------------------------------------------------------------


def region_activations(profile: Profile, region: int) -> list[CallNode]:
    """All dynamic activations of *region*, in execution order."""
    if profile.calltree is None:
        return []
    return [n for n in profile.calltree.walk() if n.region == region]


def loop_invocation_costs(profile: Profile, loop_region: int) -> list[list[float]]:
    """Per-iteration (inclusive) costs for each invocation of a loop."""
    out: list[list[float]] = []
    for node in region_activations(profile, loop_region):
        if node.per_iter_cost:
            out.append([float(c) for c in node.per_iter_cost])
        elif node.inclusive_cost:
            out.append([float(node.inclusive_cost)])
    return out


def pipeline_co_invocations(
    profile: Profile, loop_x: int, loop_y: int
) -> list[tuple[list[float], list[float]]]:
    """Pair up x/y loop invocations that occur under the same parent
    activation (e.g. one pair per fluidanimate frame)."""
    if profile.calltree is None:
        return []
    pairs: list[tuple[list[float], list[float]]] = []
    for node in profile.calltree.walk():
        xs = [c for c in node.children if c.region == loop_x]
        ys = [c for c in node.children if c.region == loop_y]
        for x_node, y_node in zip(xs, ys):
            pairs.append(
                (
                    [float(c) for c in x_node.per_iter_cost],
                    [float(c) for c in y_node.per_iter_cost],
                )
            )
    return pairs


def _coverage(profile: Profile, regions: Sequence[int]) -> float:
    return sum(profile.region_cost(r) for r in set(regions))


def _max_depth(profile: Profile, region: int) -> int:
    """Deepest nesting of activations of *region* within themselves."""
    if profile.calltree is None:
        return 1
    best = [0]

    def walk(node: CallNode, depth: int) -> None:
        here = depth + (1 if node.region == region else 0)
        best[0] = max(best[0], here)
        for child in node.children:
            walk(child, here)

    walk(profile.calltree, 0)
    return max(1, best[0])


# ---------------------------------------------------------------------------
# per-pattern region simulation
# ---------------------------------------------------------------------------


def _sim_fusion(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    sf = result.profile.streaming_fraction
    outcomes = []
    for fusion in result.fusions:
        xs = loop_invocation_costs(result.profile, fusion.loop_x)
        ys = loop_invocation_costs(result.profile, fusion.loop_y)
        combined: list[list[float]] = []
        for cx, cy in zip(xs, ys):
            n = min(len(cx), len(cy))
            inv = [cx[i] + cy[i] for i in range(n)]
            inv.extend(cx[n:])
            inv.extend(cy[n:])
            combined.append(inv)
        outcomes.append(simulate_doall(combined, machine, threads=threads, streaming=sf))
    return outcomes


def _best_pipeline(result: AnalysisResult) -> MultiLoopPipeline:
    candidates = result.clean_pipelines() or result.pipelines
    return max(
        candidates,
        key=lambda p: (
            _coverage(result.profile, [p.loop_x, p.loop_y]),
            p.efficiency,
            -p.loop_x,
        ),
    )


def _sim_pipeline(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    p = _best_pipeline(result)
    invocations = pipeline_co_invocations(result.profile, p.loop_x, p.loop_y)
    stage_x_parallel = p.stage_x is not None and p.stage_x.parallelizable
    return [
        simulate_pipeline_invocations(
            invocations,
            p.a,
            p.b,
            machine,
            threads=threads,
            stage_x_parallel=stage_x_parallel,
            streaming=result.profile.streaming_fraction,
        )
    ]


def _worker_barrier_loops(
    result: AnalysisResult, tp: TaskParallelism
) -> tuple[list[int], list[int]] | None:
    """(concurrent-task loop regions, barrier loop regions) when every
    concurrent task is a parallelizable loop CU; None otherwise."""
    cu_by_id = {cu.cu_id: cu for cu in tp.cus}

    def loop_region_of(cu: CU) -> int | None:
        if cu.kind != "loop" or not cu.stmts:
            return None
        return getattr(cu.stmts[0], "region_id", None)

    workers: list[int] = []
    for cu_id in tp.concurrent_tasks:
        region = loop_region_of(cu_by_id[cu_id])
        if region is None:
            return None
        lc = result.loop_classes.get(region)
        if lc is None or not lc.parallelizable:
            return None
        workers.append(region)
    if not workers:
        return None
    barriers: list[int] = []
    task_set = set(tp.concurrent_tasks)
    for cu in tp.cus:
        if cu.cu_id in task_set:
            continue
        region = loop_region_of(cu)
        if region is None:
            continue
        preds = set(tp.graph.predecessors(cu.cu_id)) if cu.cu_id in tp.graph else set()
        if preds & task_set or tp.marks.get(cu.cu_id) == "barrier":
            barriers.append(region)
    return workers, barriers


def _sim_tasks(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    tp = result.best_task_parallelism()
    assert tp is not None
    profile = result.profile
    sf = profile.streaming_fraction
    reg = result.program.regions.get(tp.region)

    split = _worker_barrier_loops(result, tp)
    if split is not None:
        workers, barriers = split
        worker_invs = {r: loop_invocation_costs(profile, r) for r in workers}
        barrier_invs = {r: loop_invocation_costs(profile, r) for r in barriers}
        n_rounds = max(
            [len(v) for v in worker_invs.values()]
            + [len(v) for v in barrier_invs.values()]
            + [0]
        )
        per_worker_threads = max(1, threads // max(1, len(workers)))
        serial = 0.0
        parallel = 0.0
        for t in range(n_rounds):
            phase1 = 0.0
            for r in workers:
                invs = worker_invs[r]
                if t >= len(invs):
                    continue
                lc = result.loop_classes.get(r)
                sim = (
                    simulate_reduction(
                        [invs[t]], machine, threads=per_worker_threads, streaming=sf
                    )
                    if lc is not None and lc.is_reduction
                    else simulate_doall(
                        [invs[t]], machine, threads=per_worker_threads, streaming=sf
                    )
                )
                serial += sim.serial_time
                phase1 = max(phase1, sim.parallel_time)
            phase2 = 0.0
            for r in barriers:
                invs = barrier_invs[r]
                if t >= len(invs):
                    continue
                sim = simulate_doall([invs[t]], machine, threads=threads, streaming=sf)
                serial += sim.serial_time
                phase2 += sim.parallel_time
            parallel += phase1 + phase2
            if threads > 1:
                parallel += machine.barrier_cost(threads)
        return [SimOutcome(threads=threads, serial_time=serial, parallel_time=parallel)]

    recursive = (
        reg is not None
        and reg.kind == "function"
        and result.program.has_function(reg.function)
    )
    activations = region_activations(profile, tp.region)
    if recursive and len(activations) > 1:
        return [
            simulate_recursive_tasks(
                work=float(tp.total_instructions),
                span=float(tp.critical_path_instructions),
                n_tasks=len(activations),
                machine=machine,
                threads=threads,
                streaming=sf,
            )
        ]
    weights = {
        cu.cu_id: float(
            sum(profile.site_costs.get((tp.region, line), 0) for line in cu.lines)
        )
        for cu in tp.cus
    }
    return [simulate_task_graph(tp.graph, weights, machine, threads=threads)]


def _sim_geometric(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    gd = result.geometric[0]
    chunks = [float(n.inclusive_cost) for n in region_activations(result.profile, gd.region)]
    return [
        simulate_geometric(
            chunks, machine, threads=threads, streaming=result.profile.streaming_fraction
        )
    ]


def _best_loop(result: AnalysisResult, want_reduction: bool) -> int | None:
    best: tuple[float, int] | None = None
    for region, lc in result.loop_classes.items():
        if region not in result.hotspot_regions:
            continue
        if want_reduction and not lc.is_reduction:
            continue
        if not want_reduction and not lc.is_doall:
            continue
        cost = result.profile.region_cost(region)
        if best is None or cost > best[0]:
            best = (cost, region)
    return None if best is None else best[1]


def _sim_reduction(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    loop = _best_loop(result, want_reduction=True)
    if loop is None:
        # The reduction lives in a loop that is not cleanly classified as a
        # reduction loop (nqueens: the column loop also re-writes the board,
        # which the parallel implementation privatizes per task).  Fall back
        # to the hottest hotspot loop with reduction *candidates*.
        candidates = [
            r for r in result.reductions if r in result.hotspot_regions
        ]
        if not candidates:
            return []
        loop = max(candidates, key=lambda r: result.profile.region_cost(r))
        activations = region_activations(result.profile, loop)
        if len(activations) > 8:
            # Recursive search: model as a task tree with per-call tasks
            # (the BOTS nqueens implementation) plus the reduction combine.
            work = float(result.profile.region_cost(loop))
            depth = _max_depth(result.profile, loop)
            span = work / max(1, len(activations)) * max(1, depth)
            return [
                simulate_recursive_tasks(
                    work=work,
                    span=span,
                    n_tasks=len(activations),
                    machine=machine,
                    threads=threads,
                    streaming=result.profile.streaming_fraction,
                )
            ]
    lc = result.loop_classes[loop]
    sf = result.profile.streaming_fraction

    # How would the reduction actually be implemented?
    # 1. If the reduction loop sits inside hotspot do-all ancestors
    #    (gesummv: inner accumulation, outer rows independent), the natural
    #    implementation is a parallel-for on the *outermost* such ancestor
    #    with the accumulators private per iteration.
    regions = result.program.regions
    target: int | None = None
    cursor = regions[loop].parent if loop in regions else None
    while cursor is not None:
        lc_cursor = result.loop_classes.get(cursor)
        if (
            lc_cursor is not None
            and lc_cursor.is_doall
            and cursor in result.hotspot_regions
        ):
            target = cursor
            cursor = regions[cursor].parent if cursor in regions else None
        else:
            break
    if target is not None:
        invs = loop_invocation_costs(result.profile, target)
        return [simulate_doall(invs, machine, threads=threads, streaming=sf)]

    # 2. Otherwise simulate the reduction loop itself.  Array reduction
    #    variables (bicg's s[]) are privatized per thread and combined
    #    element-wise, so the combine cost scales with the array extent.
    from repro.lang.analysis import array_names

    arrays = array_names(result.program)
    combine_units = 0
    for cand in lc.reductions:
        if cand.var in arrays:
            combine_units += max(1, result.profile.max_trip(loop))
        else:
            combine_units += 1
    invs = loop_invocation_costs(result.profile, loop)
    return [
        simulate_reduction(
            invs,
            machine,
            threads=threads,
            n_reduction_vars=max(1, combine_units),
            streaming=sf,
        )
    ]


def _sim_doall(result: AnalysisResult, machine: Machine, threads: int) -> list[SimOutcome]:
    loop = _best_loop(result, want_reduction=False)
    if loop is None:
        return []
    invs = loop_invocation_costs(result.profile, loop)
    return [
        simulate_doall(
            invs, machine, threads=threads, streaming=result.profile.streaming_fraction
        )
    ]


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanOutcome:
    """Detected pattern plus simulated thread sweep."""

    label: str
    sweep: ThreadSweep

    @property
    def best_threads(self) -> int:
        return self.sweep.best_threads

    @property
    def best_speedup(self) -> float:
        return self.sweep.best_speedup


def simulate_analysis(
    result: AnalysisResult,
    threads: int,
    machine: Machine = DEFAULT_MACHINE,
    label: str | None = None,
) -> float:
    """Overall program speedup at one thread count."""
    label = label or summarize_patterns(result)
    machine = machine.with_threads(threads)
    if label == "Fusion":
        regions = _sim_fusion(result, machine, threads)
    elif label == "Multi-loop pipeline":
        regions = _sim_pipeline(result, machine, threads)
    elif label.startswith("Task parallelism"):
        regions = _sim_tasks(result, machine, threads)
    elif label.startswith("Geometric decomposition"):
        regions = _sim_geometric(result, machine, threads)
    elif label == "Reduction":
        regions = _sim_reduction(result, machine, threads)
    elif label == "Do-all":
        regions = _sim_doall(result, machine, threads)
    else:
        regions = []
    if not regions:
        return 1.0
    return compose_speedup(float(result.profile.total_cost), regions)


def plan_and_simulate(
    result: AnalysisResult,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    machine: Machine = DEFAULT_MACHINE,
) -> PlanOutcome:
    """Detect the primary pattern and sweep the thread counts."""
    label = summarize_patterns(result)
    sweep = sweep_threads(
        lambda p: simulate_analysis(result, p, machine=machine, label=label),
        thread_counts,
    )
    return PlanOutcome(label=label, sweep=sweep)
