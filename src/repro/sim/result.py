"""Simulation outcome container."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimOutcome:
    """Result of simulating one parallel region at a fixed thread count."""

    threads: int
    serial_time: float
    parallel_time: float
    detail: str = ""

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        return self.serial_time / self.parallel_time

    def __add__(self, other: "SimOutcome") -> "SimOutcome":
        if other == 0:  # pragma: no cover - sum() support
            return self
        if self.threads != other.threads:
            raise ValueError("cannot add outcomes at different thread counts")
        return SimOutcome(
            threads=self.threads,
            serial_time=self.serial_time + other.serial_time,
            parallel_time=self.parallel_time + other.parallel_time,
            detail=self.detail or other.detail,
        )

    __radd__ = __add__
