"""Do-all and reduction schedule simulation."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.result import SimOutcome


def _split_blocks(costs: Sequence[float], parts: int) -> list[float]:
    """Static block scheduling: contiguous blocks, near-equal iteration counts."""
    n = len(costs)
    parts = min(parts, n) if n else 1
    out: list[float] = []
    base = n // parts
    extra = n % parts
    start = 0
    for t in range(parts):
        size = base + (1 if t < extra else 0)
        out.append(float(sum(costs[start : start + size])))
        start += size
    return out


def _invocation_time(
    costs: Sequence[float], machine: Machine, threads: int, streaming: float
) -> float:
    if not costs:
        return 0.0
    if threads <= 1:
        return float(sum(costs))
    blocks = _split_blocks(costs, threads)
    longest = max(blocks)
    work = sum(blocks)
    # roofline-adjusted lower bound cannot beat the longest block
    contended = machine.parallel_time(work, threads, streaming)
    return max(longest, contended) + machine.barrier_cost(threads) + machine.spawn_cost


def simulate_doall(
    invocations: Sequence[Sequence[float]],
    machine: Machine,
    threads: int | None = None,
    streaming: float = 0.0,
) -> SimOutcome:
    """Simulate a do-all loop.

    *invocations* holds one per-iteration cost list per dynamic loop
    invocation; every invocation forks, block-schedules its iterations, and
    joins at a barrier — overheads therefore scale with invocation count,
    which is what penalizes fine-grained inner loops at high thread counts.
    """
    p = machine.threads if threads is None else threads
    if p < 1:
        raise SimulationError("thread count must be >= 1")
    serial = float(sum(sum(inv) for inv in invocations))
    if p == 1:
        return SimOutcome(threads=1, serial_time=serial, parallel_time=serial)
    parallel = sum(_invocation_time(inv, machine, p, streaming) for inv in invocations)
    return SimOutcome(
        threads=p,
        serial_time=serial,
        parallel_time=float(parallel),
        detail=f"do-all: {len(invocations)} invocation(s)",
    )


def simulate_reduction(
    invocations: Sequence[Sequence[float]],
    machine: Machine,
    threads: int | None = None,
    n_reduction_vars: int = 1,
    streaming: float = 0.0,
) -> SimOutcome:
    """Simulate a reduction loop: do-all with privatized accumulators plus a
    tree combine of depth ``ceil(log2 P)`` per invocation."""
    p = machine.threads if threads is None else threads
    base = simulate_doall(invocations, machine, threads=p, streaming=streaming)
    if p == 1:
        return base
    combine = (
        math.ceil(math.log2(p))
        * machine.reduction_combine
        * max(1, n_reduction_vars)
        * len(invocations)
    )
    return SimOutcome(
        threads=p,
        serial_time=base.serial_time,
        parallel_time=base.parallel_time + combine,
        detail=f"reduction: {len(invocations)} invocation(s), "
        f"{n_reduction_vars} var(s)",
    )
