"""Simulated machine model.

All costs are in the interpreter's IR-instruction units.  The defaults are
calibrated once against the qualitative shape of the paper's Table III
(large kernels scale to 32 threads; fine-grained synchronization peaks at
8–16; two-stage pipelines with a sequential stage saturate early) and then
frozen — benchmarks must not tune them per program.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Machine:
    """Overhead parameters of the simulated shared-memory machine."""

    threads: int = 1
    #: cost to fork one task / hand one chunk to a worker
    spawn_cost: float = 60.0
    #: fixed cost of a barrier episode
    barrier_base: float = 50.0
    #: additional barrier cost per participating thread
    barrier_per_thread: float = 12.0
    #: per-chunk cost under dynamic scheduling
    chunk_cost: float = 12.0
    #: per-level cost of a tree reduction combine
    reduction_combine: float = 30.0
    #: synchronization cost per cross-stage handoff in a pipeline
    pipeline_sync: float = 20.0
    #: per-task bookkeeping under a work-stealing runtime (work-first: the
    #: common case pays only a frame push, not a full spawn)
    task_overhead: float = 4.0
    #: memory-bandwidth saturation: bandwidth stops scaling past this many
    #: threads (two memory controllers on the paper's 2×8-core Xeon)
    bw_saturation: int = 6
    #: bandwidth-time units needed to stream one working-set element
    streaming_cost: float = 13.0

    def with_threads(self, threads: int) -> "Machine":
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return replace(self, threads=threads)

    def barrier_cost(self, threads: int | None = None) -> float:
        p = self.threads if threads is None else threads
        return self.barrier_base + self.barrier_per_thread * p

    def parallel_time(
        self,
        work: float,
        threads: int | None = None,
        streaming_fraction: float = 0.0,
    ) -> float:
        """Time for *work* units of parallel computation under the roofline.

        ``streaming_fraction`` is the profile's working-set density
        (:attr:`Profile.streaming_fraction`): the memory subsystem must
        stream ``work × fraction × streaming_cost`` units through a
        bandwidth that saturates at :attr:`bw_saturation` threads.  Compute
        time scales with P; the roofline is the max of the two — this is
        what makes streaming kernels (bicg/gesummv) flatten at ~8 threads
        while high-reuse kernels (2mm) scale to 32, as in Table III.
        """
        p = self.threads if threads is None else threads
        if p <= 1:
            return work
        t_cpu = work / p
        t_mem = (
            work * streaming_fraction * self.streaming_cost / min(p, self.bw_saturation)
        )
        return max(t_cpu, t_mem)


#: the frozen default calibration used by all benchmarks
DEFAULT_MACHINE = Machine()
