"""Command-line interface.

Subcommands::

    repro-patterns analyze FILE --entry NAME [--scalar 5] [--zeros A:40,40]
                                [--rand B:40,40] [--seed 3] [--no-source]
    repro-patterns bench NAME          # analyze a registered benchmark
    repro-patterns list                # list registered benchmarks
    repro-patterns table3              # regenerate the Table III summary

Array arguments are declared positionally in the order the entry function
expects them: ``--scalar``, ``--zeros`` and ``--rand`` options are consumed
left to right.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import analyze_source
from repro.reporting.report import analysis_report


def _parse_array(spec: str, rng: np.random.Generator, kind: str) -> np.ndarray:
    name, _, shape_txt = spec.partition(":")
    if not shape_txt:
        shape_txt = name
    shape = tuple(int(s) for s in shape_txt.split(",") if s)
    if kind == "zeros":
        return np.zeros(shape)
    return rng.random(shape)


class _OrderedArg(argparse.Action):
    def __call__(self, parser, namespace, values, option_string=None):
        items = getattr(namespace, "ordered_args", None)
        if items is None:
            items = []
            namespace.ordered_args = items
        items.append((self.dest, values))


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    call_args = _collect_args(args)
    result = analyze_source(
        source,
        entry=args.entry,
        arg_sets=[call_args],
        hotspot_threshold=args.threshold,
    )
    print(analysis_report(result, include_source=not args.no_source))
    return 0


def _collect_args(args: argparse.Namespace) -> list:
    rng = np.random.default_rng(args.seed)
    call_args = []
    for kind, value in getattr(args, "ordered_args", []) or []:
        if kind == "scalar":
            call_args.append(float(value) if "." in value else int(value))
        else:
            call_args.append(_parse_array(value, rng, kind))
    return call_args


def _cmd_profile(args: argparse.Namespace) -> int:
    """Phase 1 of the DiscoPoP workflow: instrumented run -> profile file."""
    from repro.api import compile_source
    from repro.profiling import profile_runs, save_profile

    source = open(args.file).read()
    program = compile_source(source)
    profile = profile_runs(program, args.entry, [_collect_args(args)])
    with open(args.output, "w") as fh:
        save_profile(profile, fh)
    print(
        f"profile written to {args.output}: {profile.total_cost} instructions, "
        f"{len(profile.deps)} dependence records"
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    """Phase 2: load a saved profile and run the pattern detectors."""
    from repro.api import compile_source
    from repro.patterns.engine import analyze_profile
    from repro.profiling import load_profile

    source = open(args.file).read()
    program = compile_source(source)
    with open(args.profile) as fh:
        profile = load_profile(fh)
    result = analyze_profile(program, profile, hotspot_threshold=args.threshold)
    print(analysis_report(result, include_source=not args.no_source))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench_programs import analyze_benchmark, get_benchmark
    from repro.sim import plan_and_simulate

    spec = get_benchmark(args.name)
    result = analyze_benchmark(args.name)
    print(analysis_report(result, include_source=not args.no_source))
    outcome = plan_and_simulate(result)
    print(
        f"Simulated best speedup: {outcome.best_speedup:.2f}x at "
        f"{outcome.best_threads} threads "
        f"(paper: {spec.paper.speedup}x at {spec.paper.threads})"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.bench_programs import all_benchmarks

    for spec in all_benchmarks():
        print(f"{spec.name:16s} {spec.suite:10s} {spec.paper.pattern}")
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.bench_programs import all_benchmarks, analyze_benchmark
    from repro.patterns import summarize_patterns
    from repro.patterns.engine import primary_pattern_share
    from repro.reporting.tables import format_table
    from repro.sim import plan_and_simulate

    rows = []
    for spec in all_benchmarks():
        result = analyze_benchmark(spec.name)
        label = summarize_patterns(result)
        outcome = plan_and_simulate(result)
        rows.append(
            [
                spec.name,
                spec.suite,
                spec.loc,
                100 * primary_pattern_share(result),
                outcome.best_speedup,
                outcome.best_threads,
                label,
            ]
        )
    print(
        format_table(
            ["Application", "Suite", "LOC", "Hotspot %", "Speedup", "Threads", "Detected Pattern"],
            rows,
            title="Table III (reproduced)",
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.reporting.experiments import generate_experiment_report

    report = generate_experiment_report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-patterns")
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a MiniC source file")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--entry", required=True)
    p_analyze.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_analyze.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_analyze.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--threshold", type=float, default=0.10)
    p_analyze.add_argument("--no-source", action="store_true")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_profile = sub.add_parser(
        "profile", help="phase 1: instrumented run, write a profile file"
    )
    p_profile.add_argument("file")
    p_profile.add_argument("--entry", required=True)
    p_profile.add_argument("--output", "-o", required=True)
    p_profile.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_profile.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_profile.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.set_defaults(func=_cmd_profile)

    p_detect = sub.add_parser(
        "detect", help="phase 2: run pattern detection over a saved profile"
    )
    p_detect.add_argument("file")
    p_detect.add_argument("--profile", required=True)
    p_detect.add_argument("--threshold", type=float, default=0.10)
    p_detect.add_argument("--no-source", action="store_true")
    p_detect.set_defaults(func=_cmd_detect)

    p_bench = sub.add_parser("bench", help="analyze a registered benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--no-source", action="store_true")
    p_bench.set_defaults(func=_cmd_bench)

    p_list = sub.add_parser("list", help="list registered benchmarks")
    p_list.set_defaults(func=_cmd_list)

    p_t3 = sub.add_parser("table3", help="regenerate the Table III summary")
    p_t3.set_defaults(func=_cmd_table3)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the full markdown experiment report"
    )
    p_exp.add_argument("--output", "-o", default=None)
    p_exp.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
