"""Command-line interface.

Subcommands::

    repro-patterns analyze FILE --entry NAME [--scalar 5] [--zeros A:40,40]
                                [--rand B:40,40] [--seed 3] [--no-source]
    repro-patterns bench NAME          # analyze a registered benchmark
    repro-patterns list                # list registered benchmarks
    repro-patterns table3              # regenerate the Table III summary

Array arguments are declared positionally in the order the entry function
expects them: ``--scalar``, ``--zeros`` and ``--rand`` options are consumed
left to right.

``analyze``, ``detect``, ``bench``, and ``table3`` accept ``--json`` to
emit the versioned analysis schema (see ``repro.patterns.schema``) instead
of the text report — pretty-printed by default, one canonical line with
``--compact``.

``bench`` and ``table3`` tolerate per-program failures: ``--timeout`` and
``--retries`` bound each analysis attempt, and ``table3`` renders a failed
program as a row of ``-`` cells plus a failure footer (``--json`` emits the
structured failure record instead).  ``--keep-going`` (the default) exits 0
with partial results; ``--fail-fast`` stops at the first exhausted failure
and exits non-zero.

The service commands talk to the long-lived analysis daemon
(see ``docs/service.md``)::

    repro-patterns serve [--port 8765] [--workers N]   # run the daemon
    repro-patterns submit FILE --entry NAME [inputs]   # queue an analysis
    repro-patterns submit --bench NAME [--wait]        # queue a benchmark
    repro-patterns jobs [--state done]                 # list jobs
    repro-patterns result ID [--wait] [--json]         # fetch one result

The campaign commands drive the experiment harness (``repro.campaign``,
see ``docs/campaigns.md``)::

    repro-patterns campaign run --name NAME [axes]     # execute a grid
    repro-patterns campaign status [--name NAME]       # cell-state counts
    repro-patterns campaign query [filters] [--csv]    # stored results
    repro-patterns campaign query --name NAME --table3 # regenerate Table III

The corpus commands generate and score labeled program corpora
(``repro.corpus``, see ``docs/corpus.md``)::

    repro-patterns corpus generate --count N --seed S --out DIR
    repro-patterns corpus score DIR [--json|--csv]

``campaign run --corpus DIR`` and ``serve --corpus DIR`` register a
generated corpus as sweepable benchmarks for the run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import analyze_source
from repro.reporting.report import analysis_report


def _print_analysis(args: argparse.Namespace, result) -> None:
    """Emit one analysis result per the output flags (--json/--compact)."""
    if getattr(args, "json", False):
        print(result.to_json(pretty=not getattr(args, "compact", False)))
        return
    print(
        analysis_report(
            result,
            include_source=not args.no_source,
            include_trace=not getattr(args, "no_trace", False),
        )
    )


class _OrderedArg(argparse.Action):
    def __call__(self, parser, namespace, values, option_string=None):
        items = getattr(namespace, "ordered_args", None)
        if items is None:
            items = []
            namespace.ordered_args = items
        items.append((self.dest, values))


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    call_args = _collect_args(args)
    result = analyze_source(
        source,
        entry=args.entry,
        arg_sets=[call_args],
        hotspot_threshold=args.threshold,
    )
    _print_analysis(args, result)
    return 0


def _arg_specs(args: argparse.Namespace) -> list[tuple[str, str]]:
    """The ordered --scalar/--zeros/--rand options as a portable spec."""
    return list(getattr(args, "ordered_args", []) or [])


def _collect_args(args: argparse.Namespace) -> list:
    from repro.service.jobs import build_call_args

    return build_call_args(_arg_specs(args), args.seed)


def _make_cache(args: argparse.Namespace):
    from repro.profiling.cache import ProfileCache, default_cache_root

    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache_dir", None)
    return ProfileCache(root=root if root else default_cache_root())


def _cmd_profile(args: argparse.Namespace) -> int:
    """Phase 1 of the DiscoPoP workflow: instrumented run -> profile file."""
    from repro.api import compile_source
    from repro.profiling import save_profile
    from repro.profiling.cache import cached_profile_runs
    from repro.profiling.runner import profile_runs

    source = open(args.file).read()
    program = compile_source(source)
    cache = _make_cache(args)
    if cache is not None:
        profile, hit = cached_profile_runs(
            program, args.entry, [_collect_args(args)], cache=cache,
            engine=args.engine,
        )
        origin = "cache hit" if hit else "instrumented run"
    else:
        profile = profile_runs(
            program, args.entry, [_collect_args(args)], engine=args.engine
        )
        origin = "instrumented run"
    with open(args.output, "w") as fh:
        save_profile(profile, fh)
    print(
        f"profile written to {args.output} ({origin}): "
        f"{profile.total_cost} instructions, "
        f"{len(profile.deps)} dependence records"
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    """Phase 2: run the pattern detectors over a saved or cached profile.

    With ``--profile`` the given dump is used as-is.  Without it, the
    content-addressed cache supplies the profile for (source, inputs,
    config); only on a cache miss is the program re-interpreted.
    """
    from repro.api import compile_source
    from repro.patterns.engine import analyze_profile
    from repro.profiling import load_profile
    from repro.profiling.cache import cached_profile_runs

    source = open(args.file).read()
    program = compile_source(source)
    if args.profile:
        with open(args.profile) as fh:
            profile = load_profile(fh)
    else:
        if args.entry is None:
            print(
                "detect: --entry (plus any --scalar/--zeros/--rand inputs) is "
                "required when no --profile file is given",
                file=sys.stderr,
            )
            return 2
        cache = _make_cache(args)
        if cache is None:
            print("detect: --no-cache requires --profile", file=sys.stderr)
            return 2
        profile, hit = cached_profile_runs(
            program, args.entry, [_collect_args(args)], cache=cache,
            engine=args.engine,
        )
        # Keep stdout pure JSON in --json mode; the provenance note is advisory.
        print(
            f"profile source: {'cache hit' if hit else 'instrumented run'}",
            file=sys.stderr if args.json else sys.stdout,
        )
    result = analyze_profile(program, profile, hotspot_threshold=args.threshold)
    _print_analysis(args, result)
    return 0


_SMOKE_SOURCE = """\
void kernel(float A[][], float x[], float y[], int n) {
    for (int i = 0; i < n; i++) {
        y[i] = 0.0;
        for (int j = 0; j < n; j++) {
            y[i] = y[i] + A[i][j] * x[j];
        }
    }
}
"""


#: Regression tolerance for ``bench --smoke --baseline``: the measured cold
#: serial sweep may exceed the committed baseline by this factor before the
#: gate fails.  Generous on purpose — CI containers share cores and a cold
#: sweep has ±20% run-to-run noise; the gate exists to catch order-of-
#: magnitude regressions (an engine accidentally falling back to the tree
#: walker), not 5% drifts.
BASELINE_TOLERANCE = 0.25


def _check_baseline(args: argparse.Namespace, failures: list) -> None:
    """Gate the cold serial registry sweep against a committed bench report.

    Re-measures ``analyze_registry(parallel=False)`` wall-clock — the same
    quantity ``bench_pipeline_perf.py`` records as
    ``optimized.cold_serial`` — and fails when it regresses more than
    :data:`BASELINE_TOLERANCE` over the committed number.
    """
    import time

    from repro.runtime.parallel import FailedOutcome, analyze_registry

    with open(args.baseline) as fh:
        doc = json.load(fh)
    base_s = doc["optimized"]["cold_serial"]
    budget_s = base_s * (1.0 + BASELINE_TOLERANCE)
    t0 = time.perf_counter()
    outcomes = analyze_registry(parallel=False, engine=args.engine)
    cold_s = time.perf_counter() - t0
    failed = [o.name for o in outcomes if isinstance(o, FailedOutcome)]
    if failed:
        failures.append(f"cold serial sweep had failing programs: {failed}")
    print(
        f"baseline gate: cold serial sweep {cold_s:.2f} s vs committed "
        f"{base_s:.2f} s (budget {budget_s:.2f} s = +{BASELINE_TOLERANCE:.0%})"
    )
    if cold_s > budget_s:
        failures.append(
            f"cold serial sweep regressed: {cold_s:.2f}s > {budget_s:.2f}s "
            f"({BASELINE_TOLERANCE:.0%} over the committed {base_s:.2f}s)"
        )


def _cmd_bench_smoke(args: argparse.Namespace) -> int:
    """Perf smoke check: one small program, uncached then cached.

    Exercises the full fast path (compile -> batched profile -> detect)
    and the content-addressed cache, asserting a store on the cold run and
    a hit (with zero re-execution) on the warm run.  With ``--baseline``
    it additionally re-measures the cold serial registry sweep and fails
    on a regression beyond :data:`BASELINE_TOLERANCE`.
    """
    import tempfile
    import time

    import numpy as np

    from repro.api import compile_source
    from repro.patterns.engine import analyze_profile
    from repro.profiling import profile_digest
    from repro.profiling.cache import ProfileCache, cached_profile_runs

    program = compile_source(_SMOKE_SOURCE)
    rng = np.random.default_rng(0)
    arg_sets = [[rng.random((24, 24)), rng.random(24), rng.random(24), 24]]
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-bench-smoke-")
    cache = ProfileCache(root=cache_dir)

    t0 = time.perf_counter()
    cold_profile, cold_hit = cached_profile_runs(
        program, "kernel", arg_sets, cache=cache, engine=args.engine
    )
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_profile, warm_hit = cached_profile_runs(
        program, "kernel", arg_sets, cache=cache, engine=args.engine
    )
    warm_s = time.perf_counter() - t0

    failures = []
    if cold_hit:
        failures.append("cold run unexpectedly hit the cache")
    if cache.stats.stores != 1:
        failures.append(f"expected 1 cache store, saw {cache.stats.stores}")
    if not warm_hit or cache.stats.hits != 1:
        failures.append("warm run did not hit the cache")
    if profile_digest(cold_profile) != profile_digest(warm_profile):
        failures.append("cached profile digest differs from the computed one")
    result = analyze_profile(program, warm_profile)
    if not result.hotspots:
        failures.append("detection over the cached profile found no hotspots")

    print(f"bench --smoke: cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms")
    print(f"cache: {cache.stats.stores} store(s), {cache.stats.hits} hit(s) at {cache_dir}")
    if args.baseline:
        _check_baseline(args, failures)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: cache exercised; cached and computed profiles identical")
    return 0


def _bench_failure(args: argparse.Namespace, failure) -> int:
    """Render a structured bench failure record (text or --json) and fail."""
    if args.json:
        doc = failure.to_dict()
        if args.compact:
            from repro.profiling.serialize import canonical_json

            print(canonical_json(doc))
        else:
            print(json.dumps(doc, indent=2, sort_keys=True))
        return 1
    print(
        f"bench: analysis of {failure.name!r} FAILED after "
        f"{failure.attempts} attempt(s): {failure.error_type}: {failure.message}",
        file=sys.stderr,
    )
    print(f"bench:   at {failure.traceback_summary}", file=sys.stderr)
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench_programs import analyze_benchmark, get_benchmark
    from repro.runtime.parallel import call_with_timeout, failure_record
    from repro.sim import plan_and_simulate

    if args.smoke:
        return _cmd_bench_smoke(args)
    if args.name is None:
        print("bench: a benchmark name is required (or use --smoke)", file=sys.stderr)
        return 2
    retries = max(0, args.retries)
    for attempt in range(1, retries + 2):
        try:
            spec = get_benchmark(args.name)
            result = call_with_timeout(
                lambda name, _cache: analyze_benchmark(name, engine=args.engine),
                args.name, None, args.timeout,
            )
            break
        except Exception as exc:
            if attempt <= retries:
                continue
            return _bench_failure(args, failure_record(args.name, exc, attempt))
    outcome = plan_and_simulate(result)
    if args.json:
        from repro.patterns.schema import analysis_to_dict
        from repro.profiling.serialize import canonical_json

        doc = analysis_to_dict(result)
        # Extension block: loaders ignore unknown top-level keys, so the
        # document stays a valid analysis schema instance.
        doc["simulation"] = {
            "best_speedup": outcome.best_speedup,
            "best_threads": outcome.best_threads,
            "paper_speedup": spec.paper.speedup,
            "paper_threads": spec.paper.threads,
        }
        if args.compact:
            print(canonical_json(doc))
        else:
            print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(analysis_report(result, include_source=not args.no_source))
    print(
        f"Simulated best speedup: {outcome.best_speedup:.2f}x at "
        f"{outcome.best_threads} threads "
        f"(paper: {spec.paper.speedup}x at {spec.paper.threads})"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.bench_programs import all_benchmarks

    if getattr(args, "json", False):
        # Machine-readable catalog: the names are what the service's
        # submit-by-name endpoint and `repro submit --bench` accept.
        docs = [
            {
                "name": spec.name,
                "suite": spec.suite,
                "entry": spec.entry,
                "loc": spec.loc,
                "paper_pattern": spec.paper.pattern,
                "expected_label": spec.expected_label,
            }
            for spec in all_benchmarks()
        ]
        if getattr(args, "compact", False):
            from repro.profiling.serialize import canonical_json

            print(canonical_json(docs))
        else:
            print(json.dumps(docs, indent=2, sort_keys=True))
        return 0
    for spec in all_benchmarks():
        print(f"{spec.name:16s} {spec.suite:10s} {spec.paper.pattern}")
    return 0


def _failure_footer(failures, total: int) -> str:
    """Human footer naming every failed program and its deciding error."""
    lines = [f"{len(failures)} of {total} program(s) failed:"]
    for f in failures:
        lines.append(
            f"  {f.name}: {f.error_type}: {f.message} "
            f"(attempts={f.attempts})"
        )
        lines.append(f"    at {f.traceback_summary}")
    return "\n".join(lines)


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.reporting.tables import format_table
    from repro.runtime.parallel import FailedOutcome, analyze_registry

    outcomes = analyze_registry(
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        parallel=args.parallel,
        timeout=args.timeout,
        retries=args.retries,
        fail_fast=not args.keep_going,
        engine=args.engine,
    )
    failures = [o for o in outcomes if isinstance(o, FailedOutcome)]
    # --keep-going (default) reports partial results and exits 0; --fail-fast
    # stops at the first exhausted failure and makes the run exit non-zero.
    exit_code = 1 if failures and not args.keep_going else 0
    if args.json:
        from repro.profiling.serialize import canonical_json

        docs = [o.to_dict() for o in outcomes]
        if args.compact:
            print(canonical_json(docs))
        else:
            print(json.dumps(docs, indent=2, sort_keys=True))
        return exit_code
    rows = [
        [o.name, None, None, None, None, None, None]
        if isinstance(o, FailedOutcome)
        else [
            o.name,
            o.suite,
            o.loc,
            100 * o.primary_share,
            o.best_speedup,
            o.best_threads,
            o.label,
        ]
        for o in outcomes
    ]
    print(
        format_table(
            ["Application", "Suite", "LOC", "Hotspot %", "Speedup", "Threads", "Detected Pattern"],
            rows,
            title="Table III (reproduced)",
        )
    )
    if failures:
        print(_failure_footer(failures, len(outcomes)))
    return exit_code


def _print_doc(args: argparse.Namespace, doc) -> None:
    """Emit a JSON document per the --json/--compact flags (always JSON)."""
    if getattr(args, "compact", False):
        from repro.profiling.serialize import canonical_json

        print(canonical_json(doc))
    else:
        print(json.dumps(doc, indent=2, sort_keys=True))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon until interrupted (SIGINT exits cleanly)."""
    from repro.service.server import AnalysisService

    corpus_note = ""
    for directory in args.corpus or ():
        suite, code = _register_cli_corpus("serve", directory)
        if suite is None:
            return code
        corpus_note += f", corpus {suite.name} ({len(suite.entries)} programs)"
    service = AnalysisService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        max_history=args.history,
        jsonl_path=args.log_jobs,
        timeout=args.timeout,
        retries=args.retries,
        backend=args.backend,
        db_path=args.db,
        max_queue=args.max_queue,
    )
    recovered = service.store.recovered
    print(
        f"repro service listening on {service.url} "
        f"({service.executor.workers} {args.backend} workers, "
        f"cache at {service.executor.cache.root}"
        + (f", recovered {recovered} interrupted job(s)" if recovered else "")
        + corpus_note
        + ")",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return 0


def _job_summary_line(record: dict) -> str:
    error = record.get("error") or {}
    suffix = f"  {error.get('error_type')}: {error.get('message')}" if error else ""
    return (
        f"job {record['id']:>4}  {record['kind']:6s} {record['state']:9s}"
        f"{suffix}"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.bench:
            record = client.submit_benchmark(args.bench)
        elif args.sweep:
            record = client.submit_sweep()
        elif args.file:
            if not args.entry:
                print("submit: --entry is required with a source file", file=sys.stderr)
                return 2
            record = client.submit_source(
                open(args.file).read(),
                entry=args.entry,
                args=_arg_specs(args),
                seed=args.seed,
                threshold=args.threshold,
            )
        else:
            print("submit: give a source FILE, --bench NAME, or --sweep", file=sys.stderr)
            return 2
        if args.wait:
            record = client.wait(record["id"], timeout=args.wait_timeout)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"submit: cannot reach {client.url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _print_doc(args, record)
    else:
        print(_job_summary_line(record))
    return 1 if record["state"] == "failed" else 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        records = client.jobs(state=args.state, kind=args.kind, limit=args.limit)
    except (ServiceError, OSError) as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _print_doc(args, records)
        return 0
    if not records:
        print("no jobs")
        return 0
    for record in records:
        print(_job_summary_line(record))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        text = client.metrics()
    except (ServiceError, OSError) as exc:
        print(f"metrics: {exc}", file=sys.stderr)
        return 1
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _render_result_record(record: dict) -> None:
    """Human-readable rendering of a terminal job record."""
    print(_job_summary_line(record))
    error = record.get("error")
    if error:
        print(f"  after {error.get('attempts')} attempt(s) at {error.get('traceback_summary')}")
        return
    result = record.get("result")
    if record["kind"] == "source" and result:
        from repro.patterns.schema import analysis_from_dict

        print(analysis_report(analysis_from_dict(result), include_source=False))
    elif record["kind"] == "bench" and result:
        print(
            f"  {result['name']}: {result['label']} "
            f"({result['best_speedup']:.2f}x at {result['best_threads']} threads)"
        )
    elif record["kind"] == "sweep" and result:
        failed = record.get("info", {}).get("failed", 0)
        print(f"  {len(result)} program(s), {failed} failed")


def _cmd_result(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.wait:
            record = client.wait(args.id, timeout=args.wait_timeout)
        else:
            record = client.job(args.id)
    except TimeoutError as exc:
        print(f"result: {exc}", file=sys.stderr)
        return 2
    except (ServiceError, OSError) as exc:
        print(f"result: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _print_doc(args, record)
    else:
        _render_result_record(record)
    if record["state"] == "done":
        return 0
    return 1 if record["state"] in ("failed", "cancelled") else 2


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.reporting.experiments import generate_experiment_report

    report = generate_experiment_report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


# -- corpus commands -----------------------------------------------------

def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import generate_corpus

    if args.count < 1:
        print("corpus generate: --count must be >= 1", file=sys.stderr)
        return 2
    manifest = generate_corpus(
        args.count, args.seed, args.out, name=args.name,
        adversarial=args.adversarial,
    )
    if args.json:
        _print_doc(args, manifest)
    else:
        print(
            f"corpus {manifest['name']!r}: {manifest['count']} program(s) "
            f"written to {args.out} "
            f"(digest {manifest['corpus_digest'][:12]})"
        )
    return 0


def _cmd_corpus_score(args: argparse.Namespace) -> int:
    from repro.corpus import load_corpus, score_entries, score_csv, score_table

    try:
        suite = load_corpus(args.dir)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"corpus score: cannot load {args.dir!r}: {exc}", file=sys.stderr)
        return 2
    score = score_entries(suite, cache=_make_cache(args), engine=args.engine)
    if args.json:
        _print_doc(args, score)
    elif args.csv:
        print(score_csv(score), end="")
    else:
        print(score_table(score))
    return 1 if score["mismatches"] else 0


def _register_cli_corpus(command: str, directory: str):
    """Load + register a corpus directory for a CLI run; exits via the
    returned code on failure (None on success)."""
    from repro.corpus import register_corpus

    try:
        return register_corpus(directory), None
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"{command}: cannot load corpus {directory!r}: {exc}", file=sys.stderr)
        return None, 2


# -- learn commands ------------------------------------------------------

def _load_corpus_or_fail(command: str, directory: str):
    """Shared corpus loader for the learn commands: (suite, exit_code)."""
    from repro.corpus import load_corpus

    try:
        return load_corpus(directory), None
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"{command}: cannot load corpus {directory!r}: {exc}",
              file=sys.stderr)
        return None, 2


def _cmd_learn_features(args: argparse.Namespace) -> int:
    from repro.learn import corpus_features, features_csv, features_table

    suite, code = _load_corpus_or_fail("learn features", args.dir)
    if suite is None:
        return code
    doc = corpus_features(
        suite, cache=_make_cache(args), engine=args.engine,
        parallel=args.parallel,
    )
    if args.json:
        _print_doc(args, doc)
    elif args.csv:
        print(features_csv(doc), end="")
    else:
        print(features_table(doc))
    return 0


def _cmd_learn_train(args: argparse.Namespace) -> int:
    from repro.learn import train_on_corpus

    suite, code = _load_corpus_or_fail("learn train", args.dir)
    if suite is None:
        return code
    try:
        model = train_on_corpus(
            suite, kind=args.model, seed=args.seed, holdout=args.holdout,
            cache=_make_cache(args), engine=args.engine,
            parallel=args.parallel,
        )
    except ValueError as exc:
        print(f"learn train: {exc}", file=sys.stderr)
        return 2
    if args.out:
        model.save(args.out)
    if args.json:
        _print_doc(args, model.doc)
    else:
        where = f" -> {args.out}" if args.out else ""
        print(
            f"trained {model.kind} on {suite.name!r} "
            f"({model.doc['examples']} program(s), seed {args.seed}); "
            f"digest {model.model_digest[:12]}{where}"
        )
    return 0


def _cmd_learn_eval(args: argparse.Namespace) -> int:
    from repro.learn import comparison_csv, comparison_table, evaluate_corpus

    suite, code = _load_corpus_or_fail("learn eval", args.dir)
    if suite is None:
        return code
    try:
        doc = evaluate_corpus(
            suite, kind=args.model, seed=args.seed, holdout=args.holdout,
            cache=_make_cache(args), engine=args.engine,
            parallel=args.parallel,
        )
    except ValueError as exc:
        print(f"learn eval: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _print_doc(args, doc)
    elif args.csv:
        print(comparison_csv(doc), end="")
    else:
        print(comparison_table(doc))
    return 0


# -- campaign commands ---------------------------------------------------

def _campaign_cells(args: argparse.Namespace):
    """Expand the run's axis flags into the cell grid."""
    from repro.campaign.grid import default_grid

    thresholds = tuple(
        None if t in ("spec", "none") else float(t) for t in args.thresholds
    )
    return default_grid(
        programs=args.programs or None,
        machines=tuple(args.machines),
        scales=tuple(args.scales),
        thresholds=thresholds,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, run_campaign
    from repro.service.client import ServiceClient, ServiceError

    if getattr(args, "corpus", None):
        # A corpus directory is a grid-axis source: its programs become
        # registry benchmarks (exported via REPRO_CORPUS_PATH so the
        # daemon's worker processes resolve them too), and when no
        # --programs subset is named the grid is the corpus itself rather
        # than the whole registry.
        suite, code = _register_cli_corpus("campaign run", args.corpus)
        if suite is None:
            return code
        if not args.programs:
            args.programs = suite.names()
    try:
        cells = _campaign_cells(args)
    except ValueError as exc:
        print(f"campaign run: {exc}", file=sys.stderr)
        return 2
    store = CampaignStore(args.db)
    service = None
    try:
        if args.url:
            client = ServiceClient(args.url)
        else:
            # no daemon named: boot an embedded one for the run's duration
            from repro.service.server import AnalysisService

            service = AnalysisService(
                port=0, workers=args.workers, cache_dir=args.cache_dir
            )
            service.start_background()
            client = ServiceClient(service.url)
        try:
            client.wait_healthy(timeout=30.0)
        except (ServiceError, OSError) as exc:
            print(f"campaign run: cannot reach {client.url}: {exc}", file=sys.stderr)
            return 1
        summary = run_campaign(
            store, client, args.name, cells, timeout=args.timeout
        )
    finally:
        store.close()
        if service is not None:
            service.shutdown()
    if args.json:
        _print_doc(args, summary)
    else:
        print(
            f"campaign {args.name!r}: {summary['cells']} cell(s) — "
            f"{summary['submitted']} submitted, "
            f"{summary['reused_store']} from store, "
            f"{summary['reused_resume']} already done, "
            f"{summary['failed']} failed"
        )
    return 1 if summary["failed"] else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore

    store = CampaignStore(args.db)
    try:
        if args.name:
            docs = [store.status(args.name)]
        else:
            docs = store.campaigns()
    finally:
        store.close()
    if args.json:
        _print_doc(args, docs if args.name is None else docs[0])
        return 0
    if not docs or docs == [{"campaign": args.name, "cells": 0,
                             "states": {"pending": 0, "done": 0, "failed": 0},
                             "complete": False}]:
        print("no campaigns recorded" if not args.name
              else f"campaign {args.name!r} not found")
        return 1 if args.name else 0
    for status in docs:
        states = status["states"]
        print(
            f"{status['campaign']}: {status['cells']} cell(s) — "
            f"{states['done']} done, {states['failed']} failed, "
            f"{states['pending']} pending"
            + ("  [complete]" if status["complete"] else "")
        )
    return 0


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore
    from repro.campaign.query import (
        baseline_deltas,
        deltas_table,
        group_records,
        groups_table,
        query_records,
        records_table,
        records_to_csv,
        table3_docs,
    )

    store = CampaignStore(args.db)
    try:
        if args.table3:
            if not args.name:
                print("campaign query: --table3 requires --name", file=sys.stderr)
                return 2
            try:
                docs = table3_docs(store, args.name)
            except ValueError as exc:
                print(f"campaign query: {exc}", file=sys.stderr)
                return 1
            if args.json:
                _print_doc(args, docs)
            else:
                print(_table3_text(docs))
            return 0
        if args.baseline:
            if not args.name:
                print("campaign query: --baseline requires --name", file=sys.stderr)
                return 2
            rows = baseline_deltas(store, args.name, args.baseline)
            if args.json:
                _print_doc(args, rows)
            else:
                print(deltas_table(rows, args.name, args.baseline))
            return 0
        records = query_records(
            store,
            campaign=args.name,
            program=args.program,
            machine=args.machine,
            scale=args.scale,
            threshold=args.threshold,
        )
        if args.group_by:
            try:
                groups = group_records(records, args.group_by)
            except ValueError as exc:
                print(f"campaign query: {exc}", file=sys.stderr)
                return 2
            if args.json:
                _print_doc(args, groups)
            elif args.csv:
                print(_groups_csv(groups, args.group_by), end="")
            else:
                print(groups_table(groups, args.group_by))
            return 0
        if args.csv:
            print(records_to_csv(records), end="")
        elif args.json:
            _print_doc(args, records)
        else:
            print(records_table(records))
        return 0
    finally:
        store.close()


def _table3_text(docs: list) -> str:
    """Render stored Table III documents with the live command's table."""
    from repro.reporting.tables import format_table

    rows = [
        [doc.get("name"), None, None, None, None, None, None]
        if doc.get("failed")
        else [
            doc["name"],
            doc["suite"],
            doc["loc"],
            100 * doc["primary_share"],
            doc["best_speedup"],
            doc["best_threads"],
            doc["label"],
        ]
        for doc in docs
    ]
    return format_table(
        ["Application", "Suite", "LOC", "Hotspot %", "Speedup", "Threads",
         "Detected Pattern"],
        rows,
        title="Table III (from stored campaign)",
    )


def _groups_csv(groups: list, keys: list) -> str:
    import csv
    import io as _io

    buffer = _io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    fields = list(keys) + ["cells", "done", "geomean_speedup", "max_speedup"]
    writer.writerow(fields)
    for group in groups:
        writer.writerow(["" if group.get(f) is None else group.get(f) for f in fields])
    return buffer.getvalue()


def _add_engine_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--engine", choices=["compiled", "tree"],
                            default="compiled",
                            help="execution engine for instrumented runs: "
                                 "compiled closures (default) or the tree-"
                                 "walking reference interpreter; profiles "
                                 "are identical either way")


def _add_json_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("--json", action="store_true",
                            help="emit the versioned analysis schema as JSON")
    sub_parser.add_argument("--compact", action="store_true",
                            help="with --json: one canonical line instead of "
                                 "pretty-printed output")


def _add_service_url(sub_parser: argparse.ArgumentParser) -> None:
    from repro.service.client import default_service_url

    sub_parser.add_argument("--url", default=default_service_url(),
                            help="daemon address (default: $REPRO_SERVICE_URL "
                                 "or http://127.0.0.1:8765)")


def main(argv: list[str] | None = None) -> int:
    from repro import __version__

    parser = argparse.ArgumentParser(prog="repro-patterns")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a MiniC source file")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--entry", required=True)
    p_analyze.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_analyze.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_analyze.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--threshold", type=float, default=0.10)
    p_analyze.add_argument("--no-source", action="store_true")
    p_analyze.add_argument("--no-trace", action="store_true",
                           help="omit the detection trace from the text report")
    _add_json_flags(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_profile = sub.add_parser(
        "profile", help="phase 1: instrumented run, write a profile file"
    )
    p_profile.add_argument("file")
    p_profile.add_argument("--entry", required=True)
    p_profile.add_argument("--output", "-o", required=True)
    p_profile.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_profile.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_profile.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--cache-dir", default=None,
                           help="profile cache directory (default: "
                                "$REPRO_PROFILE_CACHE or ~/.cache/repro/profiles)")
    p_profile.add_argument("--no-cache", action="store_true",
                           help="always re-run the instrumented engine")
    _add_engine_flag(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_detect = sub.add_parser(
        "detect", help="phase 2: run pattern detection over a saved or cached profile"
    )
    p_detect.add_argument("file")
    p_detect.add_argument("--profile", default=None,
                          help="profile dump from `profile -o`; omit to use "
                               "the content-addressed cache")
    p_detect.add_argument("--entry", default=None,
                          help="entry function (cached mode, no --profile)")
    p_detect.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_detect.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_detect.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_detect.add_argument("--seed", type=int, default=0)
    p_detect.add_argument("--cache-dir", default=None)
    p_detect.add_argument("--no-cache", action="store_true")
    p_detect.add_argument("--threshold", type=float, default=0.10)
    p_detect.add_argument("--no-source", action="store_true")
    p_detect.add_argument("--no-trace", action="store_true",
                          help="omit the detection trace from the text report")
    _add_engine_flag(p_detect)
    _add_json_flags(p_detect)
    p_detect.set_defaults(func=_cmd_detect)

    p_bench = sub.add_parser("bench", help="analyze a registered benchmark")
    p_bench.add_argument("name", nargs="?", default=None)
    p_bench.add_argument("--smoke", action="store_true",
                         help="fast perf smoke check: one small program through "
                              "the uncached and cached paths")
    p_bench.add_argument("--cache-dir", default=None,
                         help="cache directory for --smoke (default: fresh temp dir)")
    p_bench.add_argument("--no-source", action="store_true")
    p_bench.add_argument("--timeout", type=float, default=None,
                         help="per-attempt analysis timeout in seconds")
    p_bench.add_argument("--retries", type=int, default=0,
                         help="re-run a failing analysis up to N extra times")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="with --smoke: committed BENCH_pipeline.json to "
                              "gate the cold serial sweep against (fails on a "
                              ">25%% regression)")
    _add_engine_flag(p_bench)
    _add_json_flags(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_list = sub.add_parser("list", help="list registered benchmarks")
    _add_json_flags(p_list)
    p_list.set_defaults(func=_cmd_list)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived analysis daemon (HTTP job queue)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent analysis workers")
    p_serve.add_argument("--cache-dir", default=None,
                         help="shared profile cache directory (default: "
                              "$REPRO_PROFILE_CACHE or ~/.cache/repro/profiles)")
    p_serve.add_argument("--history", type=int, default=256,
                         help="finished jobs retained in memory")
    p_serve.add_argument("--log-jobs", default=None, metavar="PATH",
                         help="append every job transition to this JSONL file")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="default per-program timeout for sweep jobs")
    p_serve.add_argument("--retries", type=int, default=0,
                         help="default retry budget for submitted jobs")
    p_serve.add_argument("--backend", choices=["thread", "process"],
                         default="thread",
                         help="execution backend: 'thread' runs jobs in the "
                              "claiming worker thread (GIL-bound, no per-job "
                              "timeouts), 'process' fans them over a process "
                              "pool (parallel, real SIGALRM timeouts)")
    p_serve.add_argument("--db", default=None, metavar="PATH",
                         help="sqlite path for durable jobs: queued work is "
                              "re-enqueued and finished results served warm "
                              "across daemon restarts")
    p_serve.add_argument("--max-queue", type=int, default=None,
                         help="admission-control bound on queued jobs; a full "
                              "queue answers 429 with a Retry-After hint")
    p_serve.add_argument("--corpus", action="append", default=None, metavar="DIR",
                         help="register a generated corpus directory as "
                              "benchmarks before serving (repeatable); its "
                              "programs become valid bench/sweep job names")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running analysis daemon"
    )
    p_submit.add_argument("file", nargs="?", default=None,
                          help="MiniC source file to analyze")
    p_submit.add_argument("--entry", default=None)
    p_submit.add_argument("--scalar", action=_OrderedArg, dest="scalar")
    p_submit.add_argument("--zeros", action=_OrderedArg, dest="zeros")
    p_submit.add_argument("--rand", action=_OrderedArg, dest="rand")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--threshold", type=float, default=None)
    p_submit.add_argument("--bench", default=None, metavar="NAME",
                          help="submit a registered benchmark instead of a file")
    p_submit.add_argument("--sweep", action="store_true",
                          help="submit a full registry sweep")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes")
    p_submit.add_argument("--wait-timeout", type=float, default=300.0)
    _add_service_url(p_submit)
    _add_json_flags(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list jobs on a running daemon")
    p_jobs.add_argument("--state", default=None,
                        choices=["queued", "running", "done", "failed", "cancelled"])
    p_jobs.add_argument("--kind", default=None, choices=["source", "bench", "sweep"])
    p_jobs.add_argument("--limit", type=int, default=None, metavar="N",
                        help="truncate the newest-first listing to N jobs "
                             "(0 means none)")
    _add_service_url(p_jobs)
    _add_json_flags(p_jobs)
    p_jobs.set_defaults(func=_cmd_jobs)

    p_metrics = sub.add_parser(
        "metrics",
        help="print a running daemon's /v1/metrics (Prometheus text format)",
    )
    _add_service_url(p_metrics)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_result = sub.add_parser(
        "result", help="fetch one job's status and result from the daemon"
    )
    p_result.add_argument("id", type=int)
    p_result.add_argument("--wait", action="store_true",
                          help="block until the job reaches a terminal state")
    p_result.add_argument("--wait-timeout", type=float, default=300.0)
    _add_service_url(p_result)
    _add_json_flags(p_result)
    p_result.set_defaults(func=_cmd_result)

    p_t3 = sub.add_parser("table3", help="regenerate the Table III summary")
    p_t3.add_argument("--parallel", action=argparse.BooleanOptionalAction, default=True,
                      help="fan per-benchmark analyses over worker processes")
    p_t3.add_argument("--jobs", "-j", type=int, default=None,
                      help="worker process count (default: cpu count)")
    p_t3.add_argument("--cache-dir", default=None,
                      help="shared profile cache directory for the workers")
    p_t3.add_argument("--timeout", type=float, default=None,
                      help="per-program analysis timeout in seconds")
    p_t3.add_argument("--retries", type=int, default=0,
                      help="re-run a failing program up to N extra times "
                           "(exponential backoff)")
    p_t3.add_argument("--keep-going", dest="keep_going", action="store_true",
                      default=True,
                      help="report partial results and exit 0 when some "
                           "programs fail (default)")
    p_t3.add_argument("--fail-fast", dest="keep_going", action="store_false",
                      help="stop the sweep at the first exhausted failure "
                           "and exit non-zero")
    _add_engine_flag(p_t3)
    _add_json_flags(p_t3)
    p_t3.set_defaults(func=_cmd_table3)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the full markdown experiment report"
    )
    p_exp.add_argument("--output", "-o", default=None)
    p_exp.set_defaults(func=_cmd_experiments)

    from repro.campaign.grid import MACHINE_MODELS
    from repro.campaign.store import default_campaign_db

    p_camp = sub.add_parser(
        "campaign", help="run and query experiment campaigns (docs/campaigns.md)"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_db(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--db", default=str(default_campaign_db()), metavar="PATH",
            help="campaign results database (default: $REPRO_CAMPAIGN_DB "
                 "or ~/.cache/repro/campaigns.sqlite)")

    p_crun = camp_sub.add_parser(
        "run", help="execute a (program x machine x scale x threshold) grid"
    )
    p_crun.add_argument("--name", required=True, help="campaign name "
                        "(rerunning a name resumes its pending cells)")
    p_crun.add_argument("--programs", nargs="*", default=None, metavar="NAME",
                        help="benchmark subset (default: the whole registry, "
                             "or the corpus when --corpus is given)")
    p_crun.add_argument("--corpus", default=None, metavar="DIR",
                        help="register a generated corpus directory and grid "
                             "over its programs (restrict further with "
                             "--programs)")
    p_crun.add_argument("--machines", nargs="*", default=["default"],
                        choices=sorted(MACHINE_MODELS),
                        help="named machine models to sweep")
    p_crun.add_argument("--scales", nargs="*", type=float, default=[1.0],
                        metavar="S", help="input-scale factors to sweep")
    p_crun.add_argument("--thresholds", nargs="*", default=["spec"], metavar="T",
                        help="hotspot thresholds to sweep ('spec' = each "
                             "benchmark's own default)")
    p_crun.add_argument("--url", default=None,
                        help="daemon address (default: boot an embedded "
                             "daemon for this run)")
    p_crun.add_argument("--workers", type=int, default=2,
                        help="embedded daemon worker count (ignored with --url)")
    p_crun.add_argument("--cache-dir", default=None,
                        help="embedded daemon profile cache (ignored with --url)")
    p_crun.add_argument("--timeout", type=float, default=300.0,
                        help="per-cell completion timeout in seconds")
    _add_campaign_db(p_crun)
    _add_json_flags(p_crun)
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cstat = camp_sub.add_parser(
        "status", help="cell-state counts for one or all campaigns"
    )
    p_cstat.add_argument("--name", default=None)
    _add_campaign_db(p_cstat)
    _add_json_flags(p_cstat)
    p_cstat.set_defaults(func=_cmd_campaign_status)

    p_cq = camp_sub.add_parser(
        "query", help="filter, aggregate, and export stored campaign results"
    )
    p_cq.add_argument("--name", default=None, help="restrict to one campaign")
    p_cq.add_argument("--program", default=None)
    p_cq.add_argument("--machine", default=None)
    p_cq.add_argument("--scale", type=float, default=None)
    p_cq.add_argument("--threshold", type=float, default=None)
    p_cq.add_argument("--group-by", nargs="*", default=None, metavar="KEY",
                      help="aggregate with geomean speedups by axis keys "
                           "(campaign/program/machine/scale/threshold/label)")
    p_cq.add_argument("--baseline", default=None, metavar="CAMPAIGN",
                      help="per-cell regression deltas of --name vs this "
                           "baseline campaign")
    p_cq.add_argument("--csv", action="store_true",
                      help="emit CSV instead of a text table")
    p_cq.add_argument("--table3", action="store_true",
                      help="emit the campaign's default-grid cells as "
                           "Table III (byte-identical to `table3 --json`)")
    _add_campaign_db(p_cq)
    _add_json_flags(p_cq)
    p_cq.set_defaults(func=_cmd_campaign_query)

    p_corpus = sub.add_parser(
        "corpus", help="generate and score labeled program corpora (docs/corpus.md)"
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_cgen = corpus_sub.add_parser(
        "generate", help="write a deterministic labeled corpus directory"
    )
    p_cgen.add_argument("--count", type=int, required=True, metavar="N",
                        help="number of programs to generate")
    p_cgen.add_argument("--seed", type=int, default=0,
                        help="generation seed; (count, seed) fully determines "
                             "every byte of the corpus")
    p_cgen.add_argument("--out", required=True, metavar="DIR",
                        help="corpus directory (created if needed)")
    p_cgen.add_argument("--name", default=None,
                        help="corpus name (default: corpus-s<seed>-n<count>)")
    p_cgen.add_argument("--adversarial", action="store_true",
                        help="include the near-miss adversarial templates in "
                             "the round-robin rotation (default name gains "
                             "an adv- prefix)")
    _add_json_flags(p_cgen)
    p_cgen.set_defaults(func=_cmd_corpus_generate)

    p_cscore = corpus_sub.add_parser(
        "score", help="run the detectors over a corpus and score them "
                      "against its ground-truth labels"
    )
    p_cscore.add_argument("dir", metavar="DIR", help="corpus directory")
    p_cscore.add_argument("--cache-dir", default=None,
                          help="profile cache directory (default: "
                               "$REPRO_PROFILE_CACHE or ~/.cache/repro/profiles)")
    p_cscore.add_argument("--no-cache", action="store_true",
                          help="always re-run the instrumented engine")
    p_cscore.add_argument("--csv", action="store_true",
                          help="emit the per-detector table as CSV")
    _add_engine_flag(p_cscore)
    _add_json_flags(p_cscore)
    p_cscore.set_defaults(func=_cmd_corpus_score)

    p_learn = sub.add_parser(
        "learn", help="learned detection baseline: extract features, train "
                      "classifiers, and judge them against the rule-based "
                      "detectors (docs/learned.md)"
    )
    learn_sub = p_learn.add_subparsers(dest="learn_command", required=True)

    def _add_learn_common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("dir", metavar="DIR", help="corpus directory")
        sub_parser.add_argument("--cache-dir", default=None,
                                help="profile cache directory (default: "
                                     "$REPRO_PROFILE_CACHE or "
                                     "~/.cache/repro/profiles)")
        sub_parser.add_argument("--no-cache", action="store_true",
                                help="always re-run the instrumented engine")
        sub_parser.add_argument("--parallel", action="store_true",
                                help="extract features with a process pool "
                                     "(output is byte-identical to serial)")
        _add_engine_flag(sub_parser)
        _add_json_flags(sub_parser)

    def _add_learn_model_flags(sub_parser: argparse.ArgumentParser,
                               default_holdout: float) -> None:
        from repro.learn import MODEL_KINDS

        sub_parser.add_argument("--model", choices=list(MODEL_KINDS),
                                default="logistic",
                                help="classifier family (default: logistic)")
        sub_parser.add_argument("--seed", type=int, default=7,
                                help="split/training seed (default: 7)")
        sub_parser.add_argument("--holdout", type=float,
                                default=default_holdout,
                                help="fraction of the corpus held out of "
                                     f"training (default: {default_holdout})")

    p_lfeat = learn_sub.add_parser(
        "features", help="extract the versioned feature vector for every "
                         "corpus program"
    )
    _add_learn_common(p_lfeat)
    p_lfeat.add_argument("--csv", action="store_true",
                         help="emit one row per program with all features")
    p_lfeat.set_defaults(func=_cmd_learn_features)

    p_ltrain = learn_sub.add_parser(
        "train", help="train a model artifact on a corpus (byte-deterministic "
                      "for fixed seed and corpus)"
    )
    _add_learn_common(p_ltrain)
    _add_learn_model_flags(p_ltrain, default_holdout=0.0)
    p_ltrain.add_argument("--out", default=None, metavar="FILE",
                          help="write the JSON model artifact here")
    p_ltrain.set_defaults(func=_cmd_learn_train)

    p_leval = learn_sub.add_parser(
        "eval", help="train on the corpus' train split and report per-pattern "
                     "precision/recall/F1 for the learned model and the "
                     "rule-based detectors on the same held-out programs"
    )
    _add_learn_common(p_leval)
    _add_learn_model_flags(p_leval, default_holdout=0.3)
    p_leval.add_argument("--csv", action="store_true",
                         help="emit the comparison table as CSV")
    p_leval.set_defaults(func=_cmd_learn_eval)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
