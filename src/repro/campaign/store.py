"""The campaign results store: WAL sqlite, content-addressed results.

Two tables, mirroring the service's durability layer
(:mod:`repro.service.store`) but organized for analytics instead of job
lifecycle:

``results(digest → doc)``
    The content-addressed layer.  One row per *distinct piece of work* —
    the digest is :func:`repro.service.jobs.job_digest` over the cell's
    bench payload, so a result document is stored once no matter how many
    campaigns contain the cell, and a rerun finds it **without touching
    the service at all** (the digest-keyed warm path the acceptance
    criteria measure).

``cells(campaign, cell_id → coordinates, digest, state)``
    The campaign layer.  One row per planned cell per campaign: its axis
    coordinates, its digest (the join key into ``results``), its state
    (``pending``/``done``/``failed``) and, for failures, the structured
    error document.  ``campaign run`` writes every planned cell up front
    as ``pending``, so an interrupted campaign knows exactly what remains
    (``campaign status`` after a daemon kill reads this table).

Documents are deterministic JSON text (sorted keys, canonical
separators): what was stored is re-emitted byte-identically across
restarts, which is what lets ``campaign query --table3`` reproduce
Table III exactly.

Like the service's sqlite log, one connection is shared under one lock,
WAL mode, ``synchronous=NORMAL``.  Unlike it, writes are **not**
best-effort: a campaign store that cannot record results is useless, so
errors propagate.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

_ENV_VAR = "REPRO_CAMPAIGN_DB"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    digest      TEXT PRIMARY KEY,
    doc         TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    campaign    TEXT NOT NULL,
    cell_id     TEXT NOT NULL,
    program     TEXT NOT NULL,
    machine     TEXT NOT NULL,
    scale       REAL NOT NULL,
    threshold   REAL,
    digest      TEXT NOT NULL,
    state       TEXT NOT NULL DEFAULT 'pending',
    error       TEXT,
    ord         INTEGER NOT NULL DEFAULT 0,
    updated_at  REAL NOT NULL,
    PRIMARY KEY (campaign, cell_id)
);
CREATE INDEX IF NOT EXISTS cells_digest ON cells(digest);
CREATE INDEX IF NOT EXISTS cells_state ON cells(campaign, state);
"""


def default_campaign_db() -> Path:
    """``$REPRO_CAMPAIGN_DB``, else a sibling of the profile cache."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "campaigns.sqlite"


def _dump(doc: Any) -> str | None:
    """Canonical JSON text for a document column (None stays NULL)."""
    if doc is None:
        return None
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _load(text: str | None) -> Any:
    return None if text is None else json.loads(text)


class CampaignStore:
    """One WAL-mode sqlite file holding campaigns and their results."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_campaign_db()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- results: the content-addressed layer -----------------------------

    def get_result(self, digest: str) -> Any | None:
        """The stored result document for *digest*, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc FROM results WHERE digest = ?", (digest,)
            ).fetchone()
        return _load(row[0]) if row else None

    def put_result(self, digest: str, doc: Any) -> None:
        """Store *doc* under *digest* (idempotent — content-addressed)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO results VALUES (?, ?, ?)",
                (digest, _dump(doc), time.time()),
            )
            self._conn.commit()

    def result_count(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    # -- cells: the campaign layer ----------------------------------------

    def plan_cells(self, campaign: str, cells: list) -> int:
        """Record every planned cell as ``pending`` (idempotent resume).

        Cells the campaign already holds keep their state — a rerun of
        ``campaign run`` only adds coordinates it has not seen.  Returns
        the number of newly planned cells.
        """
        from repro.campaign.grid import cell_digest

        now = time.time()
        added = 0
        with self._lock:
            for index, cell in enumerate(cells):
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO cells "
                    "(campaign, cell_id, program, machine, scale, threshold, "
                    " digest, state, error, ord, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, 'pending', NULL, ?, ?)",
                    (
                        campaign,
                        cell.cell_id,
                        cell.program,
                        cell.machine,
                        cell.scale,
                        cell.threshold,
                        cell_digest(cell),
                        index,
                        now,
                    ),
                )
                added += cursor.rowcount
            self._conn.commit()
        return added

    def mark_cell(
        self,
        campaign: str,
        cell_id: str,
        state: str,
        error: Any | None = None,
    ) -> None:
        """Transition one planned cell (``done``/``failed``/``pending``)."""
        with self._lock:
            self._conn.execute(
                "UPDATE cells SET state = ?, error = ?, updated_at = ? "
                "WHERE campaign = ? AND cell_id = ?",
                (state, _dump(error), time.time(), campaign, cell_id),
            )
            self._conn.commit()

    def cells(self, campaign: str, state: str | None = None) -> list[dict[str, Any]]:
        """Planned cells of *campaign* in plan order, as plain dicts."""
        sql = (
            "SELECT campaign, cell_id, program, machine, scale, threshold, "
            "digest, state, error, ord FROM cells WHERE campaign = ?"
        )
        params: list[Any] = [campaign]
        if state is not None:
            sql += " AND state = ?"
            params.append(state)
        sql += " ORDER BY ord, cell_id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [
            {
                "campaign": r[0],
                "cell_id": r[1],
                "program": r[2],
                "machine": r[3],
                "scale": r[4],
                "threshold": r[5],
                "digest": r[6],
                "state": r[7],
                "error": _load(r[8]),
                "ord": r[9],
            }
            for r in rows
        ]

    def status(self, campaign: str) -> dict[str, Any]:
        """Per-state cell counts for one campaign."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM cells WHERE campaign = ? "
                "GROUP BY state",
                (campaign,),
            ).fetchall()
        states = {state: 0 for state in ("pending", "done", "failed")}
        states.update(dict(rows))
        return {
            "campaign": campaign,
            "cells": sum(states.values()),
            "states": states,
            "complete": states["pending"] == 0 and sum(states.values()) > 0,
        }

    def campaigns(self) -> list[dict[str, Any]]:
        """Every campaign in the store with its cell counts, sorted by name."""
        with self._lock:
            names = [
                r[0]
                for r in self._conn.execute(
                    "SELECT DISTINCT campaign FROM cells ORDER BY campaign"
                )
            ]
        return [self.status(name) for name in names]
