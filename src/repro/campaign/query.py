"""Query and aggregation over the campaign results store.

Everything here is a pure function of :class:`CampaignStore` contents —
deterministic output for deterministic input, which is why CSV exports
and the ``--table3`` path are byte-stable across daemon restarts.

The layers:

* :func:`query_records` — filter cells (by campaign / program / machine /
  scale / threshold / state), join each to its stored result document,
  and wrap the pair in the versioned campaign-record envelope
  (:func:`repro.patterns.schema.campaign_record`);
* :func:`group_records` — group-by over axis keys with cell counts and
  geometric-mean speedups (the paper reports speedups; geomean is the
  only defensible cross-program average of ratios);
* :func:`baseline_deltas` — per-cell regression deltas of one campaign
  against a named baseline campaign (matched on ``cell_id``);
* :func:`records_to_csv` / :func:`records_table` /
  :func:`groups_table` / :func:`deltas_table` — CSV and text rendering;
* :func:`table3_docs` — the closure proof: the stored default-grid
  documents in registry order, byte-identical to ``repro table3 --json``.
"""

from __future__ import annotations

import io
import math
from typing import Any, Sequence

from repro.campaign.store import CampaignStore
from repro.patterns.schema import campaign_record

#: axis keys group-by accepts (``label`` is read from the result document)
GROUP_KEYS = ("campaign", "program", "machine", "scale", "threshold", "label")


def query_records(
    store: CampaignStore,
    campaign: str | None = None,
    program: str | None = None,
    machine: str | None = None,
    scale: float | None = None,
    threshold: float | None = None,
    state: str | None = None,
) -> list[dict[str, Any]]:
    """Filtered campaign-cell records with their result documents joined.

    ``campaign=None`` spans every campaign in the store (sorted by name;
    cells in plan order within each).  Each record is the versioned
    ``campaign_cell`` envelope; ``result`` holds the stored outcome
    document (None for pending/failed cells) and ``error`` the structured
    failure record.
    """
    names = (
        [campaign]
        if campaign is not None
        else [c["campaign"] for c in store.campaigns()]
    )
    records = []
    for name in names:
        for cell in store.cells(name, state=state):
            if program is not None and cell["program"] != program:
                continue
            if machine is not None and cell["machine"] != machine:
                continue
            if scale is not None and cell["scale"] != scale:
                continue
            if threshold is not None and cell["threshold"] != threshold:
                continue
            cell.pop("ord", None)
            cell["result"] = (
                store.get_result(cell["digest"]) if cell["state"] == "done" else None
            )
            records.append(campaign_record(cell))
    return records


def _speedup(record: dict[str, Any]) -> float | None:
    result = record.get("result")
    if isinstance(result, dict):
        value = result.get("best_speedup")
        if isinstance(value, (int, float)) and value > 0:
            return float(value)
    return None


def geomean(values: Sequence[float]) -> float | None:
    """Geometric mean of positive *values* (None when empty)."""
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def group_records(
    records: Sequence[dict[str, Any]], keys: Sequence[str]
) -> list[dict[str, Any]]:
    """Group-by over *keys* with counts and geomean speedups.

    Keys come from :data:`GROUP_KEYS`; ``label`` groups by the detected
    pattern in each cell's result document.  Groups are emitted in sorted
    key order.  ``geomean_speedup`` is None for groups with no successful
    cells.
    """
    bad = sorted(set(keys) - set(GROUP_KEYS))
    if bad:
        raise ValueError(f"unknown group keys {bad!r}; expected {GROUP_KEYS}")

    def key_value(record: dict[str, Any], key: str) -> Any:
        if key == "label":
            result = record.get("result")
            return result.get("label") if isinstance(result, dict) else None
        return record.get(key)

    groups: dict[tuple, dict[str, Any]] = {}
    for record in records:
        group_key = tuple(key_value(record, k) for k in keys)
        group = groups.setdefault(
            group_key,
            {**dict(zip(keys, group_key)), "cells": 0, "done": 0, "_speedups": []},
        )
        group["cells"] += 1
        if record.get("state") == "done":
            group["done"] += 1
        speedup = _speedup(record)
        if speedup is not None:
            group["_speedups"].append(speedup)
    out = []
    for group_key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        group = groups[group_key]
        speedups = group.pop("_speedups")
        group["geomean_speedup"] = geomean(speedups)
        group["max_speedup"] = max(speedups) if speedups else None
        out.append(group)
    return out


def baseline_deltas(
    store: CampaignStore, campaign: str, baseline: str
) -> list[dict[str, Any]]:
    """Per-cell speedup deltas of *campaign* against *baseline*.

    Cells are matched on ``cell_id``; each row carries both speedups, the
    absolute delta, and the ratio (``None`` when either side is missing —
    a failed or still-pending cell).  Rows follow *campaign*'s plan order,
    so regression reports are stable run to run.
    """
    base = {
        r["cell_id"]: _speedup(r) for r in query_records(store, campaign=baseline)
    }
    rows = []
    for record in query_records(store, campaign=campaign):
        ours = _speedup(record)
        theirs = base.get(record["cell_id"])
        rows.append(
            {
                "cell_id": record["cell_id"],
                "program": record["program"],
                "speedup": ours,
                "baseline_speedup": theirs,
                "delta": (
                    ours - theirs if ours is not None and theirs is not None else None
                ),
                "ratio": (
                    ours / theirs
                    if ours is not None and theirs is not None and theirs > 0
                    else None
                ),
            }
        )
    return rows


# -- rendering -----------------------------------------------------------

_CSV_FIELDS = (
    "campaign", "cell_id", "program", "machine", "scale", "threshold",
    "state", "label", "best_speedup", "best_threads", "digest",
)


def records_to_csv(records: Sequence[dict[str, Any]]) -> str:
    """Flat CSV of cell records (one row per cell, stable column set)."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_FIELDS)
    for record in records:
        result = record.get("result") or {}
        row = dict(record)
        row["label"] = result.get("label")
        row["best_speedup"] = result.get("best_speedup")
        row["best_threads"] = result.get("best_threads")
        writer.writerow(["" if row.get(f) is None else row.get(f) for f in _CSV_FIELDS])
    return buffer.getvalue()


def records_table(records: Sequence[dict[str, Any]], title: str = "Campaign cells") -> str:
    """Human-readable cell listing via the shared table renderer."""
    from repro.reporting.tables import format_table

    rows = []
    for record in records:
        result = record.get("result") or {}
        rows.append(
            [
                record["campaign"],
                record["program"],
                record["machine"],
                record["scale"],
                "spec" if record["threshold"] is None else record["threshold"],
                record["state"],
                result.get("label"),
                result.get("best_speedup"),
            ]
        )
    return format_table(
        ["Campaign", "Program", "Machine", "Scale", "Thresh", "State",
         "Detected Pattern", "Speedup"],
        rows,
        title=title,
    )


def groups_table(groups: Sequence[dict[str, Any]], keys: Sequence[str]) -> str:
    from repro.reporting.tables import format_table

    rows = [
        [group.get(k) for k in keys]
        + [group["cells"], group["done"], group["geomean_speedup"], group["max_speedup"]]
        for group in groups
    ]
    return format_table(
        [k.capitalize() for k in keys] + ["Cells", "Done", "Geomean", "Max"],
        rows,
        title=f"Campaign aggregation by {', '.join(keys)}",
    )


def deltas_table(rows: Sequence[dict[str, Any]], campaign: str, baseline: str) -> str:
    from repro.reporting.tables import format_table

    table_rows = [
        [r["program"], r["cell_id"], r["baseline_speedup"], r["speedup"],
         r["delta"], r["ratio"]]
        for r in rows
    ]
    return format_table(
        ["Program", "Cell", "Baseline", "Speedup", "Delta", "Ratio"],
        table_rows,
        title=f"{campaign} vs baseline {baseline}",
    )


# -- Table III regeneration ----------------------------------------------

def table3_docs(store: CampaignStore, campaign: str) -> list[dict[str, Any]]:
    """The stored default-grid documents in benchmark-registry order.

    For every registry program, emit the stored result document of the
    campaign's ``default``-machine, scale-1, spec-threshold cell — the
    exact bytes the service produced, which are the exact bytes
    ``repro table3 --json`` emits (``BenchmarkOutcome.to_dict()`` carries
    no wall-clock state).  Failed cells contribute their structured
    failure record, mirroring the live sweep's keep-going output.

    Raises :class:`ValueError` if the campaign is missing a program's
    default cell or it is still pending — an incomplete campaign cannot
    claim to reproduce the table.
    """
    from repro.bench_programs.registry import all_benchmarks
    from repro.campaign.grid import CampaignCell

    by_id = {c["cell_id"]: c for c in store.cells(campaign)}
    docs = []
    for spec in all_benchmarks():
        cell = by_id.get(CampaignCell(program=spec.name).cell_id)
        if cell is None or cell["state"] == "pending":
            missing = "missing" if cell is None else "pending"
            raise ValueError(
                f"campaign {campaign!r} has no completed default cell for "
                f"{spec.name!r} ({missing}); run `repro campaign run` to completion"
            )
        if cell["state"] == "failed":
            docs.append(cell["error"])
            continue
        doc = store.get_result(cell["digest"])
        if doc is None:
            raise ValueError(
                f"campaign {campaign!r}: result document for {spec.name!r} "
                f"(digest {cell['digest'][:12]}...) is missing from the store"
            )
        docs.append(doc)
    return docs
