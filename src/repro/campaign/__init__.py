"""Experiment-campaign harness: systematic sweeps with a queryable store.

The paper's evaluation is a handful of fixed tables produced by one-shot
sweeps.  This package turns that into an engine (ROADMAP item 3): a
campaign fans (program × machine-model × input-scale × detector-config)
cells through the warm analysis service, persists every versioned outcome
document into a WAL-sqlite results store content-addressed by the
service's job digest, and exposes a query/aggregation layer (filter,
group-by, geometric-mean speedups, regression deltas against a named
baseline campaign) with CSV and text-report output.

The pieces:

:mod:`~repro.campaign.grid`
    Cell definitions — the axes, named machine models, grid expansion,
    and each cell's bench payload + content digest.
:mod:`~repro.campaign.store`
    :class:`~repro.campaign.store.CampaignStore` — the durable results
    database (cells by campaign, result documents by digest).
:mod:`~repro.campaign.runner`
    :func:`~repro.campaign.runner.run_campaign` — executes a cell list
    against a service, reusing digest-keyed stored results and resuming
    interrupted campaigns.
:mod:`~repro.campaign.query`
    Filters, group-by aggregation, baseline comparison, CSV/table
    rendering, and the Table III regeneration path
    (``repro campaign query --table3``).

Surfaced on the CLI as ``repro campaign run|status|query``; cookbook in
``docs/campaigns.md``.
"""

from repro.campaign.grid import (  # noqa: F401
    MACHINE_MODELS,
    CampaignCell,
    cell_digest,
    cell_payload,
    default_grid,
    expand_grid,
)
from repro.campaign.runner import run_campaign  # noqa: F401
from repro.campaign.store import CampaignStore, default_campaign_db  # noqa: F401
