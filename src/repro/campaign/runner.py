"""Campaign execution: fan cells through the warm analysis service.

:func:`run_campaign` is deliberately thin — the heavy machinery already
exists.  Submission goes through :class:`~repro.service.client.ServiceClient`
(so 429 + ``Retry-After`` handling, coalescing, and per-client accounting
all apply); execution runs wherever the daemon's backend puts it; results
land in the :class:`~repro.campaign.store.CampaignStore` keyed by the
service's own content digest.

The run is **idempotent at two levels**:

* *campaign resume* — cells already ``done`` in this campaign are skipped
  outright (the kill-the-daemon-and-rerun path);
* *digest reuse* — a cell whose digest already has a stored result (from
  any campaign) is recorded done **without submitting anything**; a rerun
  of an identical campaign therefore performs zero service calls and zero
  profile runs, which is what the acceptance criteria assert.

Every decision is counted through :mod:`repro.obs`
(``repro_campaign_cells_total{outcome=...}``) and the whole run plus each
executed cell opens a span, so campaign overhead shows up in the same
trace/metrics plumbing the rest of the pipeline uses.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.campaign.grid import CampaignCell, cell_digest, cell_payload
from repro.campaign.store import CampaignStore
from repro.obs.metrics import get_registry
from repro.obs.tracing import span

#: outcome labels for the campaign cell counter
_OUTCOMES = ("submitted", "reused_store", "reused_resume", "failed")


def _cells_counter():
    return get_registry().counter(
        "repro_campaign_cells_total",
        "Campaign cells by disposition",
        labelnames=("outcome",),
    )


def run_campaign(
    store: CampaignStore,
    client: Any,
    name: str,
    cells: Sequence[CampaignCell],
    timeout: float = 300.0,
    poll: float = 0.02,
) -> dict[str, Any]:
    """Execute *cells* under campaign *name*; returns the run summary.

    *client* is a :class:`~repro.service.client.ServiceClient` (or
    anything with ``submit_benchmark``/``wait``).  Failed cells record a
    structured error and do not stop the campaign (the registry sweep's
    keep-going posture).

    Execution is pipelined: every cell that needs the service is
    submitted up front (the daemon's workers start immediately and
    identical in-flight cells coalesce), then results are collected and
    recorded in plan order — the campaign's wall clock tracks the
    daemon's actual work, not ``cells × poll`` latency.

    The summary's ``submitted`` count is the number of cells that reached
    the service — an identical rerun reports ``submitted == 0``.
    """
    counter = _cells_counter()
    summary = {
        "campaign": name,
        "cells": len(cells),
        "submitted": 0,
        "reused_store": 0,
        "reused_resume": 0,
        "failed": 0,
    }
    store.plan_cells(name, list(cells))
    state_by_id = {c["cell_id"]: c["state"] for c in store.cells(name)}
    with span("campaign.run", campaign=name, cells=len(cells)):
        to_submit: list[tuple[CampaignCell, str]] = []
        for cell in cells:
            if state_by_id.get(cell.cell_id) == "done":
                counter.labels(outcome="reused_resume").inc()
                summary["reused_resume"] += 1
                continue
            digest = cell_digest(cell)
            if store.get_result(digest) is not None:
                # content-addressed warm path: some campaign already did
                # this exact work — no service round-trip at all
                store.mark_cell(name, cell.cell_id, "done")
                counter.labels(outcome="reused_store").inc()
                summary["reused_store"] += 1
                continue
            to_submit.append((cell, digest))
        in_flight: list[tuple[CampaignCell, str, int]] = []
        if to_submit and hasattr(client, "submit_many"):
            # One POST for the whole grid: the server validates every cell
            # before admitting any, and the client absorbs queue-full by
            # resubmitting only the unaccepted tail.
            with span("campaign.submit", cells=len(to_submit)):
                jobs = client.submit_many(
                    [{"kind": "bench", **cell_payload(cell)} for cell, _ in to_submit]
                )
            in_flight = [
                (cell, digest, job["id"])
                for (cell, digest), job in zip(to_submit, jobs)
            ]
        else:
            # minimal-client fallback: anything with submit_benchmark/wait
            for cell, digest in to_submit:
                with span("campaign.submit", cell=cell.cell_id):
                    job = client.submit_benchmark(cell.program, **{
                        k: v for k, v in cell_payload(cell).items() if k != "name"
                    })
                in_flight.append((cell, digest, job["id"]))
        for cell, digest, job_id in in_flight:
            with span("campaign.collect", cell=cell.cell_id):
                record = client.wait(job_id, timeout=timeout, poll=poll)
            if record["state"] == "done":
                store.put_result(digest, record["result"])
                store.mark_cell(name, cell.cell_id, "done")
                counter.labels(outcome="submitted").inc()
                summary["submitted"] += 1
            else:
                store.mark_cell(
                    name,
                    cell.cell_id,
                    "failed",
                    error=record.get("error") or {"state": record["state"]},
                )
                counter.labels(outcome="failed").inc()
                summary["failed"] += 1
    return summary
