"""Campaign cell grid: axes, named machine models, payloads, digests.

A campaign is a list of :class:`CampaignCell` coordinates over four axes:

* **program** — a registry benchmark name (``all_benchmarks()``);
* **machine** — a *named* machine model from :data:`MACHINE_MODELS`,
  expressed as overrides replaced onto the frozen
  :data:`~repro.sim.machine.DEFAULT_MACHINE` (the simulator's calibration
  stays frozen; campaigns explore *around* it, they never retune it);
* **scale** — an input-scale factor applied by
  :func:`repro.bench_programs.workloads.scale_arg_sets`;
* **threshold** — the hotspot detector threshold (``None`` = the spec's
  own default).

Each cell maps to exactly the bench-job payload the analysis service
already accepts (:func:`cell_payload`), and its content address is the
service's own :func:`~repro.service.jobs.job_digest` over that payload
(:func:`cell_digest`).  Default-valued axes are **omitted** from the
payload, so the default cell's digest equals a plain
``{"kind": "bench", "name": ...}`` submission's — results flow freely
between campaign runs and ordinary service traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: Named machine models: overrides onto the frozen DEFAULT_MACHINE.
#: ``default`` is the paper-calibrated model itself (empty overrides).
MACHINE_MODELS: dict[str, dict[str, float]] = {
    # the frozen Table III calibration
    "default": {},
    # cheap fork/join fabric: hardware barriers, near-free task spawn —
    # the upper bound a fine-grained pattern could hope for
    "fast_sync": {
        "spawn_cost": 10.0,
        "barrier_base": 10.0,
        "barrier_per_thread": 2.0,
        "task_overhead": 1.0,
    },
    # software barriers over a loaded interconnect: synchronization an
    # order of magnitude dearer — punishes barrier-heavy geometric
    # decomposition and fine-grained pipelines
    "slow_sync": {
        "spawn_cost": 300.0,
        "barrier_base": 250.0,
        "barrier_per_thread": 60.0,
        "pipeline_sync": 100.0,
    },
    # a single memory controller: bandwidth saturates at two threads and
    # streaming is pricier — stresses the roofline term
    "bw_bound": {
        "bw_saturation": 2,
        "streaming_cost": 26.0,
    },
}

#: Input-scale grid points campaigns sweep by default.
DEFAULT_SCALES = (1.0,)

#: Detector thresholds swept by default (None = each spec's own default).
DEFAULT_THRESHOLDS: tuple[float | None, ...] = (None,)


@dataclass(frozen=True)
class CampaignCell:
    """One (program × machine × scale × threshold) coordinate."""

    program: str
    machine: str = "default"
    scale: float = 1.0
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.machine not in MACHINE_MODELS:
            raise ValueError(
                f"unknown machine model {self.machine!r}; "
                f"expected one of {sorted(MACHINE_MODELS)}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale!r}")

    @property
    def cell_id(self) -> str:
        """Human-readable stable identity within a campaign."""
        threshold = "spec" if self.threshold is None else f"{self.threshold:g}"
        return f"{self.program}|{self.machine}|s{self.scale:g}|t{threshold}"


def cell_payload(cell: CampaignCell) -> dict[str, Any]:
    """The service bench-job payload this cell describes.

    Default-valued axes are omitted, so the default cell's payload —
    hence its digest — is identical to a plain benchmark submission's.
    """
    payload: dict[str, Any] = {"name": cell.program}
    if cell.scale != 1.0:
        payload["scale"] = cell.scale
    if cell.threshold is not None:
        payload["threshold"] = cell.threshold
    overrides = MACHINE_MODELS[cell.machine]
    if overrides:
        payload["machine"] = dict(overrides)
    return payload


def cell_digest(cell: CampaignCell) -> str:
    """The cell's content address: the service's own bench-job digest."""
    from repro.service.jobs import job_digest

    return job_digest("bench", cell_payload(cell))


def expand_grid(
    programs: Iterable[str],
    machines: Iterable[str] = ("default",),
    scales: Iterable[float] = DEFAULT_SCALES,
    thresholds: Iterable[float | None] = DEFAULT_THRESHOLDS,
) -> list[CampaignCell]:
    """The full cross product, in deterministic campaign order.

    Programs vary slowest (registry order is preserved for the default
    axes — the property Table III regeneration relies on), then machine,
    scale, threshold.
    """
    return [
        CampaignCell(program=p, machine=m, scale=s, threshold=t)
        for p in programs
        for m in machines
        for s in scales
        for t in thresholds
    ]


def default_grid(
    programs: Sequence[str] | None = None,
    machines: Sequence[str] = ("default",),
    scales: Sequence[float] = DEFAULT_SCALES,
    thresholds: Sequence[float | None] = DEFAULT_THRESHOLDS,
) -> list[CampaignCell]:
    """Grid over the benchmark registry (all 17 programs when unnamed)."""
    if programs is None:
        from repro.bench_programs.registry import all_benchmarks

        programs = [spec.name for spec in all_benchmarks()]
    return expand_grid(programs, machines, scales, thresholds)
