"""Profile serialization.

DiscoPoP's instrumented runs dump their output to files consumed by later
analysis phases; this module provides the same workflow: a
:class:`Profile` round-trips through a JSON-compatible dict, so profiling
(expensive) can be decoupled from detection (cheap) and profiles can be
archived next to the inputs that produced them.

Serialization is **deterministic**: every collection keyed by unordered or
insertion-ordered structures (dependence edges, per-loop access tables,
site costs, trip counts) is emitted in sorted order and dict keys are
sorted, so two profiles with equal contents produce byte-identical dumps
regardless of the event order or process that built them.  That property is
what lets the content-addressed cache (``repro.profiling.cache``) and the
parallel orchestrator (``repro.runtime.parallel``) compare profiles by
digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, IO

from repro.profiling.model import CallNode, DepKey, PETNode, Profile

_FORMAT_VERSION = 1


def _dep_sort_key(key: DepKey) -> tuple:
    # `carrier` is None for loop-independent edges; map it below any real
    # region id so mixed edges order deterministically.
    return (
        key.kind,
        key.var,
        key.region,
        -1 if key.carrier is None else key.carrier,
        key.src_line,
        key.dst_line,
        key.src_site,
        key.dst_site,
    )


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """Convert *profile* to a JSON-compatible dict (deterministic order)."""
    return {
        "version": _FORMAT_VERSION,
        "total_cost": profile.total_cost,
        "runs": profile.runs,
        "unique_array_addresses": profile.unique_array_addresses,
        "array_accesses": profile.array_accesses,
        "deps": [
            [list(key), profile.deps[key]]
            for key in sorted(profile.deps, key=_dep_sort_key)
        ],
        "loop_var_writes": [
            [loop, var, sorted(profile.loop_var_writes[(loop, var)])]
            for loop, var in sorted(profile.loop_var_writes)
        ],
        "loop_var_reads": [
            [loop, var, sorted(profile.loop_var_reads[(loop, var)])]
            for loop, var in sorted(profile.loop_var_reads)
        ],
        "read_first": sorted(list(t) for t in profile.read_first),
        "loop_accessed": sorted(list(t) for t in profile.loop_accessed),
        # Pair lists keep their (deterministic) discovery order — the fit in
        # the multi-loop pipeline detector consumes them as a multiset, but
        # re-sorting would hide ordering bugs in the profiler itself.
        "pairs": [
            [list(key), [list(p) for p in profile.pairs[key]]]
            for key in sorted(profile.pairs)
        ],
        "line_costs": sorted(profile.line_costs.items()),
        "site_costs": [
            [list(k), profile.site_costs[k]] for k in sorted(profile.site_costs)
        ],
        "loop_trips": [
            [loop, list(profile.loop_trips[loop])] for loop in sorted(profile.loop_trips)
        ],
        "pet": _pet_to_dict(profile.pet),
        "calltree": _calltree_to_dict(profile.calltree),
    }


def profile_from_dict(data: dict[str, Any]) -> Profile:
    """Rebuild a :class:`Profile` from :func:`profile_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported profile format version {version!r}")
    profile = Profile(
        total_cost=data["total_cost"],
        runs=data["runs"],
        unique_array_addresses=data.get("unique_array_addresses", 0),
        array_accesses=data.get("array_accesses", 0),
    )
    for key, count in data["deps"]:
        kind, var, region, carrier, src_line, dst_line, src_site, dst_site = key
        profile.deps[
            DepKey(kind, var, region, carrier, src_line, dst_line, src_site, dst_site)
        ] = count
    for loop, var, lines in data["loop_var_writes"]:
        profile.loop_var_writes[(loop, var)] = set(lines)
    for loop, var, lines in data["loop_var_reads"]:
        profile.loop_var_reads[(loop, var)] = set(lines)
    profile.read_first = {(loop, var) for loop, var in data["read_first"]}
    profile.loop_accessed = {(loop, var) for loop, var in data["loop_accessed"]}
    for key, pairs in data["pairs"]:
        profile.pairs[tuple(key)] = [tuple(p) for p in pairs]
    profile.line_costs = {line: cost for line, cost in data["line_costs"]}
    profile.site_costs = {tuple(k): v for k, v in data["site_costs"]}
    profile.loop_trips = {loop: tuple(v) for loop, v in data["loop_trips"]}
    profile.pet = _pet_from_dict(data["pet"])
    if profile.pet is not None:
        profile.pet.compute_inclusive()
    profile.calltree = _calltree_from_dict(data["calltree"])
    return profile


def save_profile(profile: Profile, fh: IO[str]) -> None:
    """Write *profile* as JSON to an open text file (byte-deterministic)."""
    fh.write(canonical_profile_json(profile))


def load_profile(fh: IO[str]) -> Profile:
    """Read a profile written by :func:`save_profile`."""
    return profile_from_dict(json.load(fh))


def canonical_json(data: Any) -> str:
    """Canonical JSON text for a JSON-compatible value: sorted keys, fixed
    compact separators.  Shared by the profile serializer and the analysis
    schema (``repro.patterns.schema``) so every digest in the system hashes
    the same byte convention."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def canonical_profile_json(profile: Profile) -> str:
    """The canonical (byte-deterministic) JSON text for *profile*.

    Equal profiles serialize to equal bytes: collections are pre-sorted by
    :func:`profile_to_dict` and keys are sorted here, with a fixed compact
    separator style.
    """
    return canonical_json(profile_to_dict(profile))


def profile_digest(profile: Profile) -> str:
    """SHA-256 hex digest of the canonical JSON — a content address."""
    return hashlib.sha256(canonical_profile_json(profile).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# trees (flattened to index-linked node lists)
# ---------------------------------------------------------------------------


def _pet_to_dict(root: PETNode | None) -> dict | None:
    if root is None:
        return None
    nodes: list[dict] = []
    index: dict[int, int] = {}
    for node in root.walk():
        if node.node_id in index:
            continue  # recursion-merged nodes appear once
        index[node.node_id] = len(nodes)
        nodes.append(
            {
                "region": node.region,
                "kind": node.kind,
                "name": node.name,
                "line": node.line,
                "exclusive_cost": node.exclusive_cost,
                "invocations": node.invocations,
                "total_trips": node.total_trips,
                "recursive": node.recursive,
                "children": [],
            }
        )
    for node in root.walk():
        me = index[node.node_id]
        kids = [index[c.node_id] for c in node.children]
        if not nodes[me]["children"]:
            nodes[me]["children"] = kids
    return {"nodes": nodes, "root": index[root.node_id]}


def _pet_from_dict(data: dict | None) -> PETNode | None:
    if data is None:
        return None
    nodes = [
        PETNode(
            node_id=i,
            region=d["region"],
            kind=d["kind"],
            name=d["name"],
            line=d["line"],
            exclusive_cost=d["exclusive_cost"],
            invocations=d["invocations"],
            total_trips=d["total_trips"],
            recursive=d["recursive"],
        )
        for i, d in enumerate(data["nodes"])
    ]
    for i, d in enumerate(data["nodes"]):
        for child in d["children"]:
            nodes[i].children.append(nodes[child])
            nodes[child].parent = nodes[i]
    return nodes[data["root"]]


def _calltree_to_dict(root: CallNode | None) -> dict | None:
    if root is None:
        return None
    nodes: list[dict] = []
    order: list[CallNode] = list(root.walk())
    index = {id(node): i for i, node in enumerate(order)}
    for node in order:
        nodes.append(
            {
                "act_id": node.act_id,
                "region": node.region,
                "kind": node.kind,
                "site_line": node.site_line,
                "inclusive_cost": node.inclusive_cost,
                "exclusive_cost": node.exclusive_cost,
                "per_iter_cost": list(node.per_iter_cost),
                "children": [index[id(c)] for c in node.children],
            }
        )
    return {"nodes": nodes, "root": 0}


def _calltree_from_dict(data: dict | None) -> CallNode | None:
    if data is None:
        return None
    nodes = [
        CallNode(
            act_id=d["act_id"],
            region=d["region"],
            kind=d["kind"],
            site_line=d["site_line"],
            inclusive_cost=d["inclusive_cost"],
            exclusive_cost=d["exclusive_cost"],
            per_iter_cost=list(d["per_iter_cost"]),
        )
        for d in data["nodes"]
    ]
    for i, d in enumerate(data["nodes"]):
        for child in d["children"]:
            nodes[i].children.append(nodes[child])
            nodes[child].parent = nodes[i]
    return nodes[data["root"]]
