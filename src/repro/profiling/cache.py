"""Content-addressed on-disk profile cache.

DiscoPoP decouples the expensive instrumented run from the cheap analysis
phases by dumping profiler output to files; this module adds the missing
piece for iterative use — **automatic invalidation**.  A cached profile is
stored under a key that is the SHA-256 of everything that determines its
contents:

* the program source text and the entry function name,
* every argument set, canonically encoded (numpy arrays contribute dtype,
  shape, and raw bytes; scalars their ``repr``),
* the profiler configuration (``record_calltree``, ``max_cost``), and
* the profile format and cache layout versions.

Change any input and the key changes, so stale entries are simply never
hit; matching source + inputs + config always replay the exact profile the
interpreter would produce (profiles are deterministic).  Entries live under
``<root>/<key[:2]>/<key>.json`` as the canonical deterministic JSON dump
from :mod:`repro.profiling.serialize`.

The root directory defaults to ``$REPRO_PROFILE_CACHE`` or
``~/.cache/repro/profiles``.  Writes are atomic (temp file + ``os.replace``)
so concurrent processes — e.g. the workers of
:mod:`repro.runtime.parallel` — can share one cache; a corrupted or
truncated entry is deleted and treated as a miss.

The cache is strictly best-effort: an entry that cannot be *read*
(permissions, I/O error) is a miss that bumps ``CacheStats.read_errors``,
and a failed *store* after a successful profiling run (read-only root,
full disk) bumps ``CacheStats.store_errors`` and still returns the
computed profile — cache trouble never forfeits completed work.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.lang.ast_nodes import Program
from repro.obs import tracing
from repro.obs.metrics import get_registry
from repro.profiling.model import Profile
from repro.profiling.runner import profile_runs
from repro.profiling.serialize import (
    _FORMAT_VERSION,
    canonical_profile_json,
    profile_from_dict,
)

_CACHE_LAYOUT_VERSION = 1

_ENV_VAR = "REPRO_PROFILE_CACHE"


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "profiles"


def _encode_arg(arg: Any, h: "hashlib._Hash") -> None:
    """Feed one argument's canonical encoding into *h*.

    Arrays (numpy or nested lists) contribute dtype, shape, and raw bytes;
    scalars contribute their repr.  Distinct types never collide because
    each encoding starts with a distinct tag.
    """
    if isinstance(arg, np.ndarray):
        h.update(b"nd:")
        h.update(str(arg.dtype).encode())
        h.update(repr(arg.shape).encode())
        h.update(np.ascontiguousarray(arg).tobytes())
    elif isinstance(arg, (list, tuple)):
        arr = np.asarray(arg)
        if arr.dtype == object:  # ragged / mixed: fall back to repr
            h.update(b"py:")
            h.update(repr(arg).encode())
        else:
            _encode_arg(arr, h)
    elif isinstance(arg, (bool, int, float, str)):
        h.update(f"{type(arg).__name__}:{arg!r}".encode())
    else:
        h.update(b"py:")
        h.update(repr(arg).encode())


def profile_cache_key(
    source: str,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
) -> str:
    """The content address for a profile of ``entry(*args)`` over *source*."""
    h = hashlib.sha256()
    h.update(f"repro-profile-cache:{_CACHE_LAYOUT_VERSION}:{_FORMAT_VERSION}\n".encode())
    h.update(source.encode("utf-8"))
    h.update(b"\x00entry:")
    h.update(entry.encode("utf-8"))
    h.update(f"\x00config:calltree={record_calltree}:max_cost={max_cost}".encode())
    for args in arg_sets:
        h.update(b"\x00argset\x00")
        for arg in args:
            h.update(b"\x00arg\x00")
            _encode_arg(arg, h)
    return h.hexdigest()


#: CacheStats counter names, in reporting order.
_STAT_FIELDS = ("hits", "misses", "stores", "evictions", "read_errors", "store_errors")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0  # corrupted entries removed
    #: present-but-unreadable entries (permissions, I/O errors) — a broken
    #: cache, unlike the cold misses above; each also counts as a miss
    #: because the profile is recomputed.
    read_errors: int = 0
    #: failed persists after a successful profiling run (read-only root,
    #: full disk); the computed profile is still returned to the caller.
    store_errors: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, int]:
        # locks don't pickle; a CacheStats shipped across processes carries
        # only its counters and grows a fresh lock on arrival
        return {name: getattr(self, name) for name in _STAT_FIELDS}

    def __setstate__(self, state: dict[str, int]) -> None:
        for name in _STAT_FIELDS:
            setattr(self, name, state.get(name, 0))
        self._lock = threading.Lock()

    def bump(self, counter: str, delta: int = 1) -> None:
        """Atomically increment one counter and mirror it into the global
        metrics registry (``repro_profile_cache_<counter>_total``).

        The cache object is shared across the service's executor worker
        threads, so bare ``stats.hits += 1`` read-modify-writes can lose
        updates; every internal increment goes through here.
        """
        if counter not in _STAT_FIELDS:
            raise ValueError(f"unknown cache counter {counter!r}")
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)
        get_registry().counter(
            f"repro_profile_cache_{counter}_total",
            f"Profile cache {counter.replace('_', ' ')}",
        ).inc(delta)

    def as_dict(self) -> dict[str, int]:
        """Point-in-time snapshot of every counter.

        The analysis service's ``/v1/stats`` endpoint reports this for its
        shared cache; callers get plain ints, so the snapshot stays stable
        while the live counters keep moving.  Taken under the lock, so a
        snapshot never interleaves with a concurrent :meth:`bump`.
        """
        with self._lock:
            return {name: getattr(self, name) for name in _STAT_FIELDS}

    def merge(self, other: "CacheStats", mirror_metrics: bool = False) -> None:
        """Accumulate *other*'s counters (e.g. per-worker caches) into self.

        By default merged totals are bookkeeping only — an **in-process**
        worker's cache already mirrored its increments into the shared
        registry, so re-mirroring here would double-count the scrape.  Pass
        ``mirror_metrics=True`` when *other* crossed a process boundary
        (the service's process backend ships each worker's ``CacheStats``
        back with the result): the worker's own registry increments died
        with its process, so this merge is their only path into the
        daemon's ``repro_profile_cache_*_total`` counters.
        """
        snapshot = other.as_dict()
        with self._lock:
            for name, value in snapshot.items():
                setattr(self, name, getattr(self, name) + value)
        if mirror_metrics:
            for name, value in snapshot.items():
                if value:
                    get_registry().counter(
                        f"repro_profile_cache_{name}_total",
                        f"Profile cache {name.replace('_', ' ')}",
                    ).inc(value)


@dataclass
class ProfileCache:
    """Filesystem-backed content-addressed store of :class:`Profile` dumps."""

    root: Path = field(default_factory=default_cache_root)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Profile | None:
        """Return the cached profile for *key*, or None on miss.

        A file that fails to parse (truncated write, disk corruption, or an
        incompatible format version) is removed and reported as a miss.  An
        entry that exists but cannot be read (``PermissionError``, ``EIO``)
        is also a miss, but bumps ``read_errors`` so operators can tell a
        broken cache from a cold one.
        """
        path = self.path_for(key)
        t0 = time.perf_counter()
        with tracing.span("cache.read", key=key[:12]) as sp:
            try:
                text = path.read_text()
            except FileNotFoundError:
                self.stats.bump("misses")
                sp.set(outcome="miss")
                self._observe("read", t0)
                return None
            except OSError:
                self.stats.bump("read_errors")
                self.stats.bump("misses")
                sp.set(outcome="read_error")
                self._observe("read", t0)
                return None
            try:
                profile = profile_from_dict(json.loads(text))
            except (ValueError, KeyError, TypeError, IndexError):
                self.stats.bump("evictions")
                self.stats.bump("misses")
                try:
                    path.unlink()
                except OSError:
                    pass
                sp.set(outcome="evicted")
                self._observe("read", t0)
                return None
            self.stats.bump("hits")
            sp.set(outcome="hit")
            self._observe("read", t0)
            return profile

    def store(self, key: str, profile: Profile) -> Path:
        """Persist *profile* under *key* atomically; return its path."""
        path = self.path_for(key)
        t0 = time.perf_counter()
        with tracing.span("cache.store", key=key[:12]):
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(canonical_profile_json(profile))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.bump("stores")
            self._observe("store", t0)
            return path

    def _observe(self, op: str, t0: float) -> None:
        get_registry().histogram(
            f"repro_cache_{op}_seconds",
            f"Wall-clock seconds of one profile cache {op}",
        ).observe(time.perf_counter() - t0)


def cached_profile_runs(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    cache: ProfileCache | None = None,
    engine: str = "compiled",
) -> tuple[Profile, bool]:
    """Like :func:`repro.profiling.runner.profile_runs`, but cache-backed.

    Returns ``(profile, was_hit)``.  On a hit the interpreter never runs; on
    a miss the merged profile is computed and stored before returning.

    *engine* selects the execution engine on a miss.  It is deliberately
    **not** part of the cache key: both engines produce byte-identical
    canonical profiles (enforced by the differential test suite), so an
    entry computed by either is valid for both and switching engines never
    cold-starts the cache.
    """
    if cache is None:
        cache = ProfileCache()
    # Programs assembled via ProgramBuilder have no source text; their AST
    # repr is deterministic and serves as the content to hash instead.
    source = program.source or repr(program)
    key = profile_cache_key(
        source, entry, arg_sets,
        record_calltree=record_calltree, max_cost=max_cost,
    )
    profile = cache.load(key)
    if profile is not None:
        return profile, True
    profile = profile_runs(
        program, entry, arg_sets,
        record_calltree=record_calltree, max_cost=max_cost, engine=engine,
    )
    # The profile is already computed; an unwritable cache (read-only dir,
    # full disk) must not forfeit it.  Future calls simply recompute.
    try:
        cache.store(key, profile)
    except OSError:
        cache.stats.bump("store_errors")
    return profile, False
