"""Content-addressed on-disk profile cache.

DiscoPoP decouples the expensive instrumented run from the cheap analysis
phases by dumping profiler output to files; this module adds the missing
piece for iterative use — **automatic invalidation**.  A cached profile is
stored under a key that is the SHA-256 of everything that determines its
contents:

* the program source text and the entry function name,
* every argument set, canonically encoded (numpy arrays contribute dtype,
  shape, and raw bytes; scalars their ``repr``),
* the profiler configuration (``record_calltree``, ``max_cost``), and
* the profile format and cache layout versions.

Change any input and the key changes, so stale entries are simply never
hit; matching source + inputs + config always replay the exact profile the
interpreter would produce (profiles are deterministic).  Entries live under
``<root>/<key[:2]>/<key>.json`` as the canonical deterministic JSON dump
from :mod:`repro.profiling.serialize`.

The root directory defaults to ``$REPRO_PROFILE_CACHE`` or
``~/.cache/repro/profiles``.  Writes are atomic (temp file + ``os.replace``)
so concurrent processes — e.g. the workers of
:mod:`repro.runtime.parallel` — can share one cache; a corrupted or
truncated entry is deleted and treated as a miss.

The cache is strictly best-effort: an entry that cannot be *read*
(permissions, I/O error) is a miss that bumps ``CacheStats.read_errors``,
and a failed *store* after a successful profiling run (read-only root,
full disk) bumps ``CacheStats.store_errors`` and still returns the
computed profile — cache trouble never forfeits completed work.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.lang.ast_nodes import Program
from repro.profiling.model import Profile
from repro.profiling.runner import profile_runs
from repro.profiling.serialize import (
    _FORMAT_VERSION,
    canonical_profile_json,
    profile_from_dict,
)

_CACHE_LAYOUT_VERSION = 1

_ENV_VAR = "REPRO_PROFILE_CACHE"


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "profiles"


def _encode_arg(arg: Any, h: "hashlib._Hash") -> None:
    """Feed one argument's canonical encoding into *h*.

    Arrays (numpy or nested lists) contribute dtype, shape, and raw bytes;
    scalars contribute their repr.  Distinct types never collide because
    each encoding starts with a distinct tag.
    """
    if isinstance(arg, np.ndarray):
        h.update(b"nd:")
        h.update(str(arg.dtype).encode())
        h.update(repr(arg.shape).encode())
        h.update(np.ascontiguousarray(arg).tobytes())
    elif isinstance(arg, (list, tuple)):
        arr = np.asarray(arg)
        if arr.dtype == object:  # ragged / mixed: fall back to repr
            h.update(b"py:")
            h.update(repr(arg).encode())
        else:
            _encode_arg(arr, h)
    elif isinstance(arg, (bool, int, float, str)):
        h.update(f"{type(arg).__name__}:{arg!r}".encode())
    else:
        h.update(b"py:")
        h.update(repr(arg).encode())


def profile_cache_key(
    source: str,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
) -> str:
    """The content address for a profile of ``entry(*args)`` over *source*."""
    h = hashlib.sha256()
    h.update(f"repro-profile-cache:{_CACHE_LAYOUT_VERSION}:{_FORMAT_VERSION}\n".encode())
    h.update(source.encode("utf-8"))
    h.update(b"\x00entry:")
    h.update(entry.encode("utf-8"))
    h.update(f"\x00config:calltree={record_calltree}:max_cost={max_cost}".encode())
    for args in arg_sets:
        h.update(b"\x00argset\x00")
        for arg in args:
            h.update(b"\x00arg\x00")
            _encode_arg(arg, h)
    return h.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0  # corrupted entries removed
    #: present-but-unreadable entries (permissions, I/O errors) — a broken
    #: cache, unlike the cold misses above; each also counts as a miss
    #: because the profile is recomputed.
    read_errors: int = 0
    #: failed persists after a successful profiling run (read-only root,
    #: full disk); the computed profile is still returned to the caller.
    store_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """Point-in-time snapshot of every counter.

        The analysis service's ``/v1/stats`` endpoint reports this for its
        shared cache; callers get plain ints, so the snapshot stays stable
        while the live counters keep moving.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "read_errors": self.read_errors,
            "store_errors": self.store_errors,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate *other*'s counters (e.g. per-worker caches) into self."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.read_errors += other.read_errors
        self.store_errors += other.store_errors


@dataclass
class ProfileCache:
    """Filesystem-backed content-addressed store of :class:`Profile` dumps."""

    root: Path = field(default_factory=default_cache_root)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Profile | None:
        """Return the cached profile for *key*, or None on miss.

        A file that fails to parse (truncated write, disk corruption, or an
        incompatible format version) is removed and reported as a miss.  An
        entry that exists but cannot be read (``PermissionError``, ``EIO``)
        is also a miss, but bumps ``read_errors`` so operators can tell a
        broken cache from a cold one.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.read_errors += 1
            self.stats.misses += 1
            return None
        try:
            profile = profile_from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError, IndexError):
            self.stats.evictions += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return profile

    def store(self, key: str, profile: Profile) -> Path:
        """Persist *profile* under *key* atomically; return its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_profile_json(profile))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path


def cached_profile_runs(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    cache: ProfileCache | None = None,
) -> tuple[Profile, bool]:
    """Like :func:`repro.profiling.runner.profile_runs`, but cache-backed.

    Returns ``(profile, was_hit)``.  On a hit the interpreter never runs; on
    a miss the merged profile is computed and stored before returning.
    """
    if cache is None:
        cache = ProfileCache()
    # Programs assembled via ProgramBuilder have no source text; their AST
    # repr is deterministic and serves as the content to hash instead.
    source = program.source or repr(program)
    key = profile_cache_key(
        source, entry, arg_sets,
        record_calltree=record_calltree, max_cost=max_cost,
    )
    profile = cache.load(key)
    if profile is not None:
        return profile, True
    profile = profile_runs(
        program, entry, arg_sets,
        record_calltree=record_calltree, max_cost=max_cost,
    )
    # The profile is already computed; an unwritable cache (read-only dir,
    # full disk) must not forfeit it.  Future calls simply recompute.
    try:
        cache.store(key, profile)
    except OSError:
        cache.stats.store_errors += 1
    return profile, False
