"""The streaming profiler sink.

One pass over the interpreter's event stream produces everything the pattern
detectors need.  The design mirrors DiscoPoP's split into a dependence
profiler and a region/PET profiler (Section II), but runs both in a single
shadow-memory sweep:

* **Context tracking** — a stack of activations (function calls and loop
  entries), each with its static region id, current iteration number, and
  the source line of the statement currently executing at that level (its
  *site*).  Sites are what summarize nested work to call sites when
  dependences are lifted to a region's CU graph.
* **Shadow memory** — last writer and last reader per address.  Each access
  is compared against the shadow entry to emit RAW/WAR/WAW dependences,
  attributed to the deepest common activation and classified as carried or
  independent there.
* **Privatization** — per loop iteration, the first access to each address
  is tracked; a ``(loop, var)`` that is ever read before written in an
  iteration is marked ``read_first`` (not privatizable).
* **Multi-loop pairs** — a RAW dependence whose endpoints sit in *different
  sibling loops* contributes an ``(i_x, i_y)`` iteration pair: the last
  write iteration of loop *x* and the first read iteration of loop *y* for
  that address (Section III-A's post-analysis, done online).
* **PET** — activations are folded into a Program Execution Tree: loop
  iterations merge, recursive calls merge into their ancestor node.
* **Call tree** — the full dynamic activation tree with inclusive costs and
  per-iteration loop costs, used for work/span speedup estimation and the
  pipeline schedule simulator.

Fast path
---------
The profiler receives events in chunks through :meth:`Profiler.consume_batch`
(see ``repro.runtime.events``): the read/write/cost/stmt/iteration handlers
are inlined in one loop with all per-event state hoisted into locals, which
is substantially faster than one method call per event.  The per-event
``Sink`` methods remain as the reference implementation (and for sinks
driven without batching); both paths share the same bookkeeping structures,
so interleaving them is safe.

Three shadow-state optimizations keep the per-access work low without
changing any observable result:

* context snapshots (``_ids_t``/``_iters_t``/``_sites_t``) are immutable
  tuples rebuilt only on region transitions, so shadow-memory entries share
  them instead of copying stacks per access;
* the divergence scan between a shadow entry's context and the current one
  short-circuits on tuple identity (the overwhelmingly common case: both
  endpooints inside the same activation set);
* the per-loop access tables (``loop_accessed``/``loop_var_reads``/
  ``loop_var_writes``) are updated once per distinct ``(line, var,
  direction)`` per loop-stack shape via ``_touch_memo``, and the
  per-iteration first-touch sets are scanned innermost-out with early exit —
  an address recorded at a loop level is by construction already recorded at
  every enclosing level.
"""

from __future__ import annotations

from typing import Sequence

from repro.profiling.model import RAW, WAR, WAW, CallNode, DepKey, PETNode, Profile
from repro.runtime.events import (
    EV_COST,
    EV_ENTER_FUNC,
    EV_ENTER_LOOP,
    EV_EXIT_FUNC,
    EV_EXIT_LOOP,
    EV_ITER,
    EV_READ,
    EV_STMT,
    EV_WRITE,
    Sink,
)

_NO_ITER = -1


class Profiler(Sink):
    """Sink that builds a :class:`Profile` from one interpreted run."""

    def __init__(
        self,
        record_calltree: bool = True,
        max_calltree_nodes: int = 500_000,
    ) -> None:
        self.profile = Profile()
        # context stacks (parallel lists)
        self._ids: list[int] = []
        self._statics: list[int] = []
        self._kinds: list[str] = []
        self._iters: list[int] = []
        self._sites: list[int] = []
        self._act_info: dict[int, tuple[int, str]] = {}
        # privatization: per-level set of addresses touched this iteration
        self._seen: list[set[int] | None] = []
        # shadow memory: addr -> (ids, iters, sites, line, var)
        self._last_write: dict[int, tuple] = {}
        self._last_read: dict[int, tuple] = {}
        # pair first-read bookkeeping: (reader_act, writer_loop, addr)
        self._pair_seen: set[tuple[int, int, int]] = set()
        # aggregated dependences under plain-tuple keys; materialized into
        # DepKey records once at finish() (NamedTuple construction per event
        # is measurable on the hot path)
        self._deps_raw: dict[tuple, int] = {}
        # PET
        self._pet_counter = 0
        self._pet_stack: list[PETNode] = []
        # cost accounting
        self._act_costs: list[int] = []
        self._pre_cost = 0
        # call tree
        self._record_ct = record_calltree
        self._max_ct = max_calltree_nodes
        self._ct_nodes = 0
        self._ct_stack: list[CallNode | None] = []
        self._iter_marks: list[int] = []
        # loop trip accumulation: static loop -> [invocations, total, max]
        self._trips: dict[int, list[int]] = {}
        # working-set tracking (array traffic only — scalars stay in cache)
        self._array_addrs: set[int] = set()
        # cached immutable snapshots of the context stacks (hot path:
        # rebuilding them per mutation beats tuple() per memory event)
        self._ids_t: tuple[int, ...] = ()
        self._iters_t: tuple[int, ...] = ()
        self._sites_t: tuple[int, ...] = ()
        # indices of the loop levels within the stacks (skips function
        # levels in the per-event _touch sweep)
        self._loop_idx: list[int] = []
        # (line, var, is_write) triples whose loop access tables are already
        # up to date for the current loop stack; cleared on loop entry/exit
        self._touch_memo: set[tuple[int, str, bool]] = set()

    # ------------------------------------------------------------------
    # region transitions
    # ------------------------------------------------------------------

    def _enter(self, region: int, act: int, kind: str, site_line: int, line: int) -> None:
        parent_site = self._sites[-1] if self._sites else site_line
        self._ids.append(act)
        self._statics.append(region)
        self._kinds.append(kind)
        self._iters.append(_NO_ITER)
        self._sites.append(line)
        self._act_info[act] = (region, kind)
        self._seen.append(set() if kind == "loop" else None)
        if kind == "loop":
            self._loop_idx.append(len(self._kinds) - 1)
            self._touch_memo.clear()
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._act_costs.append(0)
        self._iter_marks.append(0)
        self._enter_pet(region, kind, line)
        # call tree
        node: CallNode | None = None
        if self._record_ct and self._ct_nodes < self._max_ct:
            node = CallNode(
                act_id=act,
                region=region,
                kind=kind,
                site_line=parent_site,
                parent=self._ct_stack[-1] if self._ct_stack else None,
            )
            self._ct_nodes += 1
            if node.parent is not None:
                node.parent.children.append(node)
            elif self.profile.calltree is None:
                self.profile.calltree = node
        self._ct_stack.append(node)

    def _enter_pet(self, region: int, kind: str, line: int) -> None:
        name = f"{kind}@{line}"
        if kind == "function":
            # recursion merging: reuse an ancestor node for the same region
            for node in reversed(self._pet_stack):
                if node.region == region and node.kind == "function":
                    node.recursive = True
                    node.invocations += 1
                    self._pet_stack.append(node)
                    return
        parent = self._pet_stack[-1] if self._pet_stack else None
        node = parent.child_for(region) if parent is not None else None
        if node is None or node.kind != kind:
            node = PETNode(
                node_id=self._pet_counter,
                region=region,
                kind=kind,
                name=name,
                line=line,
                parent=parent,
            )
            self._pet_counter += 1
            if parent is not None:
                parent.children.append(node)
            elif self.profile.pet is None:
                self.profile.pet = node
        node.invocations += 1
        self._pet_stack.append(node)

    def _exit(self, trip_count: int | None = None) -> None:
        inclusive = self._act_costs.pop()
        static = self._statics.pop()
        self._ids.pop()
        kind = self._kinds.pop()
        self._iters.pop()
        self._sites.pop()
        self._seen.pop()
        if kind == "loop":
            self._loop_idx.pop()
            self._touch_memo.clear()
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._iter_marks.pop()
        pet_node = self._pet_stack.pop()
        ct_node = self._ct_stack.pop()
        if ct_node is not None:
            ct_node.inclusive_cost = inclusive
            if kind == "loop" and ct_node.per_iter_cost:
                # fold the final condition-test sliver into the last iteration
                residue = inclusive - sum(ct_node.per_iter_cost)
                if residue > 0:
                    ct_node.per_iter_cost[-1] += residue
        if kind == "loop" and trip_count is not None:
            pet_node.total_trips += trip_count
            acc = self._trips.setdefault(static, [0, 0, 0])
            acc[0] += 1
            acc[1] += trip_count
            acc[2] = max(acc[2], trip_count)
        if self._act_costs:
            self._act_costs[-1] += inclusive
            key = (self._statics[-1], self._sites[-1])
            self.profile.site_costs[key] = self.profile.site_costs.get(key, 0) + inclusive

    # -- Sink interface -------------------------------------------------

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        self._enter(region_id, activation_id, "function", call_line, call_line)

    def exit_function(self, region_id: int, activation_id: int) -> None:
        self._exit()

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        self._enter(region_id, activation_id, "loop", line, line)

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        self._exit(trip_count)

    def loop_iteration(self, region_id: int, index: int) -> None:
        self._iters[-1] = index
        self._iters_t = self._iters_t[:-1] + (index,)
        self._seen[-1] = set()
        node = self._ct_stack[-1]
        if node is not None and index > 0:
            acc = self._act_costs[-1]
            node.per_iter_cost.append(acc - self._iter_marks[-1])
            self._iter_marks[-1] = acc

    def on_stmt(self, line: int) -> None:
        sites = self._sites
        if sites and sites[-1] != line:
            sites[-1] = line
            self._sites_t = self._sites_t[:-1] + (line,)

    def on_cost(self, line: int, amount: int) -> None:
        p = self.profile
        p.total_cost += amount
        p.line_costs[line] = p.line_costs.get(line, 0) + amount
        if not self._act_costs:
            self._pre_cost += amount
            return
        self._act_costs[-1] += amount
        self._pet_stack[-1].exclusive_cost += amount
        node = self._ct_stack[-1]
        if node is not None:
            node.exclusive_cost += amount
        key = (self._statics[-1], line)
        p.site_costs[key] = p.site_costs.get(key, 0) + amount

    # ------------------------------------------------------------------
    # memory accesses
    # ------------------------------------------------------------------

    def _touch(self, addr: int, var: str, line: int, is_write: bool) -> None:
        statics = self._statics
        seen = self._seen
        profile = self.profile
        loop_idx = self._loop_idx
        memo_key = (line, var, is_write)
        if memo_key not in self._touch_memo:
            self._touch_memo.add(memo_key)
            if is_write:
                table = profile.loop_var_writes
            else:
                table = profile.loop_var_reads
            for i in loop_idx:
                key = (statics[i], var)
                profile.loop_accessed.add(key)
                lines = table.get(key)
                if lines is None:
                    table[key] = {line}
                else:
                    lines.add(line)
        # first-touch per iteration, innermost-out: membership at a level
        # implies membership at every enclosing level, so stop at the first
        # level that already has the address.
        read_first = profile.read_first
        for i in reversed(loop_idx):
            level_seen = seen[i]
            if addr in level_seen:
                break
            level_seen.add(addr)
            if not is_write:
                read_first.add((statics[i], var))

    def _record_dep(
        self,
        kind: str,
        prev: tuple,
        cur_ids: tuple,
        cur_iters: tuple,
        cur_sites: tuple,
        line: int,
        var: str,
    ) -> None:
        p_ids, p_iters, p_sites, p_line, p_var = prev
        if p_ids is cur_ids:
            d = len(p_ids)
        else:
            limit = min(len(p_ids), len(cur_ids))
            d = 0
            while d < limit and p_ids[d] == cur_ids[d]:
                d += 1
        if d == 0:
            return
        m = d - 1
        region, region_kind = self._act_info[p_ids[m]]
        carrier: int | None = None
        if (
            region_kind == "loop"
            and p_iters[m] != cur_iters[m]
            and p_iters[m] != _NO_ITER
            and cur_iters[m] != _NO_ITER
        ):
            carrier = region
        key = (kind, p_var, region, carrier, p_line, line, p_sites[m], cur_sites[m])
        deps = self._deps_raw
        deps[key] = deps.get(key, 0) + 1

    def _record_pair(
        self,
        addr: int,
        prev: tuple,
        cur_ids: tuple,
        cur_iters: tuple,
    ) -> None:
        p_ids, p_iters, _p_sites, _p_line, _p_var = prev
        if p_ids is cur_ids:
            return  # same context: stacks cannot diverge
        limit = min(len(p_ids), len(cur_ids))
        d = 0
        while d < limit and p_ids[d] == cur_ids[d]:
            d += 1
        if d == 0 or d >= len(p_ids) or d >= len(cur_ids):
            return
        w_act = p_ids[d]
        r_act = cur_ids[d]
        w_static, w_kind = self._act_info[w_act]
        r_static, r_kind = self._act_info[r_act]
        if w_kind != "loop" or r_kind != "loop" or w_static == r_static:
            return
        ix = p_iters[d]
        iy = cur_iters[d]
        if ix == _NO_ITER or iy == _NO_ITER:
            return
        seen_key = (r_act, w_static, addr)
        if seen_key in self._pair_seen:
            return
        self._pair_seen.add(seen_key)
        self.profile.pairs.setdefault((w_static, r_static), []).append((ix, iy))

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        if element:
            self._array_addrs.add(addr)
            self.profile.array_accesses += 1
        ids = self._ids_t
        iters = self._iters_t
        sites = self._sites_t
        prev_write = self._last_write.get(addr)
        if prev_write is not None:
            self._record_dep(RAW, prev_write, ids, iters, sites, line, var)
            self._record_pair(addr, prev_write, ids, iters)
        self._last_read[addr] = (ids, iters, sites, line, var)
        self._touch(addr, var, line, is_write=False)

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        if element:
            self._array_addrs.add(addr)
            self.profile.array_accesses += 1
        ids = self._ids_t
        iters = self._iters_t
        sites = self._sites_t
        prev_write = self._last_write.get(addr)
        if prev_write is not None:
            self._record_dep(WAW, prev_write, ids, iters, sites, line, var)
        prev_read = self._last_read.get(addr)
        if prev_read is not None:
            self._record_dep(WAR, prev_read, ids, iters, sites, line, var)
        self._last_write[addr] = (ids, iters, sites, line, var)
        self._touch(addr, var, line, is_write=True)

    # ------------------------------------------------------------------
    # batched fast path
    # ------------------------------------------------------------------

    def consume_batch(self, events: Sequence[tuple]) -> None:
        """Process a chunk of interpreter events with hoisted state.

        Semantically identical to dispatching each event to the per-event
        handlers above; the read path (the hottest) is fully inlined,
        including RAW dependence and multi-loop iteration-pair recording.
        """
        profile = self.profile
        deps = self._deps_raw
        last_write = self._last_write
        last_read = self._last_read
        act_info = self._act_info
        pair_seen = self._pair_seen
        pairs = profile.pairs
        loop_accessed = profile.loop_accessed
        loop_var_reads = profile.loop_var_reads
        read_first = profile.read_first
        touch_memo = self._touch_memo
        line_costs = profile.line_costs
        site_costs = profile.site_costs
        array_addrs = self._array_addrs
        statics = self._statics
        seen = self._seen
        loop_idx = self._loop_idx
        iters = self._iters
        sites = self._sites
        act_costs = self._act_costs
        pet_stack = self._pet_stack
        ct_stack = self._ct_stack
        iter_marks = self._iter_marks
        ids_t = self._ids_t
        iters_t = self._iters_t
        sites_t = self._sites_t
        for ev in events:
            tag = ev[0]
            if tag == EV_READ:
                _, addr, var, line, element = ev
                if element:
                    array_addrs.add(addr)
                    profile.array_accesses += 1
                prev = last_write.get(addr)
                if prev is not None:
                    p_ids = prev[0]
                    if p_ids is ids_t:
                        d = len(p_ids)
                    else:
                        limit = min(len(p_ids), len(ids_t))
                        d = 0
                        while d < limit and p_ids[d] == ids_t[d]:
                            d += 1
                    if d:
                        p_iters = prev[1]
                        m = d - 1
                        region, region_kind = act_info[p_ids[m]]
                        carrier = None
                        if region_kind == "loop":
                            pim = p_iters[m]
                            cim = iters_t[m]
                            if pim != cim and pim != _NO_ITER and cim != _NO_ITER:
                                carrier = region
                        key = (
                            RAW, prev[4], region, carrier,
                            prev[3], line, prev[2][m], sites_t[m],
                        )
                        count = deps.get(key)
                        deps[key] = 1 if count is None else count + 1
                        # multi-loop iteration pair: only possible when the
                        # two context stacks diverge below the common prefix
                        if d < len(p_ids) and d < len(ids_t):
                            w_static, w_kind = act_info[p_ids[d]]
                            r_static, r_kind = act_info[ids_t[d]]
                            if (
                                w_kind == "loop"
                                and r_kind == "loop"
                                and w_static != r_static
                            ):
                                ix = p_iters[d]
                                iy = iters_t[d]
                                if ix != _NO_ITER and iy != _NO_ITER:
                                    skey = (ids_t[d], w_static, addr)
                                    if skey not in pair_seen:
                                        pair_seen.add(skey)
                                        pk = (w_static, r_static)
                                        lst = pairs.get(pk)
                                        if lst is None:
                                            pairs[pk] = [(ix, iy)]
                                        else:
                                            lst.append((ix, iy))
                last_read[addr] = (ids_t, iters_t, sites_t, line, var)
                mkey = (line, var, False)
                if mkey not in touch_memo:
                    touch_memo.add(mkey)
                    for i in loop_idx:
                        k = (statics[i], var)
                        loop_accessed.add(k)
                        lines = loop_var_reads.get(k)
                        if lines is None:
                            loop_var_reads[k] = {line}
                        else:
                            lines.add(line)
                for i in reversed(loop_idx):
                    level_seen = seen[i]
                    if addr in level_seen:
                        break
                    level_seen.add(addr)
                    read_first.add((statics[i], var))
            elif tag == EV_WRITE:
                _, addr, var, line, element = ev
                if element:
                    array_addrs.add(addr)
                    profile.array_accesses += 1
                prev = last_write.get(addr)
                if prev is not None:
                    self._record_dep(WAW, prev, ids_t, iters_t, sites_t, line, var)
                prev = last_read.get(addr)
                if prev is not None:
                    self._record_dep(WAR, prev, ids_t, iters_t, sites_t, line, var)
                last_write[addr] = (ids_t, iters_t, sites_t, line, var)
                mkey = (line, var, True)
                if mkey not in touch_memo:
                    touch_memo.add(mkey)
                    loop_var_writes = profile.loop_var_writes
                    for i in loop_idx:
                        k = (statics[i], var)
                        loop_accessed.add(k)
                        lines = loop_var_writes.get(k)
                        if lines is None:
                            loop_var_writes[k] = {line}
                        else:
                            lines.add(line)
                for i in reversed(loop_idx):
                    level_seen = seen[i]
                    if addr in level_seen:
                        break
                    level_seen.add(addr)
            elif tag == EV_COST:
                line = ev[1]
                amount = ev[2]
                profile.total_cost += amount
                count = line_costs.get(line)
                line_costs[line] = amount if count is None else count + amount
                if act_costs:
                    act_costs[-1] += amount
                    pet_stack[-1].exclusive_cost += amount
                    node = ct_stack[-1]
                    if node is not None:
                        node.exclusive_cost += amount
                    k = (statics[-1], line)
                    count = site_costs.get(k)
                    site_costs[k] = amount if count is None else count + amount
                else:
                    self._pre_cost += amount
            elif tag == EV_STMT:
                line = ev[1]
                if sites and sites[-1] != line:
                    sites[-1] = line
                    sites_t = sites_t[:-1] + (line,)
                    self._sites_t = sites_t
            elif tag == EV_ITER:
                index = ev[2]
                iters[-1] = index
                iters_t = iters_t[:-1] + (index,)
                self._iters_t = iters_t
                seen[-1] = set()
                node = ct_stack[-1]
                if node is not None and index > 0:
                    acc = act_costs[-1]
                    node.per_iter_cost.append(acc - iter_marks[-1])
                    iter_marks[-1] = acc
            else:
                if tag == EV_ENTER_FUNC:
                    self._enter(ev[1], ev[2], "function", ev[3], ev[3])
                elif tag == EV_EXIT_FUNC:
                    self._exit()
                elif tag == EV_ENTER_LOOP:
                    self._enter(ev[1], ev[2], "loop", ev[3], ev[3])
                elif tag == EV_EXIT_LOOP:
                    self._exit(ev[3])
                else:  # pragma: no cover - exhaustiveness guard
                    raise ValueError(f"unknown event tag {tag!r}")
                # region transitions rebuild the context snapshots
                ids_t = self._ids_t
                iters_t = self._iters_t
                sites_t = self._sites_t

    # ------------------------------------------------------------------

    def finish(self) -> None:
        profile = self.profile
        if self._deps_raw:
            deps = profile.deps
            for key, count in self._deps_raw.items():
                dep = DepKey(*key)
                deps[dep] = deps.get(dep, 0) + count
            self._deps_raw = {}
        # Sorted by region id so live profiles iterate identically to
        # cache-round-tripped ones (the serializer emits sorted order, and
        # detector insertion order rides on this dict's iteration order).
        profile.loop_trips = {k: tuple(self._trips[k]) for k in sorted(self._trips)}
        profile.unique_array_addresses = len(self._array_addrs)
        if profile.pet is not None:
            profile.pet.compute_inclusive()
