"""The streaming profiler sink.

One pass over the interpreter's event stream produces everything the pattern
detectors need.  The design mirrors DiscoPoP's split into a dependence
profiler and a region/PET profiler (Section II), but runs both in a single
shadow-memory sweep:

* **Context tracking** — a stack of activations (function calls and loop
  entries), each with its static region id, current iteration number, and
  the source line of the statement currently executing at that level (its
  *site*).  Sites are what summarize nested work to call sites when
  dependences are lifted to a region's CU graph.
* **Shadow memory** — last writer and last reader per address.  Each access
  is compared against the shadow entry to emit RAW/WAR/WAW dependences,
  attributed to the deepest common activation and classified as carried or
  independent there.
* **Privatization** — per loop iteration, the first access to each address
  is tracked; a ``(loop, var)`` that is ever read before written in an
  iteration is marked ``read_first`` (not privatizable).
* **Multi-loop pairs** — a RAW dependence whose endpoints sit in *different
  sibling loops* contributes an ``(i_x, i_y)`` iteration pair: the last
  write iteration of loop *x* and the first read iteration of loop *y* for
  that address (Section III-A's post-analysis, done online).
* **PET** — activations are folded into a Program Execution Tree: loop
  iterations merge, recursive calls merge into their ancestor node.
* **Call tree** — the full dynamic activation tree with inclusive costs and
  per-iteration loop costs, used for work/span speedup estimation and the
  pipeline schedule simulator.
"""

from __future__ import annotations

from repro.profiling.model import RAW, WAR, WAW, CallNode, DepKey, PETNode, Profile
from repro.runtime.events import Sink

_NO_ITER = -1


class Profiler(Sink):
    """Sink that builds a :class:`Profile` from one interpreted run."""

    def __init__(
        self,
        record_calltree: bool = True,
        max_calltree_nodes: int = 500_000,
    ) -> None:
        self.profile = Profile()
        # context stacks (parallel lists)
        self._ids: list[int] = []
        self._statics: list[int] = []
        self._kinds: list[str] = []
        self._iters: list[int] = []
        self._sites: list[int] = []
        self._act_info: dict[int, tuple[int, str]] = {}
        # privatization: per-level set of addresses touched this iteration
        self._seen: list[set[int] | None] = []
        # shadow memory: addr -> (ids, iters, sites, line, var)
        self._last_write: dict[int, tuple] = {}
        self._last_read: dict[int, tuple] = {}
        # pair first-read bookkeeping: (reader_act, writer_loop, addr)
        self._pair_seen: set[tuple[int, int, int]] = set()
        # PET
        self._pet_counter = 0
        self._pet_stack: list[PETNode] = []
        # cost accounting
        self._act_costs: list[int] = []
        self._pre_cost = 0
        # call tree
        self._record_ct = record_calltree
        self._max_ct = max_calltree_nodes
        self._ct_nodes = 0
        self._ct_stack: list[CallNode | None] = []
        self._iter_marks: list[int] = []
        # loop trip accumulation: static loop -> [invocations, total, max]
        self._trips: dict[int, list[int]] = {}
        # working-set tracking (array traffic only — scalars stay in cache)
        self._array_addrs: set[int] = set()
        # cached immutable snapshots of the context stacks (hot path:
        # rebuilding them per mutation beats tuple() per memory event)
        self._ids_t: tuple[int, ...] = ()
        self._iters_t: tuple[int, ...] = ()
        self._sites_t: tuple[int, ...] = ()
        # indices of the loop levels within the stacks (skips function
        # levels in the per-event _touch sweep)
        self._loop_idx: list[int] = []

    # ------------------------------------------------------------------
    # region transitions
    # ------------------------------------------------------------------

    def _enter(self, region: int, act: int, kind: str, site_line: int, line: int) -> None:
        parent_site = self._sites[-1] if self._sites else site_line
        self._ids.append(act)
        self._statics.append(region)
        self._kinds.append(kind)
        self._iters.append(_NO_ITER)
        self._sites.append(line)
        self._act_info[act] = (region, kind)
        self._seen.append(set() if kind == "loop" else None)
        if kind == "loop":
            self._loop_idx.append(len(self._kinds) - 1)
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._act_costs.append(0)
        self._iter_marks.append(0)
        self._enter_pet(region, kind, line)
        # call tree
        node: CallNode | None = None
        if self._record_ct and self._ct_nodes < self._max_ct:
            node = CallNode(
                act_id=act,
                region=region,
                kind=kind,
                site_line=parent_site,
                parent=self._ct_stack[-1] if self._ct_stack else None,
            )
            self._ct_nodes += 1
            if node.parent is not None:
                node.parent.children.append(node)
            elif self.profile.calltree is None:
                self.profile.calltree = node
        self._ct_stack.append(node)

    def _enter_pet(self, region: int, kind: str, line: int) -> None:
        name = f"{kind}@{line}"
        if kind == "function":
            # recursion merging: reuse an ancestor node for the same region
            for node in reversed(self._pet_stack):
                if node.region == region and node.kind == "function":
                    node.recursive = True
                    node.invocations += 1
                    self._pet_stack.append(node)
                    return
        parent = self._pet_stack[-1] if self._pet_stack else None
        node = parent.child_for(region) if parent is not None else None
        if node is None or node.kind != kind:
            node = PETNode(
                node_id=self._pet_counter,
                region=region,
                kind=kind,
                name=name,
                line=line,
                parent=parent,
            )
            self._pet_counter += 1
            if parent is not None:
                parent.children.append(node)
            elif self.profile.pet is None:
                self.profile.pet = node
        node.invocations += 1
        self._pet_stack.append(node)

    def _exit(self, trip_count: int | None = None) -> None:
        inclusive = self._act_costs.pop()
        static = self._statics.pop()
        self._ids.pop()
        kind = self._kinds.pop()
        self._iters.pop()
        self._sites.pop()
        self._seen.pop()
        if kind == "loop":
            self._loop_idx.pop()
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._iter_marks.pop()
        pet_node = self._pet_stack.pop()
        ct_node = self._ct_stack.pop()
        if ct_node is not None:
            ct_node.inclusive_cost = inclusive
            if kind == "loop" and ct_node.per_iter_cost:
                # fold the final condition-test sliver into the last iteration
                residue = inclusive - sum(ct_node.per_iter_cost)
                if residue > 0:
                    ct_node.per_iter_cost[-1] += residue
        if kind == "loop" and trip_count is not None:
            pet_node.total_trips += trip_count
            acc = self._trips.setdefault(static, [0, 0, 0])
            acc[0] += 1
            acc[1] += trip_count
            acc[2] = max(acc[2], trip_count)
        if self._act_costs:
            self._act_costs[-1] += inclusive
            key = (self._statics[-1], self._sites[-1])
            self.profile.site_costs[key] = self.profile.site_costs.get(key, 0) + inclusive

    # -- Sink interface -------------------------------------------------

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        self._enter(region_id, activation_id, "function", call_line, call_line)

    def exit_function(self, region_id: int, activation_id: int) -> None:
        self._exit()

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        self._enter(region_id, activation_id, "loop", line, line)

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        self._exit(trip_count)

    def loop_iteration(self, region_id: int, index: int) -> None:
        self._iters[-1] = index
        self._iters_t = self._iters_t[:-1] + (index,)
        self._seen[-1] = set()
        node = self._ct_stack[-1]
        if node is not None and index > 0:
            acc = self._act_costs[-1]
            node.per_iter_cost.append(acc - self._iter_marks[-1])
            self._iter_marks[-1] = acc

    def on_stmt(self, line: int) -> None:
        sites = self._sites
        if sites and sites[-1] != line:
            sites[-1] = line
            self._sites_t = self._sites_t[:-1] + (line,)

    def on_cost(self, line: int, amount: int) -> None:
        p = self.profile
        p.total_cost += amount
        p.line_costs[line] = p.line_costs.get(line, 0) + amount
        if not self._act_costs:
            self._pre_cost += amount
            return
        self._act_costs[-1] += amount
        self._pet_stack[-1].exclusive_cost += amount
        node = self._ct_stack[-1]
        if node is not None:
            node.exclusive_cost += amount
        key = (self._statics[-1], line)
        p.site_costs[key] = p.site_costs.get(key, 0) + amount

    # ------------------------------------------------------------------
    # memory accesses
    # ------------------------------------------------------------------

    def _touch(self, addr: int, var: str, line: int, is_write: bool) -> None:
        statics = self._statics
        seen = self._seen
        profile = self.profile
        for i in self._loop_idx:
            key = (statics[i], var)
            profile.loop_accessed.add(key)
            if is_write:
                lines = profile.loop_var_writes.get(key)
                if lines is None:
                    profile.loop_var_writes[key] = {line}
                else:
                    lines.add(line)
            else:
                lines = profile.loop_var_reads.get(key)
                if lines is None:
                    profile.loop_var_reads[key] = {line}
                else:
                    lines.add(line)
            level_seen = seen[i]
            if addr not in level_seen:
                level_seen.add(addr)
                if not is_write:
                    profile.read_first.add(key)

    def _record_dep(
        self,
        kind: str,
        prev: tuple,
        cur_ids: tuple,
        cur_iters: tuple,
        cur_sites: tuple,
        line: int,
        var: str,
    ) -> None:
        p_ids, p_iters, p_sites, p_line, p_var = prev
        limit = min(len(p_ids), len(cur_ids))
        d = 0
        while d < limit and p_ids[d] == cur_ids[d]:
            d += 1
        if d == 0:
            return
        m = d - 1
        region, region_kind = self._act_info[p_ids[m]]
        carrier: int | None = None
        if (
            region_kind == "loop"
            and p_iters[m] != cur_iters[m]
            and p_iters[m] != _NO_ITER
            and cur_iters[m] != _NO_ITER
        ):
            carrier = region
        key = DepKey(
            kind, p_var, region, carrier, p_line, line, p_sites[m], cur_sites[m]
        )
        deps = self.profile.deps
        deps[key] = deps.get(key, 0) + 1

    def _record_pair(
        self,
        addr: int,
        prev: tuple,
        cur_ids: tuple,
        cur_iters: tuple,
    ) -> None:
        p_ids, p_iters, _p_sites, _p_line, _p_var = prev
        limit = min(len(p_ids), len(cur_ids))
        d = 0
        while d < limit and p_ids[d] == cur_ids[d]:
            d += 1
        if d == 0 or d >= len(p_ids) or d >= len(cur_ids):
            return
        w_act = p_ids[d]
        r_act = cur_ids[d]
        w_static, w_kind = self._act_info[w_act]
        r_static, r_kind = self._act_info[r_act]
        if w_kind != "loop" or r_kind != "loop" or w_static == r_static:
            return
        ix = p_iters[d]
        iy = cur_iters[d]
        if ix == _NO_ITER or iy == _NO_ITER:
            return
        seen_key = (r_act, w_static, addr)
        if seen_key in self._pair_seen:
            return
        self._pair_seen.add(seen_key)
        self.profile.pairs.setdefault((w_static, r_static), []).append((ix, iy))

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        if element:
            self._array_addrs.add(addr)
            self.profile.array_accesses += 1
        ids = self._ids_t
        iters = self._iters_t
        sites = self._sites_t
        prev_write = self._last_write.get(addr)
        if prev_write is not None:
            self._record_dep(RAW, prev_write, ids, iters, sites, line, var)
            self._record_pair(addr, prev_write, ids, iters)
        self._last_read[addr] = (ids, iters, sites, line, var)
        self._touch(addr, var, line, is_write=False)

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        if element:
            self._array_addrs.add(addr)
            self.profile.array_accesses += 1
        ids = self._ids_t
        iters = self._iters_t
        sites = self._sites_t
        prev_write = self._last_write.get(addr)
        if prev_write is not None:
            self._record_dep(WAW, prev_write, ids, iters, sites, line, var)
        prev_read = self._last_read.get(addr)
        if prev_read is not None:
            self._record_dep(WAR, prev_read, ids, iters, sites, line, var)
        self._last_write[addr] = (ids, iters, sites, line, var)
        self._touch(addr, var, line, is_write=True)

    # ------------------------------------------------------------------

    def finish(self) -> None:
        profile = self.profile
        profile.loop_trips = {k: tuple(v) for k, v in self._trips.items()}
        profile.unique_array_addresses = len(self._array_addrs)
        if profile.pet is not None:
            profile.pet.compute_inclusive()
