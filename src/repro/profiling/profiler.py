"""The streaming profiler sink.

One pass over the interpreter's event stream produces everything the pattern
detectors need.  The design mirrors DiscoPoP's split into a dependence
profiler and a region/PET profiler (Section II), but runs both in a single
shadow-memory sweep:

* **Context tracking** — a stack of activations (function calls and loop
  entries), each with its static region id, current iteration number, and
  the source line of the statement currently executing at that level (its
  *site*).  Sites are what summarize nested work to call sites when
  dependences are lifted to a region's CU graph.
* **Shadow memory** — last writer and last reader per address.  Each access
  is compared against the shadow entry to emit RAW/WAR/WAW dependences,
  attributed to the deepest common activation and classified as carried or
  independent there.
* **Privatization** — per loop iteration, the first access to each address
  is tracked; a ``(loop, var)`` that is ever read before written in an
  iteration is marked ``read_first`` (not privatizable).
* **Multi-loop pairs** — a RAW dependence whose endpoints sit in *different
  sibling loops* contributes an ``(i_x, i_y)`` iteration pair: the last
  write iteration of loop *x* and the first read iteration of loop *y* for
  that address (Section III-A's post-analysis, done online).
* **PET** — activations are folded into a Program Execution Tree: loop
  iterations merge, recursive calls merge into their ancestor node.
* **Call tree** — the full dynamic activation tree with inclusive costs and
  per-iteration loop costs, used for work/span speedup estimation and the
  pipeline schedule simulator.

Fast path
---------
The profiler receives events in chunks through :meth:`Profiler.consume_batch`
(see ``repro.runtime.events``): the read/write/cost/stmt/iteration handlers
are inlined in one loop with all per-event state hoisted into locals.
Access events carry ``(tag, addr, sid)`` where ``sid`` indexes the program's
static :class:`~repro.runtime.sites.SiteTable`; the per-event ``Sink``
methods remain as the reference implementation and simply wrap each call
into a one-event batch, so interleaving them with batched delivery is safe.

In-loop dependence summarization
--------------------------------
Deriving a dependence from a shadow entry means scanning two context stacks
for their divergence point, classifying the carrier, and building an
aggregation key — per access.  But inside a loop the stream is massively
repetitive: consecutive accesses at one site hit addresses whose shadow
entries were written by the *same* site under the *same* pair of activation
stacks, usually marching with a fixed stride.  The profiler therefore keeps
one **stride-run descriptor** per (current sid, dependence kind): the pair
of context-stack snapshots it was derived under (compared by object
identity — snapshots are immutable and rebuilt on region transitions, and
the descriptor holds strong references so an id can never be recycled), the
divergence level, the pre-built aggregation keys for the carried and
independent variants, the running access counts, and the current
``(base, stride, count)`` run of addresses.  While a descriptor matches,
recording a dependence is a handful of integer compares and a counter
bump; the first access that breaks the run — a different writer site, a
rebuilt context, a changed site line at the divergence level — falls back
to the exact per-access derivation, which installs a fresh descriptor.
Descriptor counts are folded into the aggregated dependence table when a
descriptor is replaced and at :meth:`finish`, so the result is **exactly**
the per-access table, event for event; only the work is collapsed.

Dependences whose endpoints share the whole activation stack — the
dominant case: in-loop affine accesses and recursion-local cells — take a
cheaper descriptor family still (the ``_S_*`` slots): divergence is
necessarily at the innermost level, so validity reduces to three scalar
compares and the descriptor never references a stack snapshot, which
keeps it valid across activation churn where the snapshot-identity
descriptors of recursive programs miss on every call.

First-touch bookkeeping gets the same treatment: once a ``(loop, var)`` is
marked ``read_first`` at every live loop level, further marks are no-ops,
and for alias-free programs (see ``repro.runtime.sites``) the per-iteration
first-touch walk for that variable can be skipped wholesale.  Write sites
of variables the program never reads skip it too — their walk exists only
to suppress read marks that can never come.
"""

from __future__ import annotations

from typing import Sequence

from repro.profiling.model import RAW, WAR, WAW, CallNode, DepKey, PETNode, Profile
from repro.runtime.events import (
    EV_COST,
    EV_ENTER_FUNC,
    EV_ENTER_LOOP,
    EV_EXIT_FUNC,
    EV_EXIT_LOOP,
    EV_ITER,
    EV_READ,
    EV_STMT,
    EV_WRITE,
    Sink,
)
from repro.runtime.sites import SiteTable

_NO_ITER = -1

# Descriptor dicts are keyed by ``sid * _KEYM + psid`` — one int, hashed by
# value — so a site whose addresses alternate between two writer sites (a
# set/reset pair in a backtracking loop, say) keeps one live descriptor per
# writer instead of thrashing a single per-sid slot.  Site ids are dense
# small ints (static sites plus a handful of runtime pseudo sites), so the
# packing never collides in practice.
_KEYM = 1 << 20

# Stride-run descriptor slots (plain lists: fastest mutable record in
# CPython).  See the module docstring for the validity rules.
_T_PIDS = 0  # shadow entry's activation-id snapshot (identity-checked)
_T_PSID = 1  # shadow entry's site id (implied by the dict key)
_T_CIDS = 2  # current activation-id snapshot (identity-checked)
_T_M = 3  # divergence level minus one; -1 encodes "no common activation"
_T_LOOP = 4  # True when the common activation is a loop
_T_PSITE = 5  # expected source site line at level m
_T_CSITE = 6  # expected sink site line at level m
_T_KEY0 = 7  # aggregation key, independent variant
_T_KEY1 = 8  # aggregation key, carried variant (None for non-loops)
_T_N0 = 9  # accesses counted as independent
_T_N1 = 10  # accesses counted as carried
_T_PAIR = 11  # multi-loop pair recipe (w_static, d, r_act, pair_key) or None
_T_STRIDE = 12  # address stride of the current run (None before 2nd access)
_T_LAST = 13  # last address seen
_T_RUNS = 14  # completed stride runs
_T_MAXRUN = 15  # longest completed run
_T_CURN = 16  # length of the current run

# Same-activation descriptor slots.  When a shadow entry's activation-id
# snapshot *is* the current snapshot (checked by object identity), both
# endpoints share the whole stack: the divergence level is always the
# innermost one, the pair condition (endpoints in different sibling loops)
# can never hold, and the aggregation key depends on nothing but the two
# site ids, the innermost region, and the two innermost site lines.  Such
# descriptors carry no stack snapshots at all, so they stay valid across
# activation churn — recursive programs, whose fresh snapshot per call
# defeats the _T_* descriptors, summarize through these instead.
_S_PSID = 0  # shadow entry's site id (implied by the dict key)
_S_PSITE = 1  # expected source site line at the innermost level
_S_CSITE = 2  # expected sink site line at the innermost level
_S_KEY0 = 3  # aggregation key, independent variant
_S_KEY1 = 4  # aggregation key, carried variant (None for non-loops)
_S_LOOP = 5  # True when the innermost activation is a loop
_S_N0 = 6  # accesses counted as independent
_S_N1 = 7  # accesses counted as carried
_S_STRIDE = 8  # address stride of the current run (None before 2nd access)
_S_LAST = 9  # last address seen
_S_RUNS = 10  # completed stride runs
_S_MAXRUN = 11  # longest completed run
_S_CURN = 12  # length of the current run


class Profiler(Sink):
    """Sink that builds a :class:`Profile` from one interpreted run."""

    def __init__(
        self,
        record_calltree: bool = True,
        max_calltree_nodes: int = 500_000,
    ) -> None:
        self.profile = Profile()
        # context stacks (parallel lists)
        self._ids: list[int] = []
        self._statics: list[int] = []
        self._kinds: list[str] = []
        self._iters: list[int] = []
        self._sites: list[int] = []
        self._act_info: dict[int, tuple[int, str]] = {}
        # privatization: per-level set of addresses touched this iteration
        self._seen: list[set[int] | None] = []
        # shadow memory: addr -> ((ids, iters, sites), sid)
        self._last_write: dict[int, tuple] = {}
        self._last_read: dict[int, tuple] = {}
        # pair first-read bookkeeping: (reader_act, writer_loop, addr)
        self._pair_seen: set[tuple[int, int, int]] = set()
        # aggregated dependences under compact (kind, psid, sid, region,
        # carrier, src_site, dst_site) keys; materialized into DepKey
        # records once at finish()
        self._deps_raw: dict[tuple, int] = {}
        # stride-run dependence descriptors, one per (current sid, kind);
        # the _tpl_* dicts cover cross-activation dependences, the _same_*
        # dicts cover dependences whose endpoints share the activation
        # stack (the dominant case: in-loop affine accesses and
        # recursion-local cells) with a depth-independent validity check
        self._tpl_raw: dict[int, list] = {}
        self._tpl_waw: dict[int, list] = {}
        self._tpl_war: dict[int, list] = {}
        self._same_raw: dict[int, list] = {}
        self._same_waw: dict[int, list] = {}
        self._same_war: dict[int, list] = {}
        self._tpl_installs = 0
        self._sum_events = 0
        self._stride_runs = 0
        self._longest_run = 0
        # PET
        self._pet_counter = 0
        self._pet_stack: list[PETNode] = []
        # cost accounting
        self._act_costs: list[int] = []
        self._pre_cost = 0
        # call tree
        self._record_ct = record_calltree
        self._max_ct = max_calltree_nodes
        self._ct_nodes = 0
        self._ct_stack: list[CallNode | None] = []
        self._iter_marks: list[int] = []
        # loop trip accumulation: static loop -> [invocations, total, max]
        self._trips: dict[int, list[int]] = {}
        # working-set tracking (array traffic only — scalars stay in cache)
        self._array_addrs: set[int] = set()
        # cached immutable snapshots of the context stacks (hot path:
        # rebuilding them per mutation beats tuple() per memory event);
        # _ctx bundles them so shadow entries share one triple per state
        self._ids_t: tuple[int, ...] = ()
        self._iters_t: tuple[int, ...] = ()
        self._sites_t: tuple[int, ...] = ()
        self._ctx: tuple = ((), (), ())
        # indices of the loop levels within the stacks (skips function
        # levels in the per-event first-touch sweep)
        self._loop_idx: list[int] = []
        # per-sid first-touch verdicts for the current loop stack:
        # 1 = walk provably a no-op, skip it; 2 = walk normally.  A sid
        # missing from the dict doubles as "first touch under this loop
        # stack": the miss path updates the loop access tables before
        # deciding, so one lookup serves both jobs.  Cleared on loop
        # entry/exit.
        self._ft_state: dict[int, int] = {}
        self._af = False
        # a default table so hand-driven sinks work without an engine;
        # engines replace it via set_site_table before any event flows
        self.set_site_table(SiteTable())

    def set_site_table(self, table: SiteTable) -> None:
        self._site_table = table
        self._s_lines = table.lines
        self._s_vars = table.vars
        self._s_elems = table.elements
        self._af = table.alias_free
        n = table.n_static
        self._vars_with_reads = {
            table.vars[i] for i in range(n) if not table.writes[i]
        }

    def _sid_for(self, line: int, var: str, write: bool, element: bool) -> int:
        """Site id for a per-event-API access (allocates a pseudo site)."""
        table = self._site_table
        before = len(table.lines)
        sid = table.pseudo_sid(line, var, write, element)
        if sid >= before and not write and var not in self._vars_with_reads:
            # a read of a variable the static table thought was write-only:
            # first-touch verdicts based on that assumption are stale
            self._vars_with_reads.add(var)
            self._ft_state.clear()
        return sid

    # ------------------------------------------------------------------
    # region transitions
    # ------------------------------------------------------------------

    def _enter(self, region: int, act: int, kind: str, site_line: int, line: int) -> None:
        parent_site = self._sites[-1] if self._sites else site_line
        self._ids.append(act)
        self._statics.append(region)
        self._kinds.append(kind)
        self._iters.append(_NO_ITER)
        self._sites.append(line)
        self._act_info[act] = (region, kind)
        self._seen.append(set() if kind == "loop" else None)
        if kind == "loop":
            self._loop_idx.append(len(self._kinds) - 1)
            self._ft_state.clear()
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._ctx = (self._ids_t, self._iters_t, self._sites_t)
        self._act_costs.append(0)
        self._iter_marks.append(0)
        self._enter_pet(region, kind, line)
        # call tree
        node: CallNode | None = None
        if self._record_ct and self._ct_nodes < self._max_ct:
            node = CallNode(
                act_id=act,
                region=region,
                kind=kind,
                site_line=parent_site,
                parent=self._ct_stack[-1] if self._ct_stack else None,
            )
            self._ct_nodes += 1
            if node.parent is not None:
                node.parent.children.append(node)
            elif self.profile.calltree is None:
                self.profile.calltree = node
        self._ct_stack.append(node)

    def _enter_pet(self, region: int, kind: str, line: int) -> None:
        name = f"{kind}@{line}"
        if kind == "function":
            # recursion merging: reuse an ancestor node for the same region
            for node in reversed(self._pet_stack):
                if node.region == region and node.kind == "function":
                    node.recursive = True
                    node.invocations += 1
                    self._pet_stack.append(node)
                    return
        parent = self._pet_stack[-1] if self._pet_stack else None
        node = parent.child_for(region) if parent is not None else None
        if node is None or node.kind != kind:
            node = PETNode(
                node_id=self._pet_counter,
                region=region,
                kind=kind,
                name=name,
                line=line,
                parent=parent,
            )
            self._pet_counter += 1
            if parent is not None:
                parent.children.append(node)
            elif self.profile.pet is None:
                self.profile.pet = node
        node.invocations += 1
        self._pet_stack.append(node)

    def _exit(self, trip_count: int | None = None) -> None:
        inclusive = self._act_costs.pop()
        static = self._statics.pop()
        self._ids.pop()
        kind = self._kinds.pop()
        self._iters.pop()
        self._sites.pop()
        self._seen.pop()
        if kind == "loop":
            self._loop_idx.pop()
            self._ft_state.clear()
        self._ids_t = tuple(self._ids)
        self._iters_t = tuple(self._iters)
        self._sites_t = tuple(self._sites)
        self._ctx = (self._ids_t, self._iters_t, self._sites_t)
        self._iter_marks.pop()
        pet_node = self._pet_stack.pop()
        ct_node = self._ct_stack.pop()
        if ct_node is not None:
            ct_node.inclusive_cost = inclusive
            if kind == "loop" and ct_node.per_iter_cost:
                # fold the final condition-test sliver into the last iteration
                residue = inclusive - sum(ct_node.per_iter_cost)
                if residue > 0:
                    ct_node.per_iter_cost[-1] += residue
        if kind == "loop" and trip_count is not None:
            pet_node.total_trips += trip_count
            acc = self._trips.setdefault(static, [0, 0, 0])
            acc[0] += 1
            acc[1] += trip_count
            acc[2] = max(acc[2], trip_count)
        if self._act_costs:
            self._act_costs[-1] += inclusive
            key = (self._statics[-1], self._sites[-1])
            self.profile.site_costs[key] = self.profile.site_costs.get(key, 0) + inclusive

    # -- Sink interface -------------------------------------------------

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        self._enter(region_id, activation_id, "function", call_line, call_line)

    def exit_function(self, region_id: int, activation_id: int) -> None:
        self._exit()

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        self._enter(region_id, activation_id, "loop", line, line)

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        self._exit(trip_count)

    def loop_iteration(self, region_id: int, index: int) -> None:
        self._iters[-1] = index
        self._iters_t = self._iters_t[:-1] + (index,)
        self._ctx = (self._ids_t, self._iters_t, self._sites_t)
        self._seen[-1] = set()
        node = self._ct_stack[-1]
        if node is not None and index > 0:
            acc = self._act_costs[-1]
            node.per_iter_cost.append(acc - self._iter_marks[-1])
            self._iter_marks[-1] = acc

    def on_stmt(self, line: int) -> None:
        sites = self._sites
        if sites and sites[-1] != line:
            sites[-1] = line
            self._sites_t = self._sites_t[:-1] + (line,)
            self._ctx = (self._ids_t, self._iters_t, self._sites_t)

    def on_cost(self, line: int, amount: int) -> None:
        p = self.profile
        p.total_cost += amount
        p.line_costs[line] = p.line_costs.get(line, 0) + amount
        if not self._act_costs:
            self._pre_cost += amount
            return
        self._act_costs[-1] += amount
        self._pet_stack[-1].exclusive_cost += amount
        node = self._ct_stack[-1]
        if node is not None:
            node.exclusive_cost += amount
        key = (self._statics[-1], line)
        p.site_costs[key] = p.site_costs.get(key, 0) + amount

    # ------------------------------------------------------------------
    # memory accesses (reference path: one-event batches)
    # ------------------------------------------------------------------

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        sid = self._sid_for(line, var, False, element)
        self.consume_batch(((EV_READ, addr, sid),))

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        sid = self._sid_for(line, var, True, element)
        self.consume_batch(((EV_WRITE, addr, sid),))

    # ------------------------------------------------------------------
    # dependence derivation (exact path; installs stride-run descriptors)
    # ------------------------------------------------------------------

    def _flush_tpl(self, run: list) -> None:
        """Fold a descriptor's accumulated counts into the dependence table."""
        n = run[_T_N0] + run[_T_N1]
        self._sum_events += n
        cur = run[_T_CURN]
        self._stride_runs += run[_T_RUNS] + (1 if cur else 0)
        peak = run[_T_MAXRUN]
        if cur > peak:
            peak = cur
        if peak > self._longest_run:
            self._longest_run = peak
        if run[_T_M] < 0:
            return
        deps = self._deps_raw
        if run[_T_N0]:
            key = run[_T_KEY0]
            deps[key] = deps.get(key, 0) + run[_T_N0]
        if run[_T_N1]:
            key = run[_T_KEY1]
            deps[key] = deps.get(key, 0) + run[_T_N1]

    def _flush_same(self, run: list) -> None:
        """Fold a same-activation descriptor's counts into the table."""
        n0 = run[_S_N0]
        n1 = run[_S_N1]
        self._sum_events += n0 + n1
        cur = run[_S_CURN]
        self._stride_runs += run[_S_RUNS] + (1 if cur else 0)
        peak = run[_S_MAXRUN]
        if cur > peak:
            peak = cur
        if peak > self._longest_run:
            self._longest_run = peak
        deps = self._deps_raw
        if n0:
            key = run[_S_KEY0]
            deps[key] = deps.get(key, 0) + n0
        if n1:
            key = run[_S_KEY1]
            deps[key] = deps.get(key, 0) + n1

    # ------------------------------------------------------------------
    # batched fast path
    # ------------------------------------------------------------------

    def consume_batch(self, events: Sequence[tuple]) -> None:
        """Process a chunk of engine events with hoisted state.

        Semantically identical to the per-access reference derivation; the
        read and write paths are fully inlined, with dependence recording
        going through the stride-run descriptors described in the module
        docstring and falling back to :meth:`_dep_slow` whenever a
        descriptor's validity checks fail.
        """
        profile = self.profile
        last_write = self._last_write
        last_read = self._last_read
        pair_seen = self._pair_seen
        pairs = profile.pairs
        loop_accessed = profile.loop_accessed
        loop_var_reads = profile.loop_var_reads
        loop_var_writes = profile.loop_var_writes
        read_first = profile.read_first
        ft_state = self._ft_state
        af = self._af
        vars_with_reads = self._vars_with_reads
        line_costs = profile.line_costs
        site_costs = profile.site_costs
        array_addrs = self._array_addrs
        statics = self._statics
        seen = self._seen
        loop_idx = self._loop_idx
        iters = self._iters
        sites = self._sites
        act_costs = self._act_costs
        pet_stack = self._pet_stack
        ct_stack = self._ct_stack
        iter_marks = self._iter_marks
        s_lines = self._s_lines
        s_vars = self._s_vars
        s_elems = self._s_elems
        tpl_raw = self._tpl_raw
        tpl_waw = self._tpl_waw
        tpl_war = self._tpl_war
        same_raw = self._same_raw
        same_waw = self._same_waw
        same_war = self._same_war
        deps = self._deps_raw
        act_info = self._act_info
        installs = self._tpl_installs
        sum_events = self._sum_events
        stride_runs = self._stride_runs
        longest_run = self._longest_run
        ids_t = self._ids_t
        iters_t = self._iters_t
        sites_t = self._sites_t
        ctx = self._ctx
        # per-activation state that only changes on region transitions,
        # plus plain-integer accumulators written back once per batch
        cur_static = statics[-1] if statics else -1
        pet_top = pet_stack[-1] if pet_stack else None
        ct_top = ct_stack[-1] if ct_stack else None
        total_cost = profile.total_cost
        arr_n = profile.array_accesses
        keym = _KEYM

        def _flush(old: list) -> None:
            # Fold a displaced _T_* descriptor's counts into the table.
            nonlocal sum_events, stride_runs, longest_run
            n0 = old[9]
            n1 = old[10]
            sum_events += n0 + n1
            cur = old[16]
            stride_runs += old[14] + (1 if cur else 0)
            peak = old[15]
            if cur > peak:
                peak = cur
            if peak > longest_run:
                longest_run = peak
            if old[3] >= 0:
                if n0:
                    k = old[7]
                    deps[k] = deps.get(k, 0) + n0
                if n1:
                    k = old[8]
                    deps[k] = deps.get(k, 0) + n1

        def dep_slow(
            kind: str, prev: tuple, sid: int, addr: int, tpl: dict, dkey: int
        ) -> None:
            # Exact derivation for one access; revalidates the existing
            # descriptor in place when only its stack snapshots aged, else
            # folds its counts into the dependence table and installs a
            # fresh descriptor so following accesses take the fast path.
            # A closure so the recursion-heavy programs — whose context
            # snapshots change too often for descriptors to ever match —
            # pay no attribute traffic on their per-access fallbacks.
            nonlocal installs, sum_events, stride_runs, longest_run
            p_ctx, psid = prev
            p_ids = p_ctx[0]
            if p_ids is ids_t:
                d = len(p_ids)
            else:
                limit = min(len(p_ids), len(ids_t))
                d = 0
                while d < limit and p_ids[d] == ids_t[d]:
                    d += 1
            installs += 1
            old = tpl.get(dkey)
            if d == 0:
                if old is not None:
                    _flush(old)
                tpl[dkey] = [
                    p_ids, psid, ids_t, -1, False, 0, 0, None, None, 0, 0,
                    None, None, addr, 0, 0, 1,
                ]
                return
            m = d - 1
            region, region_kind = act_info[p_ids[m]]
            is_loop = region_kind == "loop"
            psm = p_ctx[2][m]
            csm = sites_t[m]
            carried = False
            if is_loop:
                pim = p_ctx[1][m]
                cim = iters_t[m]
                carried = pim != cim and pim != -1 and cim != -1
            pair = None
            if kind == RAW and d < len(p_ids) and d < len(ids_t):
                w_act = p_ids[d]
                r_act = ids_t[d]
                w_static, w_kind = act_info[w_act]
                r_static, r_kind = act_info[r_act]
                if w_kind == "loop" and r_kind == "loop" and w_static != r_static:
                    pair = (w_static, d, r_act, (w_static, r_static))
            if (
                old is not None
                and old[3] >= 0
                and old[5] == psm
                and old[6] == csm
                and old[7][3] == region
            ):
                # Same derived dependence — only the stack snapshots aged
                # (an inner loop re-entered, a call returned and repeated,
                # or the recursion depth shifted: the divergence level m is
                # not part of the aggregation key, so a changed m with the
                # same region and site lines is still the same dependence).
                # Revalidate in place: refresh the snapshots, level, and
                # pair recipe; keep the keys, counts, and stride run.
                old[0] = p_ids
                old[2] = ids_t
                old[3] = m
                old[11] = pair
                if carried:
                    old[10] += 1
                else:
                    old[9] += 1
                last = old[13]
                if old[12] == addr - last:
                    old[16] += 1
                else:
                    n = old[16]
                    if n > old[15]:
                        old[15] = n
                    old[14] += 1
                    old[12] = addr - last
                    old[16] = 1
                old[13] = addr
            else:
                if old is not None:
                    _flush(old)
                key0 = (kind, psid, sid, region, None, psm, csm)
                key1 = (
                    (kind, psid, sid, region, region, psm, csm)
                    if is_loop else None
                )
                run = [
                    p_ids, psid, ids_t, m, is_loop, psm, csm, key0, key1,
                    0, 0, pair, None, addr, 0, 0, 1,
                ]
                if carried:
                    run[10] = 1
                else:
                    run[9] = 1
                tpl[dkey] = run
            if pair is not None:
                ix = p_ctx[1][d]
                iy = iters_t[d]
                if ix != -1 and iy != -1:
                    skey = (r_act, pair[0], addr)
                    if skey not in pair_seen:
                        pair_seen.add(skey)
                        pk = pair[3]
                        lst = pairs.get(pk)
                        if lst is None:
                            pairs[pk] = [(ix, iy)]
                        else:
                            lst.append((ix, iy))

        def same_slow(
            kind: str, prev: tuple, sid: int, addr: int, tpl: dict, dkey: int
        ) -> None:
            # Exact derivation for a dependence whose endpoints share the
            # activation stack (prev's snapshot *is* ids_t): the divergence
            # level is the innermost one, no multi-loop pair can arise, and
            # the installed descriptor references no snapshots, so it stays
            # valid across recursion's activation churn.
            nonlocal installs, sum_events, stride_runs, longest_run
            p_ctx, psid = prev
            old = tpl.get(dkey)
            if old is not None:
                n0 = old[6]
                n1 = old[7]
                sum_events += n0 + n1
                cur = old[12]
                stride_runs += old[10] + (1 if cur else 0)
                peak = old[11]
                if cur > peak:
                    peak = cur
                if peak > longest_run:
                    longest_run = peak
                if n0:
                    k = old[3]
                    deps[k] = deps.get(k, 0) + n0
                if n1:
                    k = old[4]
                    deps[k] = deps.get(k, 0) + n1
            installs += 1
            region, region_kind = act_info[ids_t[-1]]
            is_loop = region_kind == "loop"
            psm = p_ctx[2][-1]
            csm = sites_t[-1]
            key0 = (kind, psid, sid, region, None, psm, csm)
            key1 = (kind, psid, sid, region, region, psm, csm) if is_loop else None
            run = [psid, psm, csm, key0, key1, is_loop, 0, 0, None, addr, 0, 0, 1]
            if is_loop:
                pim = p_ctx[1][-1]
                cim = iters_t[-1]
                if pim != cim and pim != -1 and cim != -1:
                    run[7] = 1
                else:
                    run[6] = 1
            else:
                run[6] = 1
            tpl[dkey] = run

        for ev in events:
            tag = ev[0]
            if tag == EV_READ:
                addr = ev[1]
                sid = ev[2]
                if s_elems[sid]:
                    array_addrs.add(addr)
                    arr_n += 1
                prev = last_write.get(addr)
                if prev is not None:
                    p_ctx = prev[0]
                    dkey = sid * keym + prev[1]
                    if p_ctx[0] is ids_t and ids_t:
                        run = same_raw.get(dkey)
                        if (
                            run is not None
                            and p_ctx[2][-1] == run[1]
                            and sites_t[-1] == run[2]
                        ):
                            if run[5]:
                                pim = p_ctx[1][-1]
                                cim = iters_t[-1]
                                if pim != cim and pim != -1 and cim != -1:
                                    run[7] += 1
                                else:
                                    run[6] += 1
                            else:
                                run[6] += 1
                            # stride-run accounting
                            last = run[9]
                            if run[8] == addr - last:
                                run[12] += 1
                            else:
                                n = run[12]
                                if n > run[11]:
                                    run[11] = n
                                run[10] += 1
                                run[8] = addr - last
                                run[12] = 1
                            run[9] = addr
                        else:
                            same_slow(RAW, prev, sid, addr, same_raw, dkey)
                    else:
                        run = tpl_raw.get(dkey)
                        if (
                            run is not None
                            and run[0] is p_ctx[0]
                            and run[2] is ids_t
                        ):
                            m = run[3]
                            if m >= 0:
                                if p_ctx[2][m] == run[5] and sites_t[m] == run[6]:
                                    if run[4]:
                                        pim = p_ctx[1][m]
                                        cim = iters_t[m]
                                        if pim != cim and pim != -1 and cim != -1:
                                            run[10] += 1
                                        else:
                                            run[9] += 1
                                    else:
                                        run[9] += 1
                                    # stride-run accounting
                                    last = run[13]
                                    if run[12] == addr - last:
                                        run[16] += 1
                                    else:
                                        n = run[16]
                                        if n > run[15]:
                                            run[15] = n
                                        run[14] += 1
                                        run[12] = addr - last
                                        run[16] = 1
                                    run[13] = addr
                                    pair = run[11]
                                    if pair is not None:
                                        dlev = pair[1]
                                        ix = p_ctx[1][dlev]
                                        iy = iters_t[dlev]
                                        if ix != -1 and iy != -1:
                                            skey = (pair[2], pair[0], addr)
                                            if skey not in pair_seen:
                                                pair_seen.add(skey)
                                                pk = pair[3]
                                                lst = pairs.get(pk)
                                                if lst is None:
                                                    pairs[pk] = [(ix, iy)]
                                                else:
                                                    lst.append((ix, iy))
                                else:
                                    dep_slow(RAW, prev, sid, addr, tpl_raw, dkey)
                            # m < 0: proven no-dep for this snapshot pair
                        else:
                            dep_slow(RAW, prev, sid, addr, tpl_raw, dkey)
                last_read[addr] = (ctx, sid)
                state = ft_state.get(sid)
                if state is None:
                    # first touch of this sid under the current loop stack:
                    # update the loop access tables, then decide the walk
                    var = s_vars[sid]
                    line = s_lines[sid]
                    for i in loop_idx:
                        k = (statics[i], var)
                        loop_accessed.add(k)
                        lines = loop_var_reads.get(k)
                        if lines is None:
                            loop_var_reads[k] = {line}
                        else:
                            lines.add(line)
                    state = 2
                    if af:
                        state = 1
                        for i in loop_idx:
                            if (statics[i], var) not in read_first:
                                state = 2
                                break
                    ft_state[sid] = state
                if state == 2:
                    var = s_vars[sid]
                    for i in reversed(loop_idx):
                        level_seen = seen[i]
                        if addr in level_seen:
                            break
                        level_seen.add(addr)
                        read_first.add((statics[i], var))
            elif tag == EV_WRITE:
                addr = ev[1]
                sid = ev[2]
                if s_elems[sid]:
                    array_addrs.add(addr)
                    arr_n += 1
                prev = last_write.get(addr)
                if prev is not None:
                    p_ctx = prev[0]
                    dkey = sid * keym + prev[1]
                    if p_ctx[0] is ids_t and ids_t:
                        run = same_waw.get(dkey)
                        if (
                            run is not None
                            and p_ctx[2][-1] == run[1]
                            and sites_t[-1] == run[2]
                        ):
                            if run[5]:
                                pim = p_ctx[1][-1]
                                cim = iters_t[-1]
                                if pim != cim and pim != -1 and cim != -1:
                                    run[7] += 1
                                else:
                                    run[6] += 1
                            else:
                                run[6] += 1
                        else:
                            same_slow(WAW, prev, sid, addr, same_waw, dkey)
                    else:
                        run = tpl_waw.get(dkey)
                        if (
                            run is not None
                            and run[0] is p_ctx[0]
                            and run[2] is ids_t
                        ):
                            m = run[3]
                            if m >= 0:
                                if p_ctx[2][m] == run[5] and sites_t[m] == run[6]:
                                    if run[4]:
                                        pim = p_ctx[1][m]
                                        cim = iters_t[m]
                                        if pim != cim and pim != -1 and cim != -1:
                                            run[10] += 1
                                        else:
                                            run[9] += 1
                                    else:
                                        run[9] += 1
                                else:
                                    dep_slow(WAW, prev, sid, addr, tpl_waw, dkey)
                        else:
                            dep_slow(WAW, prev, sid, addr, tpl_waw, dkey)
                prev = last_read.get(addr)
                if prev is not None:
                    p_ctx = prev[0]
                    dkey = sid * keym + prev[1]
                    if p_ctx[0] is ids_t and ids_t:
                        run = same_war.get(dkey)
                        if (
                            run is not None
                            and p_ctx[2][-1] == run[1]
                            and sites_t[-1] == run[2]
                        ):
                            if run[5]:
                                pim = p_ctx[1][-1]
                                cim = iters_t[-1]
                                if pim != cim and pim != -1 and cim != -1:
                                    run[7] += 1
                                else:
                                    run[6] += 1
                            else:
                                run[6] += 1
                        else:
                            same_slow(WAR, prev, sid, addr, same_war, dkey)
                    else:
                        run = tpl_war.get(dkey)
                        if (
                            run is not None
                            and run[0] is p_ctx[0]
                            and run[2] is ids_t
                        ):
                            m = run[3]
                            if m >= 0:
                                if p_ctx[2][m] == run[5] and sites_t[m] == run[6]:
                                    if run[4]:
                                        pim = p_ctx[1][m]
                                        cim = iters_t[m]
                                        if pim != cim and pim != -1 and cim != -1:
                                            run[10] += 1
                                        else:
                                            run[9] += 1
                                    else:
                                        run[9] += 1
                                else:
                                    dep_slow(WAR, prev, sid, addr, tpl_war, dkey)
                        else:
                            dep_slow(WAR, prev, sid, addr, tpl_war, dkey)
                last_write[addr] = (ctx, sid)
                state = ft_state.get(sid)
                if state is None:
                    # first touch of this sid under the current loop stack:
                    # update the loop access tables, then decide the walk
                    var = s_vars[sid]
                    line = s_lines[sid]
                    for i in loop_idx:
                        k = (statics[i], var)
                        loop_accessed.add(k)
                        lines = loop_var_writes.get(k)
                        if lines is None:
                            loop_var_writes[k] = {line}
                        else:
                            lines.add(line)
                    state = 2
                    if af:
                        if var not in vars_with_reads:
                            # write-only variable: the walk only suppresses
                            # read marks that can never come
                            state = 1
                        else:
                            state = 1
                            for i in loop_idx:
                                if (statics[i], var) not in read_first:
                                    state = 2
                                    break
                    ft_state[sid] = state
                if state == 2:
                    for i in reversed(loop_idx):
                        level_seen = seen[i]
                        if addr in level_seen:
                            break
                        level_seen.add(addr)
            elif tag == EV_COST:
                line = ev[1]
                amount = ev[2]
                total_cost += amount
                count = line_costs.get(line)
                line_costs[line] = amount if count is None else count + amount
                if act_costs:
                    act_costs[-1] += amount
                    pet_top.exclusive_cost += amount
                    if ct_top is not None:
                        ct_top.exclusive_cost += amount
                    k = (cur_static, line)
                    count = site_costs.get(k)
                    site_costs[k] = amount if count is None else count + amount
                else:
                    self._pre_cost += amount
            elif tag == EV_STMT:
                line = ev[1]
                if sites and sites[-1] != line:
                    sites[-1] = line
                    sites_t = sites_t[:-1] + (line,)
                    self._sites_t = sites_t
                    ctx = (ids_t, iters_t, sites_t)
                    self._ctx = ctx
            elif tag == EV_ITER:
                index = ev[2]
                iters[-1] = index
                iters_t = iters_t[:-1] + (index,)
                self._iters_t = iters_t
                ctx = (ids_t, iters_t, sites_t)
                self._ctx = ctx
                seen[-1] = set()
                if ct_top is not None and index > 0:
                    acc = act_costs[-1]
                    ct_top.per_iter_cost.append(acc - iter_marks[-1])
                    iter_marks[-1] = acc
            else:
                if tag == EV_ENTER_FUNC:
                    self._enter(ev[1], ev[2], "function", ev[3], ev[3])
                elif tag == EV_EXIT_FUNC:
                    self._exit()
                elif tag == EV_ENTER_LOOP:
                    self._enter(ev[1], ev[2], "loop", ev[3], ev[3])
                elif tag == EV_EXIT_LOOP:
                    self._exit(ev[3])
                else:  # pragma: no cover - exhaustiveness guard
                    raise ValueError(f"unknown event tag {tag!r}")
                # region transitions rebuild the context snapshots and the
                # per-activation hoists
                ids_t = self._ids_t
                iters_t = self._iters_t
                sites_t = self._sites_t
                ctx = self._ctx
                cur_static = statics[-1] if statics else -1
                pet_top = pet_stack[-1] if pet_stack else None
                ct_top = ct_stack[-1] if ct_stack else None
        profile.total_cost = total_cost
        profile.array_accesses = arr_n
        self._tpl_installs = installs
        self._sum_events = sum_events
        self._stride_runs = stride_runs
        self._longest_run = longest_run

    # ------------------------------------------------------------------

    def summarization_stats(self) -> dict[str, int]:
        """Counters describing how much per-access work was collapsed.

        Meaningful after :meth:`finish`.  ``dep_events`` is the number of
        dependence-recording events; ``exact_derivations`` of those took the
        full divergence-scan path (each installing a descriptor);
        ``stride_runs`` and ``longest_run`` describe the address runs the
        descriptors observed.
        """
        return {
            "dep_events": self._sum_events,
            "exact_derivations": self._tpl_installs,
            "summarized_events": self._sum_events - self._tpl_installs,
            "stride_runs": self._stride_runs,
            "longest_run": self._longest_run,
        }

    def finish(self) -> None:
        profile = self.profile
        for tpl in (self._tpl_raw, self._tpl_waw, self._tpl_war):
            for run in tpl.values():
                self._flush_tpl(run)
            tpl.clear()
        for tpl in (self._same_raw, self._same_waw, self._same_war):
            for run in tpl.values():
                self._flush_same(run)
            tpl.clear()
        if self._deps_raw:
            deps = profile.deps
            s_lines = self._s_lines
            s_vars = self._s_vars
            for key, count in self._deps_raw.items():
                kind, psid, sid, region, carrier, psm, csm = key
                dep = DepKey(
                    kind, s_vars[psid], region, carrier,
                    s_lines[psid], s_lines[sid], psm, csm,
                )
                deps[dep] = deps.get(dep, 0) + count
            self._deps_raw = {}
        # Sorted by region id so live profiles iterate identically to
        # cache-round-tripped ones (the serializer emits sorted order, and
        # detector insertion order rides on this dict's iteration order).
        profile.loop_trips = {k: tuple(self._trips[k]) for k in sorted(self._trips)}
        profile.unique_array_addresses = len(self._array_addrs)
        if profile.pet is not None:
            profile.pet.compute_inclusive()
