"""Convenience entry points: run a program under the profiler.

``profile_run`` executes one entry call and returns ``(Profile, RunResult)``;
``profile_runs`` executes several argument sets (the paper's "multiple
representative inputs") and merges the profiles.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.ast_nodes import Program
from repro.profiling.model import Profile
from repro.profiling.profiler import Profiler
from repro.runtime.interpreter import Interpreter, RunResult


def profile_run(
    program: Program,
    entry: str,
    args: Sequence[Any] = (),
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
) -> tuple[Profile, RunResult]:
    """Execute ``entry(*args)`` under instrumentation; return the profile."""
    profiler = Profiler(record_calltree=record_calltree)
    interp = Interpreter(program, sink=profiler, max_cost=max_cost)
    result = interp.run(entry, args)
    return profiler.profile, result


def profile_runs(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
) -> Profile:
    """Profile several runs with different inputs and merge the profiles."""
    if not arg_sets:
        raise ValueError("need at least one argument set")
    merged: Profile | None = None
    for args in arg_sets:
        profile, _ = profile_run(
            program, entry, args, record_calltree=record_calltree, max_cost=max_cost
        )
        merged = profile if merged is None else merged.merge(profile)
    assert merged is not None
    return merged
