"""Convenience entry points: run a program under the profiler.

``profile_run`` executes one entry call and returns ``(Profile, RunResult)``;
``profile_runs`` executes several argument sets (the paper's "multiple
representative inputs") and merges the profiles.

Both accept an ``engine`` selector: ``"compiled"`` (default) lowers each
function once into nested Python closures via
:mod:`repro.runtime.compile` and runs those; ``"tree"`` walks the AST with
:class:`~repro.runtime.interpreter.Interpreter`.  The two engines emit the
same event stream, so every profile field — and therefore the canonical
profile digest — is identical between them; the tree walker is kept as the
executable reference semantics and the compiled engine as the fast path.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.ast_nodes import Program
from repro.profiling.model import Profile
from repro.profiling.profiler import Profiler
from repro.runtime.compile import CompiledEngine
from repro.runtime.interpreter import Interpreter, RunResult

ENGINES = ("compiled", "tree")


def _make_engine(program: Program, sink, max_cost: int, engine: str):
    if engine == "compiled":
        return CompiledEngine(program, sink=sink, max_cost=max_cost)
    if engine == "tree":
        return Interpreter(program, sink=sink, max_cost=max_cost)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def profile_run(
    program: Program,
    entry: str,
    args: Sequence[Any] = (),
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    engine: str = "compiled",
) -> tuple[Profile, RunResult]:
    """Execute ``entry(*args)`` under instrumentation; return the profile."""
    profiler = Profiler(record_calltree=record_calltree)
    eng = _make_engine(program, profiler, max_cost, engine)
    result = eng.run(entry, args)
    return profiler.profile, result


def profile_runs(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    engine: str = "compiled",
) -> Profile:
    """Profile several runs with different inputs and merge the profiles."""
    if not arg_sets:
        raise ValueError("need at least one argument set")
    merged: Profile | None = None
    for args in arg_sets:
        profile, _ = profile_run(
            program,
            entry,
            args,
            record_calltree=record_calltree,
            max_cost=max_cost,
            engine=engine,
        )
        merged = profile if merged is None else merged.merge(profile)
    assert merged is not None
    return merged
