"""Dynamic profiling: the DiscoPoP-equivalent analyses.

One instrumented run (Section II of the paper) produces a
:class:`~repro.profiling.model.Profile` containing

* data dependences (RAW/WAR/WAW) between source lines, each attributed to the
  control region that owns it and classified as loop-carried or
  loop-independent,
* the Program Execution Tree (PET) with per-node instruction counts, trip
  counts, and recursion merging,
* per-loop variable access tables (write/read lines) used by the reduction
  detector (Algorithm 3),
* privatization facts (variables whose first access in every iteration is a
  write),
* iteration-number pairs ``(i_x, i_y)`` for dependent loop pairs — the input
  to the multi-loop pipeline regression (Section III-A), and
* the dynamic call/loop tree with inclusive costs, used for work/span
  estimates.

Profiles from runs with different inputs can be merged with
:meth:`Profile.merge`, mirroring the paper's mitigation for input
sensitivity.
"""

from repro.profiling.model import (
    CallNode,
    DepKey,
    PETNode,
    Profile,
    RAW,
    WAR,
    WAW,
)
from repro.profiling.profiler import Profiler
from repro.profiling.runner import profile_run, profile_runs
from repro.profiling.hotspots import hotspot_regions, region_coverage
from repro.profiling.cache import (
    ProfileCache,
    cached_profile_runs,
    profile_cache_key,
)
from repro.profiling.serialize import (
    canonical_profile_json,
    load_profile,
    profile_digest,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

__all__ = [
    "CallNode",
    "DepKey",
    "PETNode",
    "Profile",
    "ProfileCache",
    "Profiler",
    "RAW",
    "WAR",
    "WAW",
    "cached_profile_runs",
    "profile_cache_key",
    "profile_run",
    "profile_runs",
    "hotspot_regions",
    "region_coverage",
    "canonical_profile_json",
    "load_profile",
    "profile_digest",
    "profile_from_dict",
    "profile_to_dict",
    "save_profile",
]
