"""Hotspot identification over the PET.

The paper identifies "loops and functions with a high percentage of
instruction counts" as hotspots and runs pattern detection on them.  We rank
PET nodes by inclusive-cost share of the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast_nodes import Program
from repro.profiling.model import PETNode, Profile

#: Default inclusive-cost share for a region to count as a hotspot.
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class Hotspot:
    """A hotspot region with its share of the run's instructions."""

    region: int
    kind: str
    name: str
    line: int
    inclusive_cost: int
    share: float
    pet_node_id: int


def region_coverage(profile: Profile, region: int) -> float:
    """Fraction of all executed instructions spent inside *region*."""
    if profile.total_cost <= 0:
        return 0.0
    return profile.region_cost(region) / profile.total_cost


def hotspot_regions(
    profile: Profile,
    program: Program | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Hotspot]:
    """All PET regions whose inclusive cost is at least *threshold* of total.

    Results are sorted by descending share; a region appearing several times
    in the PET (same loop under different parents) is reported once with the
    summed cost.  When *program* is given, region names come from its static
    region table.
    """
    if profile.pet is None or profile.total_cost <= 0:
        return []
    totals: dict[int, int] = {}
    meta: dict[int, PETNode] = {}
    for node in profile.pet.walk():
        # A recursive function's merged node appears once per PET position.
        totals[node.region] = totals.get(node.region, 0) + node.inclusive_cost
        meta.setdefault(node.region, node)
    out: list[Hotspot] = []
    for region, cost in totals.items():
        share = cost / profile.total_cost
        if share < threshold:
            continue
        node = meta[region]
        name = node.name
        if program is not None and region in program.regions:
            name = program.regions[region].name
        out.append(
            Hotspot(
                region=region,
                kind=node.kind,
                name=name,
                line=node.line,
                inclusive_cost=cost,
                share=share,
                pet_node_id=node.node_id,
            )
        )
    out.sort(key=lambda h: (-h.share, h.line))
    return out
