"""Data model for profiling results.

Everything in a :class:`Profile` is plain data keyed by *static* program
entities (region ids, source lines, variable names), so profiles from
different runs of the same program can be merged.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

RAW = "RAW"
WAR = "WAR"
WAW = "WAW"


class DepKey(NamedTuple):
    """An aggregated data dependence.

    ``region`` is the static id of the deepest control region whose single
    activation contained both endpoints; ``src_site``/``dst_site`` are the
    source lines of the statements *at that region's level* that were
    executing (call sites / loop statements for nested work) — these are what
    CU-graph edges are built from.  ``src_line``/``dst_line`` are the lines
    of the actual memory instructions (what Algorithm 3 reports).

    ``carrier`` is the static id of the loop that carries the dependence, or
    ``None`` for a loop-independent dependence.  For RAW, src is the write
    and dst the read; for WAR, src is the read; for WAW, src is the earlier
    write.
    """

    kind: str
    var: str
    region: int
    carrier: int | None
    src_line: int
    dst_line: int
    src_site: int
    dst_site: int


@dataclass(slots=True)
class PETNode:
    """A node of the Program Execution Tree.

    Loop iterations are merged into one node; recursive re-entries of a
    function merge into the existing ancestor node with ``recursive=True``
    (Section II).  ``exclusive_cost`` counts IR instructions charged directly
    while this node was the innermost active region; ``inclusive_cost`` adds
    all descendants (and, for recursive nodes, all merged activations).
    """

    node_id: int
    region: int
    kind: str  # 'function' | 'loop'
    name: str
    line: int
    parent: "PETNode | None" = None
    children: list["PETNode"] = field(default_factory=list)
    exclusive_cost: int = 0
    inclusive_cost: int = 0
    invocations: int = 0
    total_trips: int = 0
    recursive: bool = False

    def child_for(self, region: int) -> "PETNode | None":
        for child in self.children:
            if child.region == region:
                return child
        return None

    def walk(self) -> Iterable["PETNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def max_depth(self) -> int:
        """Height of this subtree in nodes (a leaf is depth 1)."""
        return 1 + max((c.max_depth() for c in self.children), default=0)

    def compute_inclusive(self) -> int:
        self.inclusive_cost = self.exclusive_cost + sum(
            c.compute_inclusive() for c in self.children
        )
        return self.inclusive_cost

    @property
    def average_trip(self) -> float:
        return self.total_trips / self.invocations if self.invocations else 0.0


@dataclass(slots=True)
class CallNode:
    """A node of the dynamic activation tree (functions *and* loops).

    ``site_line`` is the source line in the parent activation that caused
    this activation (call site or loop statement).  ``per_iter_cost`` is the
    inclusive cost of each iteration for loop activations.
    """

    act_id: int
    region: int
    kind: str
    site_line: int
    parent: "CallNode | None" = None
    children: list["CallNode"] = field(default_factory=list)
    inclusive_cost: int = 0
    exclusive_cost: int = 0
    per_iter_cost: list[int] = field(default_factory=list)

    def walk(self) -> Iterable["CallNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(slots=True)
class Profile:
    """Aggregated result of one or more instrumented runs."""

    total_cost: int = 0
    #: dependence -> occurrence count
    deps: dict[DepKey, int] = field(default_factory=dict)
    #: (loop region, var) -> source lines where var was written inside the loop
    loop_var_writes: dict[tuple[int, str], set[int]] = field(default_factory=dict)
    #: (loop region, var) -> source lines where var was read inside the loop
    loop_var_reads: dict[tuple[int, str], set[int]] = field(default_factory=dict)
    #: (loop region, var) pairs where some iteration's first access was a read
    read_first: set[tuple[int, str]] = field(default_factory=set)
    #: (loop region, var) pairs accessed inside the loop at all
    loop_accessed: set[tuple[int, str]] = field(default_factory=set)
    #: (loop_x region, loop_y region) -> (i_x, i_y) iteration pairs
    pairs: dict[tuple[int, int], list[tuple[int, int]]] = field(default_factory=dict)
    #: line -> instructions charged at that line
    line_costs: dict[int, int] = field(default_factory=dict)
    #: (region, site line) -> inclusive instructions under that site
    site_costs: dict[tuple[int, int], int] = field(default_factory=dict)
    #: loop region -> (invocations, total trips, max trip)
    loop_trips: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    pet: PETNode | None = None
    calltree: CallNode | None = None
    runs: int = 1
    #: distinct array-element addresses touched (the working set that must
    #: stream from memory) and the number of array-element accesses
    unique_array_addresses: int = 0
    array_accesses: int = 0

    @property
    def streaming_fraction(self) -> float:
        """Working-set units per instruction — feeds the bandwidth model.

        High-reuse kernels (matmul: O(N³) work over O(N²) data) get a small
        value and scale with threads; streaming kernels (bicg: one pass over
        the matrix) get a large value and saturate memory bandwidth early.
        """
        if self.total_cost <= 0:
            return 0.0
        return self.unique_array_addresses / self.total_cost

    # ------------------------------------------------------------------
    # convenience queries
    # ------------------------------------------------------------------

    def deps_in_region(self, region: int) -> list[DepKey]:
        """All dependences owned by *region* (any carrier)."""
        return [d for d in self.deps if d.region == region]

    def carried_deps(self, loop: int) -> list[DepKey]:
        """Dependences carried by *loop*."""
        return [d for d in self.deps if d.carrier == loop]

    def carried_raw_vars(self, loop: int) -> set[str]:
        return {d.var for d in self.deps if d.carrier == loop and d.kind == RAW}

    def live_deps(self, live_vars: "set[str] | frozenset[str]") -> Iterable[DepKey]:
        """Dependences on variables in *live_vars*, in ``deps`` order.

        The feature-extraction hook for :mod:`repro.learn`: transforms that
        add write-only (dead) locals introduce dependences the live view of
        the program never sees, so extractors iterate this instead of
        ``deps`` to stay invariant under them.
        """
        return (d for d in self.deps if d.var in live_vars)

    def trip_count(self, loop: int) -> int:
        """Total body executions of *loop* across all activations."""
        info = self.loop_trips.get(loop)
        return info[1] if info else 0

    def max_trip(self, loop: int) -> int:
        info = self.loop_trips.get(loop)
        return info[2] if info else 0

    def region_cost(self, region: int) -> int:
        """Inclusive cost of *region* summed over its PET occurrences."""
        if self.pet is None:
            return 0
        return sum(n.inclusive_cost for n in self.pet.walk() if n.region == region)

    # ------------------------------------------------------------------
    # merging (multiple representative inputs, Section II)
    # ------------------------------------------------------------------

    def merge(self, other: "Profile") -> "Profile":
        """Merge *other* into a new Profile (both unmodified)."""
        out = Profile(runs=self.runs + other.runs)
        out.total_cost = self.total_cost + other.total_cost
        out.deps = dict(self.deps)
        for key, count in other.deps.items():
            out.deps[key] = out.deps.get(key, 0) + count
        for attr in ("loop_var_writes", "loop_var_reads"):
            merged: dict[tuple[int, str], set[int]] = {
                k: set(v) for k, v in getattr(self, attr).items()
            }
            for k, v in getattr(other, attr).items():
                merged.setdefault(k, set()).update(v)
            setattr(out, attr, merged)
        out.read_first = set(self.read_first) | set(other.read_first)
        out.loop_accessed = set(self.loop_accessed) | set(other.loop_accessed)
        out.pairs = {k: list(v) for k, v in self.pairs.items()}
        for k, v in other.pairs.items():
            out.pairs.setdefault(k, []).extend(v)
        out.line_costs = dict(self.line_costs)
        for line, cost in other.line_costs.items():
            out.line_costs[line] = out.line_costs.get(line, 0) + cost
        out.site_costs = dict(self.site_costs)
        for key, cost in other.site_costs.items():
            out.site_costs[key] = out.site_costs.get(key, 0) + cost
        out.loop_trips = dict(self.loop_trips)
        for loop, (inv, total, peak) in other.loop_trips.items():
            if loop in out.loop_trips:
                i0, t0, m0 = out.loop_trips[loop]
                out.loop_trips[loop] = (i0 + inv, t0 + total, max(m0, peak))
            else:
                out.loop_trips[loop] = (inv, total, peak)
        out.loop_trips = {k: out.loop_trips[k] for k in sorted(out.loop_trips)}
        out.unique_array_addresses = max(
            self.unique_array_addresses, other.unique_array_addresses
        )
        out.array_accesses = self.array_accesses + other.array_accesses
        out.pet = _merge_pet(self.pet, other.pet)
        # Call trees are per-run artifacts; keep the one from the larger run
        # (falling back to whichever exists).
        if self.calltree is None:
            out.calltree = other.calltree
        elif other.calltree is None:
            out.calltree = self.calltree
        else:
            out.calltree = (
                self.calltree
                if self.total_cost >= other.total_cost
                else other.calltree
            )
        return out


def _merge_pet(a: PETNode | None, b: PETNode | None) -> PETNode | None:
    if a is None:
        return b
    if b is None:
        return a
    counter = [0]

    def clone(node: PETNode, parent: PETNode | None) -> PETNode:
        out = PETNode(
            node_id=counter[0],
            region=node.region,
            kind=node.kind,
            name=node.name,
            line=node.line,
            parent=parent,
            exclusive_cost=node.exclusive_cost,
            invocations=node.invocations,
            total_trips=node.total_trips,
            recursive=node.recursive,
        )
        counter[0] += 1
        for child in node.children:
            out.children.append(clone(child, out))
        return out

    def fold(dst: PETNode, src: PETNode) -> None:
        dst.exclusive_cost += src.exclusive_cost
        dst.invocations += src.invocations
        dst.total_trips += src.total_trips
        dst.recursive = dst.recursive or src.recursive
        for src_child in src.children:
            dst_child = dst.child_for(src_child.region)
            if dst_child is None:
                dst.children.append(clone(src_child, dst))
            else:
                fold(dst_child, src_child)

    if a.region != b.region:
        raise ValueError("cannot merge PETs with different roots")
    merged = clone(a, None)
    fold(merged, b)
    merged.compute_inclusive()
    return merged
