"""repro — reproduction of *Automatic Parallel Pattern Detection in the
Algorithm Structure Design Space* (IPPS 2016).

The library detects four parallel patterns (multi-loop pipeline, task
parallelism, geometric decomposition, reduction) plus loop fusion in
sequential MiniC programs, classifies code blocks by the patterns' support
structures, and simulates the parallel schedules the patterns imply.

Quick start::

    import numpy as np
    from repro import analyze_source, analysis_report

    src = '''
    float total(float A[], int n) {
        float sum = 0.0;
        for (int i = 0; i < n; i++) {
            sum += A[i];
        }
        return sum;
    }
    '''
    result = analyze_source(src, entry="total", arg_sets=[[np.ones(100), 100]])
    print(analysis_report(result))

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

# Single source of truth for the distribution version: packaging metadata
# (pyproject's dynamic version), the CLI's --version flag, and the service's
# GET /v1/version endpoint all read this constant.  Defined before the
# submodule imports below so they may `from repro import __version__`.
__version__ = "1.4.0"

from repro.api import analyze_source, analysis_report, compile_source
from repro.patterns.engine import AnalysisResult, analyze, summarize_patterns
from repro.lang.parser import parse_program
from repro.profiling.runner import profile_run, profile_runs
from repro.runtime.interpreter import run_program

__all__ = [
    "analyze_source",
    "analysis_report",
    "compile_source",
    "AnalysisResult",
    "analyze",
    "summarize_patterns",
    "parse_program",
    "profile_run",
    "profile_runs",
    "run_program",
    "__version__",
]
