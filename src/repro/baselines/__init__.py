"""Static reduction-detection baselines (Table VI comparators).

The paper compares its dynamic reduction detection against Intel ``icc`` and
the Sambamba framework — both unavailable here, so we implement faithful
*models* of their static analyses (DESIGN.md §2): each examines only the
AST, so neither can see the cross-module accumulation of ``sum_module``;
they differ in how conservative their alias/feature handling is.

* :class:`IccLikeDetector` — lexical-extent pattern matching with a
  conservative alias rule: any array write in the enclosing function (the
  accumulation might alias it) or any call in the loop defeats detection.
* :class:`SambambaLikeDetector` — precise intra-procedural analysis
  (parameter arrays assumed non-aliasing), but it refuses programs with
  recursion or loops that call loop-bearing functions (reported ``NA``, as
  Table VI shows for nqueens and kmeans).
"""

from repro.baselines.static_reduction import (
    IccLikeDetector,
    SambambaLikeDetector,
    StaticFinding,
    StaticReductionDetector,
    find_lexical_reductions,
)

__all__ = [
    "IccLikeDetector",
    "SambambaLikeDetector",
    "StaticFinding",
    "StaticReductionDetector",
    "find_lexical_reductions",
]
