"""Static (AST-only) reduction detectors modelling icc and Sambamba.

Both detectors share :func:`find_lexical_reductions`, which recognizes the
scalar-accumulator statement shapes a static analysis can prove inside a
loop's *lexical* extent.  The subclasses differ only in their feasibility
rules — the knobs that reproduce Table VI's hit/miss/NA pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.lang.analysis import is_recursive, function_loops, stmt_calls
from repro.lang.ast_nodes import (
    ArrayLV,
    Assign,
    BinOp,
    Call,
    For,
    Function,
    Program,
    Stmt,
    VarLV,
    VarRef,
    While,
    walk_stmts,
)


class Verdict(Enum):
    """Per-program outcome of a static detector."""

    FOUND = "found"
    MISSED = "missed"
    NOT_APPLICABLE = "NA"


@dataclass(frozen=True)
class StaticFinding:
    """One statically-proven reduction."""

    function: str
    loop_line: int
    var: str
    operator: str


def _loop_induction(loop: For | While) -> set[str]:
    return set(getattr(loop, "induction_vars", frozenset()))


def _accumulator_shape(stmt: Stmt) -> tuple[str, str] | None:
    """(var, op) when *stmt* is a recognizable scalar accumulation."""
    if not isinstance(stmt, Assign) or not isinstance(stmt.target, VarLV):
        return None
    var = stmt.target.name
    if stmt.op in ("+=", "*="):
        return var, stmt.op[0]
    if stmt.op == "=" and isinstance(stmt.value, BinOp) and stmt.value.op in ("+", "*"):
        left = stmt.value.left
        right = stmt.value.right
        left_is_var = isinstance(left, VarRef) and left.name == var
        right_is_var = isinstance(right, VarRef) and right.name == var
        if left_is_var != right_is_var:
            return var, stmt.value.op
    return None


def find_lexical_reductions(
    program: Program, loop: For | While
) -> list[StaticFinding]:
    """Scalar accumulations provable inside *loop*'s lexical extent."""
    induction = _loop_induction(loop)
    body_stmts = list(walk_stmts(loop.body))
    # Induction variables of nested loops are loop bookkeeping, not
    # accumulators, even though their step clause matches the shape.
    for stmt in body_stmts:
        if isinstance(stmt, (For, While)):
            induction |= _loop_induction(stmt)
    # Count writes per variable: an accumulator must have exactly one write.
    writes: dict[str, int] = {}
    for stmt in body_stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarLV):
            writes[stmt.target.name] = writes.get(stmt.target.name, 0) + 1
    out: list[StaticFinding] = []
    for stmt in body_stmts:
        shape = _accumulator_shape(stmt)
        if shape is None:
            continue
        var, op = shape
        if var in induction or writes.get(var, 0) != 1:
            continue
        out.append(
            StaticFinding(function="", loop_line=loop.line, var=var, operator=op)
        )
    return out


class StaticReductionDetector:
    """Base class; subclasses set the feasibility rules."""

    name = "static"

    def applicable(self, program: Program) -> bool:
        """Whether the modelled tool can process *program* at all."""
        return True

    def loop_feasible(self, program: Program, func: Function, loop: For | While) -> bool:
        """Whether the modelled tool would attempt this loop."""
        return True

    def analyze(self, program: Program) -> tuple[Verdict, list[StaticFinding]]:
        """Run the detector over every loop of every function."""
        if not self.applicable(program):
            return Verdict.NOT_APPLICABLE, []
        findings: list[StaticFinding] = []
        seen: set[tuple[str, str]] = set()
        for func in program.functions:
            for loop in function_loops(func):
                if not self.loop_feasible(program, func, loop):
                    continue
                for f in find_lexical_reductions(program, loop):
                    # report each accumulator once, for its innermost loop
                    key = (func.name, f.var)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        StaticFinding(
                            function=func.name,
                            loop_line=f.loop_line,
                            var=f.var,
                            operator=f.operator,
                        )
                    )
        return (Verdict.FOUND if findings else Verdict.MISSED), findings


def _function_writes_arrays(func: Function) -> bool:
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayLV):
            return True
    return False


def _loop_has_user_calls(program: Program, loop: For | While) -> bool:
    user = {f.name for f in program.functions}
    return any(c.name in user for c in stmt_calls(loop))


def _loop_calls_loop_bearing(program: Program, loop: For | While) -> bool:
    user = {f.name for f in program.functions}
    for call in stmt_calls(loop):
        if call.name in user and function_loops(program.function(call.name)):
            return True
    return False


class IccLikeDetector(StaticReductionDetector):
    """Models icc's conservative auto-reduction.

    icc compiles anything (never NA) but proves a reduction only when

    * the loop body contains no user-function calls (side effects unknown),
    * the enclosing function writes no arrays (pointer parameters might
      alias, so loads feeding the accumulator cannot be licensed), and
    * the accumulator is a plain scalar in the loop's lexical extent.

    This reproduces Table VI's icc row: ``sum_local`` is found; nqueens and
    kmeans fail on calls; bicg/gesummv fail on the array-write alias rule;
    ``sum_module`` is invisible lexically.
    """

    name = "icc"

    def loop_feasible(self, program: Program, func: Function, loop: For | While) -> bool:
        if _loop_has_user_calls(program, loop):
            return False
        if _function_writes_arrays(func):
            return False
        return True


class SambambaLikeDetector(StaticReductionDetector):
    """Models Sambamba's more precise but less robust static analysis.

    Parameter arrays are assumed non-aliasing, so array-writing kernels like
    bicg/gesummv are fine; but the tool bails out (NA) on programs with
    recursion or hot loops calling loop-bearing functions — Table VI's NA
    entries for nqueens and kmeans.
    """

    name = "sambamba"

    def applicable(self, program: Program) -> bool:
        for func in program.functions:
            if is_recursive(func, program):
                return False
            for loop in function_loops(func):
                if _loop_calls_loop_bearing(program, loop):
                    return False
        return True

    def loop_feasible(self, program: Program, func: Function, loop: For | While) -> bool:
        # Calls with unknown bodies still defeat the intra-procedural proof.
        return not _loop_has_user_calls(program, loop)
