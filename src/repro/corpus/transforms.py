"""Semantics-preserving source transforms for corpus generation.

These are the metamorphic transforms the test suite proved pattern-
invariant (consistent renaming, dead-statement insertion); the generator
applies them after template construction so the corpus does not consist of
pristine canonical programs only.  Both transforms re-parse and re-validate
their output, so a transform bug surfaces at generation time, never inside
a sweep worker.

Statement permutation — the third proven transform — happens inside the
templates themselves at generation time, where independence is known by
construction.
"""

from __future__ import annotations

import random
import re

from repro.lang.parser import parse_program
from repro.lang.validate import validate_program

#: Alpha-conversion applied by the renaming transform.  The targets are
#: chosen to collide with nothing any template emits (including the
#: ``dead<k>`` locals of :func:`insert_dead_statements`), so a single
#: simultaneous word-boundary pass is a sound renaming for every template.
RENAME = {
    "A": "arr_p",
    "B": "arr_q",
    "C": "arr_r",
    "D": "arr_w",
    "E": "fld_p",
    "H": "fld_q",
    "x1": "out_a",
    "y1": "in_a",
    "x2": "out_b",
    "y2": "in_b",
    "s": "acc",
    "n": "len_n",
    "i": "idx",
    "j": "jdx",
    "t": "tt",
    "tmax": "steps",
}

_RENAME_RE = re.compile(r"\b(" + "|".join(sorted(RENAME, key=len, reverse=True)) + r")\b")

_FOR_HEADER_RE = re.compile(r"^(\s*)for \(.*\{\s*$")


def _checked(source: str) -> str:
    program = parse_program(source)
    validate_program(program)
    return source


def rename_identifiers(source: str, rng: random.Random | None = None) -> str:
    """Alpha-convert *source* under :data:`RENAME` (rng unused; the map is
    fixed so renamed corpora stay deterministic)."""
    return _checked(_RENAME_RE.sub(lambda m: RENAME[m.group(1)], source))


def insert_dead_statements(source: str, rng: random.Random) -> str:
    """Insert 1-2 dead ``int dead<k> = c * 3;`` locals into loop bodies.

    Positions are the lines directly after randomly chosen ``for`` headers
    — the printer's canonical layout makes header lines reliable anchors.
    Dead locals are written, never read, so every detector's view of the
    live dependence structure is unchanged (the metamorphic invariance the
    test suite asserts).
    """
    lines = source.splitlines()
    headers = [
        (k, m.group(1)) for k, line in enumerate(lines)
        if (m := _FOR_HEADER_RE.match(line)) is not None
    ]
    if not headers:
        return source
    # number past any dead locals already present so the transform composes
    # with itself (generated sources may already carry one application)
    base = 1 + max(
        (int(m.group(1)) for m in re.finditer(r"\bdead(\d+)\b", source)),
        default=-1,
    )
    n_dead = rng.randint(1, 2)
    for d in range(base, base + n_dead):
        k, indent = headers[rng.randrange(len(headers))]
        lines.insert(k + 1, f"{indent}    int dead{d} = {rng.randint(1, 9)} * 3;")
        # recompute anchors: the insert shifted everything below it
        headers = [
            (j, m.group(1)) for j, line in enumerate(lines)
            if (m := _FOR_HEADER_RE.match(line)) is not None
        ]
    return _checked("\n".join(lines) + "\n")


#: name -> (transform, probability the generator applies it)
TRANSFORMS = (
    ("rename", rename_identifiers, 0.5),
    ("dead-statements", insert_dead_statements, 0.5),
)
