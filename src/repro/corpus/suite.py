"""Corpus directories as sweepable workload suites.

:func:`register_corpus` turns every program of a generated corpus into an
ordinary :class:`~repro.bench_programs.registry.BenchmarkSpec`, so the
whole existing sweep surface works on corpora unchanged: ``analyze_registry``
fans them across processes, the service accepts ``bench``/``sweep`` jobs
naming them, and campaigns grid over them like any bench program.

**The environment bridge.**  Sweep workers resolve benchmark names *in
their own process* (``analyze_one`` and the service's process backend both
call ``get_benchmark(name)`` after the fork), so in-process registration
alone would leave child processes unable to find corpus programs.
Registration therefore also appends the corpus directory to the
``REPRO_CORPUS_PATH`` environment variable (``os.pathsep``-separated), and
the bench registry's ``_load_all`` hook calls :func:`autoload_registered`
— any process that inherits the environment rebuilds the same registry
view on first benchmark lookup.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.corpus.labels import (
    source_digest,
    validate_label_record,
    validate_manifest_record,
)
from repro.lang.analysis import source_loc

#: ``os.pathsep``-separated corpus directories that child processes (sweep
#: workers, service process backends) re-register on first registry load.
ENV_VAR = "REPRO_CORPUS_PATH"

#: directories already registered in this process (absolute paths)
_LOADED_DIRS: set[str] = set()


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus program: source plus its ground-truth label."""

    name: str
    template: str
    source: str
    entry: str
    arg_specs: tuple[tuple[str, str], ...]
    truth: dict[str, bool]
    transforms: tuple[str, ...]
    source_digest: str


@dataclass(frozen=True)
class CorpusSuite:
    """A loaded corpus: manifest plus entries in generation order."""

    name: str
    directory: str
    manifest: dict[str, Any]
    entries: tuple[CorpusEntry, ...]

    @property
    def corpus_digest(self) -> str:
        return self.manifest["corpus_digest"]

    def names(self) -> list[str]:
        return [e.name for e in self.entries]


def load_corpus(directory: str | Path) -> CorpusSuite:
    """Load and validate a corpus directory (manifest, labels, digests).

    Every label is checked against its source file's actual digest, so a
    corrupted or hand-edited corpus fails here rather than mis-scoring.
    """
    root = Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no corpus manifest at {manifest_path}")
    manifest = validate_manifest_record(
        json.loads(manifest_path.read_text(encoding="utf-8"))
    )
    entries: list[CorpusEntry] = []
    for item in manifest["programs"]:
        name = item["name"]
        source = (root / "programs" / f"{name}.c").read_text(encoding="utf-8")
        label = validate_label_record(
            json.loads((root / "labels" / f"{name}.json").read_text(encoding="utf-8"))
        )
        digest = source_digest(source)
        if digest != label["source_digest"] or digest != item["source_digest"]:
            raise ValueError(
                f"corpus program {name!r}: source digest mismatch "
                "(file was modified after generation)"
            )
        entries.append(
            CorpusEntry(
                name=name,
                template=label["template"],
                source=source,
                entry=label["entry"],
                arg_specs=tuple((kind, value) for kind, value in label["args"]),
                truth=dict(label["truth"]),
                transforms=tuple(label["transforms"]),
                source_digest=digest,
            )
        )
    return CorpusSuite(
        name=manifest["name"],
        directory=str(root),
        manifest=manifest,
        entries=tuple(entries),
    )


def _entry_spec(suite_name: str, entry: CorpusEntry):
    """Build the BenchmarkSpec for one corpus entry."""
    from repro.bench_programs.registry import BenchmarkSpec, PaperRow
    from repro.service.jobs import build_call_args

    present = [dim for dim, flag in entry.truth.items() if flag]
    return BenchmarkSpec(
        name=entry.name,
        suite=suite_name,
        source=entry.source,
        entry=entry.entry,
        make_arg_sets=lambda specs=entry.arg_specs: [build_call_args(specs, seed=0)],
        paper=PaperRow(
            loc=source_loc(entry.source),
            hotspot_pct=0.0,
            speedup=1.0,
            threads=1,
            pattern="+".join(present) or "none",
        ),
        notes=f"generated corpus program (template {entry.template})",
    )


def register_corpus(
    directory: str | Path, export_env: bool = True
) -> CorpusSuite:
    """Register every program of the corpus at *directory* as a benchmark.

    Idempotent: a directory already registered in this process is loaded
    but not re-registered, and a program name already present in the
    registry is skipped (corpus names are content-addressed, so a
    collision means the identical program).  With *export_env* the
    directory is appended to :data:`ENV_VAR` so later-spawned worker
    processes rebuild the same view.
    """
    from repro.bench_programs import registry

    root = str(Path(directory).resolve())
    suite = load_corpus(root)
    if root not in _LOADED_DIRS:
        _LOADED_DIRS.add(root)
        for entry in suite.entries:
            if entry.name in registry._REGISTRY:
                continue
            registry.register(_entry_spec(suite.name, entry))
    if export_env:
        paths = [p for p in os.environ.get(ENV_VAR, "").split(os.pathsep) if p]
        if root not in paths:
            paths.append(root)
            os.environ[ENV_VAR] = os.pathsep.join(paths)
    return suite


def unregister_corpus(directory: str | Path) -> None:
    """Remove a registered corpus from the registry and :data:`ENV_VAR`.

    The inverse of :func:`register_corpus`, used by tests and embedded
    services so corpus programs do not leak into later default sweeps
    (``analyze_registry()`` with no names, the default campaign grid).
    Unknown directories are a no-op.
    """
    from repro.bench_programs import registry

    root = str(Path(directory).resolve())
    try:
        suite = load_corpus(root)
    except (OSError, ValueError, json.JSONDecodeError):
        suite = None
    if suite is not None:
        for entry in suite.entries:
            registry._REGISTRY.pop(entry.name, None)
    _LOADED_DIRS.discard(root)
    paths = [
        p for p in os.environ.get(ENV_VAR, "").split(os.pathsep) if p and p != root
    ]
    if paths:
        os.environ[ENV_VAR] = os.pathsep.join(paths)
    else:
        os.environ.pop(ENV_VAR, None)


def autoload_registered() -> None:
    """Register every corpus directory named in :data:`ENV_VAR`.

    Called from the bench registry's ``_load_all`` hook, so any process
    that inherits the environment (sweep pool workers, service process
    backends, embedded campaign daemons) sees corpus programs without
    explicit setup.  Missing or invalid directories are skipped — a stale
    environment variable must not break unrelated benchmark lookups.
    """
    value = os.environ.get(ENV_VAR, "")
    for path in value.split(os.pathsep):
        if not path or path in _LOADED_DIRS:
            continue
        try:
            register_corpus(path, export_env=False)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            continue
