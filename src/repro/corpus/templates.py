"""ProgramBuilder templates: one per pattern shape, truth by construction.

Each template draws its free parameters (trip counts, constants, statement
mix) from a :class:`random.Random` and returns a :class:`TemplateProgram`
whose ``truth`` dict states which patterns the construction guarantees —
the labels the detectors are scored against.  Truth is decided by the
*shape*, not by running the detectors, so scoring stays an independent
check rather than a tautology:

``doall``
    a single loop of independent element updates — no loop-carried
    dependence exists by construction;
``reduction``
    a scalar ``+=`` accumulation — the only carried dependence is the
    associative accumulator;
``pipeline``
    a chain of loops where loop *k+1* reads exactly what loop *k* wrote at
    the same index (``a = 1, b = 0``: a perfect two-stage schedule);
``task``
    two independent heavyweight loops over disjoint arrays in one function
    — an antichain of size 2 in any sound CU graph;
``geometric``
    a driver repeatedly invoking a helper whose loops are all do-all
    (Section III-C's chunkable-function shape);
``wavefront_carried``
    an fdtd-style time loop whose two field updates depend across time
    steps — the backward ``(i_x, i_y)`` pairs lie on ``Y = X`` carried by
    the time loop;
``wavefront_skewed``
    a reg_detect-style pair where the consumer's iteration *i* reads the
    producer's iteration *i + 1* (``a = 1, b = -1``): a skewed pipeline.

The templates use disjoint identifier pools per role so the corpus-wide
renaming transform (see :mod:`repro.corpus.transforms`) is a sound
alpha-conversion for every template.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lang.builder import ProgramBuilder

#: The pattern dimensions every truth dict covers, in scoring order.
PATTERN_DIMENSIONS = (
    "doall",
    "reduction",
    "pipeline",
    "task",
    "geometric",
    "wavefront",
)


def _truth(**present: bool) -> dict[str, bool]:
    unknown = set(present) - set(PATTERN_DIMENSIONS)
    if unknown:
        raise ValueError(f"unknown pattern dimension(s) {sorted(unknown)}")
    return {dim: bool(present.get(dim, False)) for dim in PATTERN_DIMENSIONS}


@dataclass
class TemplateProgram:
    """One generated program before transforms: source, inputs, truth."""

    template: str
    source: str
    entry: str
    #: portable ``(kind, value)`` argument specs in the service convention
    #: (:func:`repro.service.jobs.build_call_args` materializes them)
    arg_specs: list[tuple[str, str]]
    truth: dict[str, bool]
    #: transform names applied after generation (filled by the generator)
    transforms: list[str] = field(default_factory=list)


def _array_args(n: int, *names_kinds: tuple[str, str]) -> list[tuple[str, str]]:
    specs = [(kind, f"{name}:{n}") for name, kind in names_kinds]
    specs.append(("scalar", str(n)))
    return specs


# ---------------------------------------------------------------------------
# templates
# ---------------------------------------------------------------------------


def t_doall(rng: random.Random) -> TemplateProgram:
    """Independent element updates; 1-3 statements over disjoint outputs."""
    n = rng.randrange(16, 41)
    c = float(rng.randrange(2, 6))
    # independent statements: distinct output arrays, A read-only
    stmt_pool = ("scale", "gather", "affine")
    picks = rng.sample(stmt_pool, rng.randint(1, 3))
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "A[]"), ("float", "B[]"), ("float", "C[]"),
        ("float", "D[]"), ("int", "n"),
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            for pick in picks:
                if pick == "scale":
                    f.assign(f.index("B", i), f.index("A", i) * c)
                elif pick == "gather":
                    f.assign(
                        f.index("C", i),
                        f.index("A", i) + f.index("A", f.var("n") - 1 - i),
                    )
                else:
                    f.assign(f.index("D", i), i * 3.0 + c)
    return TemplateProgram(
        template="doall",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(
            n, ("A", "rand"), ("B", "zeros"), ("C", "zeros"), ("D", "zeros")
        ),
        truth=_truth(doall=True),
    )


def t_reduction(rng: random.Random) -> TemplateProgram:
    """Scalar accumulation; optionally squares the element first."""
    n = rng.randrange(16, 41)
    square = rng.random() < 0.5
    b = ProgramBuilder()
    with b.function(
        "float", "kernel", ("float", "A[]"), ("float", "B[]"), ("int", "n")
    ) as f:
        acc = f.declare("float", "s", 0.0)
        with f.for_loop("i", 0, f.var("n")) as i:
            term = f.index("A", i) * f.index("A", i) if square else f.index("A", i)
            f.add_assign(acc, term)
        f.ret(acc)
    return TemplateProgram(
        template="reduction",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros")),
        truth=_truth(reduction=True),
    )


def t_pipeline(rng: random.Random) -> TemplateProgram:
    """A 2- or 3-stage chain of do-all loops, each reading its predecessor
    at the same index (perfect pipeline: a=1, b=0)."""
    n = rng.randrange(16, 41)
    c = float(rng.randrange(2, 6))
    stages = rng.randint(2, 3)
    arrays = ["A", "B", "C", "D"][: stages + 1]
    b = ProgramBuilder()
    params = [("float", f"{name}[]") for name in arrays] + [("int", "n")]
    with b.function("void", "kernel", *params) as f:
        for k in range(stages):
            src_arr, dst = arrays[k], arrays[k + 1]
            with f.for_loop("i", 0, f.var("n")) as i:
                f.assign(f.index(dst, i), f.index(src_arr, i) * c + 1.0)
    kinds = [("A", "rand")] + [(name, "zeros") for name in arrays[1:]]
    return TemplateProgram(
        template="pipeline",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, *kinds),
        truth=_truth(doall=True, pipeline=True),
    )


def t_task(rng: random.Random) -> TemplateProgram:
    """Two independent heavyweight accumulation loops over disjoint arrays
    (mvt's shape): an antichain of two coarse tasks in the function."""
    n = rng.randrange(48, 65)
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "A[]"), ("float", "x1[]"), ("float", "y1[]"),
        ("float", "x2[]"), ("float", "y2[]"), ("int", "n"),
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            f.assign(
                f.index("x1", i), f.index("x1", i) + f.index("A", i) * f.index("y1", i)
            )
        with f.for_loop("j", 0, f.var("n")) as j:
            f.assign(
                f.index("x2", j), f.index("x2", j) + f.index("A", j) * f.index("y2", j)
            )
    return TemplateProgram(
        template="task",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(
            n, ("A", "rand"), ("x1", "zeros"), ("y1", "rand"),
            ("x2", "zeros"), ("y2", "rand"),
        ),
        truth=_truth(doall=True, task=True),
    )


def t_geometric(rng: random.Random) -> TemplateProgram:
    """A driver loop repeatedly invoking a helper whose two loops are both
    do-all over read-only input: Section III-C's chunkable function.  The
    helper's loops are also mutually independent, so the construction
    carries task parallelism too (the paper's localSearch shape)."""
    n = rng.randrange(12, 25)
    steps = rng.randint(3, 4)
    c = float(rng.randrange(2, 6))
    b = ProgramBuilder()
    with b.function(
        "void", "phase", ("float", "A[]"), ("float", "B[]"), ("float", "C[]"),
        ("int", "n"),
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            f.assign(f.index("B", i), f.index("A", i) * c)
        with f.for_loop("j", 0, f.var("n")) as j:
            f.assign(f.index("C", j), f.index("A", j) + 3.0)
    with b.function(
        "void", "main", ("float", "A[]"), ("float", "B[]"), ("float", "C[]"),
        ("int", "n"),
    ) as f:
        with f.for_loop("t", 0, steps):
            f.expr_stmt(f.call("phase", f.var("A"), f.var("B"), f.var("C"), f.var("n")))
    return TemplateProgram(
        template="geometric",
        source=b.build().source,
        entry="main",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros"), ("C", "zeros")),
        truth=_truth(doall=True, task=True, geometric=True),
    )


def t_wavefront_carried(rng: random.Random) -> TemplateProgram:
    """fdtd-style coupled field updates: the first loop of time step t
    reads what the second loop wrote at step t-1 — backward ``(i_x, i_y)``
    pairs on ``Y = X``, carried by the time loop."""
    n = rng.randrange(12, 21)
    tmax = rng.randint(4, 6)
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "E[]"), ("float", "H[]"), ("int", "n"),
        ("int", "tmax"),
    ) as f:
        with f.for_loop("t", 0, f.var("tmax")):
            with f.for_loop("i", 1, f.var("n")) as i:
                f.assign(
                    f.index("E", i),
                    f.index("E", i) - 0.5 * (f.index("H", i) - f.index("H", i - 1)),
                )
            with f.for_loop("j", 0, f.var("n") - 1) as j:
                f.assign(
                    f.index("H", j),
                    f.index("H", j) - 0.7 * (f.index("E", j + 1) - f.index("E", j)),
                )
    specs = [("rand", f"E:{n}"), ("rand", f"H:{n}"),
             ("scalar", str(n)), ("scalar", str(tmax))]
    return TemplateProgram(
        template="wavefront_carried",
        source=b.build().source,
        entry="kernel",
        arg_specs=specs,
        truth=_truth(doall=True, pipeline=True, wavefront=True),
    )


def t_wavefront_skewed(rng: random.Random) -> TemplateProgram:
    """reg_detect-style skewed pipeline: the consumer's iteration i reads
    the producer's iteration i+1 (``a = 1, b = -1``)."""
    n = rng.randrange(16, 33)
    c = float(rng.randrange(2, 6))
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "A[]"), ("float", "B[]"), ("float", "C[]"),
        ("int", "n"),
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            f.assign(f.index("B", i), f.index("A", i) * c)
        with f.for_loop("j", 0, f.var("n") - 1) as j:
            f.assign(
                f.index("C", j + 1), f.index("C", j) + f.index("B", j + 1)
            )
    return TemplateProgram(
        template="wavefront_skewed",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros"), ("C", "zeros")),
        truth=_truth(doall=True, pipeline=True, wavefront=True),
    )


#: Registration order is the generator's round-robin order — stable across
#: releases so a (count, seed) pair names the same corpus forever.
TEMPLATES = (
    t_doall,
    t_reduction,
    t_pipeline,
    t_task,
    t_geometric,
    t_wavefront_carried,
    t_wavefront_skewed,
)


# ---------------------------------------------------------------------------
# adversarial near-miss templates
# ---------------------------------------------------------------------------
#
# Each constructs a shape *one step away* from a real pattern and stamps the
# corresponding dimension False by construction, so precision cannot saturate
# on pattern-shaped surface features alone.  They live in a separate family
# (enabled with ``generate --adversarial``) rather than in TEMPLATES: adding
# them to the base rotation would reshuffle template assignment for every
# existing (count, seed) corpus name.


def t_almost_reduction(rng: random.Random) -> TemplateProgram:
    """A prefix sum: the accumulator escapes into ``B`` each iteration.

    Shaped exactly like :func:`t_reduction` plus one statement, but the
    same-iteration read of ``s`` at another line makes each iteration's
    value observable — reordering iterations changes ``B``, so this is NOT
    a reduction (Algorithm 3's loop-independent-RAW refinement rejects it)
    and the carried flow on ``s`` keeps the loop sequential.
    """
    n = rng.randrange(16, 41)
    square = rng.random() < 0.5
    b = ProgramBuilder()
    with b.function(
        "float", "kernel", ("float", "A[]"), ("float", "B[]"), ("int", "n")
    ) as f:
        acc = f.declare("float", "s", 0.0)
        with f.for_loop("i", 0, f.var("n")) as i:
            term = f.index("A", i) * f.index("A", i) if square else f.index("A", i)
            f.add_assign(acc, term)
            f.assign(f.index("B", i), acc)  # the escaping read
        f.ret(acc)
    return TemplateProgram(
        template="almost_reduction",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros")),
        truth=_truth(),  # all False: a prefix sum is none of the patterns
    )


def t_false_doall(rng: random.Random) -> TemplateProgram:
    """A mostly-independent loop with ONE rare carried dependence.

    Iteration ``m`` writes ``A[m + 1]``, which iteration ``m + 1`` reads —
    a single dynamic RAW occurrence carried by the loop.  Every per-trip
    dependence-density feature is within noise of a clean do-all, but the
    dependence is real: iteration ``m + 1`` cannot run before ``m``, so
    ``doall`` is False by construction (and dynamically observed — the
    profiler sees even one occurrence).
    """
    n = rng.randrange(16, 41)
    c = float(rng.randrange(2, 6))
    m = rng.randrange(4, n - 2)
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "A[]"), ("float", "B[]"), ("int", "n")
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            f.assign(f.index("B", i), f.index("A", i) * c)
            with f.if_then(i.eq(m)):
                f.assign(f.index("A", m + 1), f.index("B", i) + 1.0)
    return TemplateProgram(
        template="false_doall",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros")),
        truth=_truth(),  # all False: one carried dependence breaks do-all
    )


def t_near_wavefront(rng: random.Random) -> TemplateProgram:
    """A producer/consumer pair whose cross-loop affinity is broken.

    The consumer reads the producer through a modular scramble
    (``B[(j * q) % n]``), so consumer iteration 1 may already need one of
    the producer's *last* iterations: no two-stage overlap schedule and no
    wavefront skew exists, even though the loop pair, dependence counts,
    and self-recurrence mimic :func:`t_wavefront_skewed`.  The ``(i_x,
    i_y)`` pair cloud is not a line — the affine fit that licenses a
    wavefront fails by construction.  Only the producer loop is do-all.
    """
    n = rng.randrange(16, 41)
    c = float(rng.randrange(2, 6))
    q = rng.choice([5, 7, 11])
    b = ProgramBuilder()
    with b.function(
        "void", "kernel", ("float", "A[]"), ("float", "B[]"), ("float", "C[]"),
        ("int", "n"),
    ) as f:
        with f.for_loop("i", 0, f.var("n")) as i:
            f.assign(f.index("B", i), f.index("A", i) * c)
        with f.for_loop("j", 1, f.var("n")) as j:
            f.assign(
                f.index("C", j),
                f.index("C", j - 1) + f.index("B", (j * q) % f.var("n")),
            )
    return TemplateProgram(
        template="near_wavefront",
        source=b.build().source,
        entry="kernel",
        arg_specs=_array_args(n, ("A", "rand"), ("B", "zeros"), ("C", "rand")),
        truth=_truth(doall=True),  # producer only; no pipeline, no wavefront
    )


#: The adversarial family, appended to the rotation by
#: ``generate_programs(..., adversarial=True)``.  Same stability contract
#: as TEMPLATES: order is append-only.
ADVERSARIAL_TEMPLATES = (
    t_almost_reduction,
    t_false_doall,
    t_near_wavefront,
)
