"""Versioned label and manifest records for generated corpora.

Two more document kinds riding on the analysis schema version, following
the job-record / campaign-record envelope convention of
:mod:`repro.patterns.schema`: a ``"record"`` discriminator plus
``schema_version``, validated on load so a stale or hand-edited corpus
fails fast instead of silently mis-scoring.

Both records are content-addressed: a label carries the SHA-256 of the
program source it describes (checked against the file at load time), and
the manifest's ``corpus_digest`` hashes the sorted per-program source
digests — byte-determinism of generation reduces to comparing two
manifest files.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.corpus.templates import PATTERN_DIMENSIONS
from repro.patterns.schema import SCHEMA_VERSION

CORPUS_LABEL_RECORD = "corpus_label"
CORPUS_MANIFEST_RECORD = "corpus_manifest"


def source_digest(source: str) -> str:
    """Content address of one program's MiniC source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def corpus_digest(source_digests: list[str]) -> str:
    """Content address of a whole corpus: order-independent over programs."""
    h = hashlib.sha256()
    h.update(b"repro-corpus\x00")
    for digest in sorted(source_digests):
        h.update(digest.encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


def label_record(
    name: str,
    template: str,
    transforms: list[str],
    entry: str,
    arg_specs: list[tuple[str, str]],
    seed: int,
    digest: str,
    truth: dict[str, bool],
) -> dict[str, Any]:
    """The ground-truth label document stored beside one program."""
    return {
        "schema_version": SCHEMA_VERSION,
        "record": CORPUS_LABEL_RECORD,
        "name": name,
        "template": template,
        "transforms": list(transforms),
        "entry": entry,
        "args": [[kind, value] for kind, value in arg_specs],
        "seed": seed,
        "source_digest": digest,
        "truth": {dim: bool(truth[dim]) for dim in PATTERN_DIMENSIONS},
    }


def validate_label_record(doc: dict[str, Any]) -> dict[str, Any]:
    """Check *doc* is a corpus label of this schema version; return it."""
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported corpus label schema version {version!r}")
    if doc.get("record") != CORPUS_LABEL_RECORD:
        raise ValueError("document is not a corpus label record")
    for key in ("name", "template", "entry", "source_digest"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            raise ValueError(f"corpus label missing {key!r}")
    truth = doc.get("truth")
    if not isinstance(truth, dict):
        raise ValueError("corpus label missing 'truth'")
    missing = [dim for dim in PATTERN_DIMENSIONS if dim not in truth]
    if missing:
        raise ValueError(f"corpus label truth missing dimension(s) {missing}")
    args = doc.get("args")
    if not isinstance(args, list) or any(
        not isinstance(spec, list) or len(spec) != 2 for spec in args
    ):
        raise ValueError("corpus label 'args' must be a list of [kind, value] pairs")
    return doc


def manifest_record(
    name: str,
    count: int,
    seed: int,
    programs: list[dict[str, str]],
) -> dict[str, Any]:
    """The corpus-wide manifest: generation parameters + content address.

    *programs* entries carry ``name``, ``template``, and ``source_digest``;
    the manifest stores them in generation order (deterministic), while the
    corpus digest itself is order-independent.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "record": CORPUS_MANIFEST_RECORD,
        "name": name,
        "count": count,
        "seed": seed,
        "corpus_digest": corpus_digest([p["source_digest"] for p in programs]),
        "programs": programs,
    }


def validate_manifest_record(doc: dict[str, Any]) -> dict[str, Any]:
    """Check *doc* is a corpus manifest of this schema version; return it."""
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported corpus manifest schema version {version!r}")
    if doc.get("record") != CORPUS_MANIFEST_RECORD:
        raise ValueError("document is not a corpus manifest record")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        raise ValueError("corpus manifest missing 'name'")
    programs = doc.get("programs")
    if not isinstance(programs, list) or not programs:
        raise ValueError("corpus manifest missing 'programs'")
    for p in programs:
        for key in ("name", "template", "source_digest"):
            if not isinstance(p.get(key), str) or not p.get(key):
                raise ValueError(f"corpus manifest program entry missing {key!r}")
    expected = corpus_digest([p["source_digest"] for p in programs])
    if doc.get("corpus_digest") != expected:
        raise ValueError("corpus manifest digest does not match its program list")
    return doc
