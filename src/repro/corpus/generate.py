"""Deterministic seeded corpus generation (``repro corpus generate``).

Determinism is the load-bearing property: the same ``(count, seed)`` pair
must produce byte-identical corpora on every machine and every run, so the
CI smoke can ``cmp`` two generations and a corpus name is a stable content
address.  The ingredients:

* each program draws from its own ``random.Random(f"{seed}:{index}")`` —
  programs are independent, so inserting a template or changing one
  program's parameter space never reshuffles the rest of the corpus;
* templates rotate round-robin, so every prefix of a corpus covers all
  pattern shapes (a 25-program smoke corpus exercises all seven);
* no timestamps, hostnames, or float formatting ambiguity anywhere in the
  emitted files; JSON is dumped with sorted keys and fixed separators.

Layout of a generated corpus directory::

    DIR/
      manifest.json            corpus-wide record (count, seed, digest)
      programs/<name>.c        MiniC source
      labels/<name>.json       ground-truth label record
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any

from repro.corpus.labels import (
    label_record,
    manifest_record,
    source_digest,
)
from repro.corpus.templates import ADVERSARIAL_TEMPLATES, TEMPLATES, TemplateProgram
from repro.corpus.transforms import TRANSFORMS


def _program_name(index: int, template: str, digest: str) -> str:
    """Content-addressed program name: index for ordering, template for
    readability, digest prefix for identity."""
    return f"c{index:03d}-{template.replace('_', '-')}-{digest[:8]}"


def generate_programs(
    count: int, seed: int, adversarial: bool = False
) -> list[TemplateProgram]:
    """Generate *count* labeled programs in memory (no filesystem).

    This is the generator's core, shared by ``repro corpus generate`` and
    the fuzzing tests that draw corpus programs directly.  With
    *adversarial*, the near-miss templates join the round-robin rotation
    (after the base seven, so prefixes still cover every true pattern);
    the flag changes the rotation length, so adversarial corpora are a
    distinct deterministic family from plain ones — a plain ``(count,
    seed)`` corpus keeps its bytes forever either way.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rotation = TEMPLATES + ADVERSARIAL_TEMPLATES if adversarial else TEMPLATES
    programs: list[TemplateProgram] = []
    for index in range(count):
        rng = random.Random(f"{seed}:{index}")
        template = rotation[index % len(rotation)]
        tp = template(rng)
        for name, transform, probability in TRANSFORMS:
            if rng.random() < probability:
                transformed = transform(tp.source, rng)
                if transformed != tp.source:
                    tp.source = transformed
                    tp.transforms.append(name)
        programs.append(tp)
    return programs


def _dump_json(path: Path, doc: dict[str, Any]) -> None:
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2, separators=(",", ": ")) + "\n",
        encoding="utf-8",
    )


def generate_corpus(
    count: int,
    seed: int,
    out_dir: str | Path,
    name: str | None = None,
    adversarial: bool = False,
) -> dict[str, Any]:
    """Generate a corpus into *out_dir*; returns the manifest record.

    The directory is created if needed; existing files with the same names
    are overwritten (regeneration is idempotent by determinism).  *name*
    defaults to ``corpus-s<seed>-n<count>`` (``adv-`` prefixed when the
    adversarial rotation is enabled).
    """
    out = Path(out_dir)
    (out / "programs").mkdir(parents=True, exist_ok=True)
    (out / "labels").mkdir(parents=True, exist_ok=True)
    default = f"corpus-s{seed}-n{count}"
    if adversarial:
        default = f"adv-{default}"
    corpus_name = name or default
    entries: list[dict[str, str]] = []
    for index, tp in enumerate(generate_programs(count, seed, adversarial)):
        digest = source_digest(tp.source)
        prog_name = _program_name(index, tp.template, digest)
        (out / "programs" / f"{prog_name}.c").write_text(tp.source, encoding="utf-8")
        _dump_json(
            out / "labels" / f"{prog_name}.json",
            label_record(
                name=prog_name,
                template=tp.template,
                transforms=tp.transforms,
                entry=tp.entry,
                arg_specs=tp.arg_specs,
                seed=seed,
                digest=digest,
                truth=tp.truth,
            ),
        )
        entries.append(
            {"name": prog_name, "template": tp.template, "source_digest": digest}
        )
    manifest = manifest_record(corpus_name, count, seed, entries)
    _dump_json(out / "manifest.json", manifest)
    return manifest
