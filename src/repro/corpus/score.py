"""Score detector output against corpus ground truth
(``repro corpus score``).

Scoring is *program-level presence*: for each pattern dimension, did the
detector pipeline find at least one instance in the program?  That matches
the granularity of the ground-truth labels (a template constructs a
pattern, it does not pin region ids, which transforms legitimately shift).

The prediction predicates deliberately reuse the exact gates the rest of
the system quotes — ``clean_pipelines()`` and ``best_task_parallelism()``
rather than the raw candidate lists — so a corpus score measures what a
user of the tool would actually be told.
"""

from __future__ import annotations

import io
from typing import Any, Iterable

from repro.corpus.suite import CorpusEntry, CorpusSuite
from repro.corpus.templates import PATTERN_DIMENSIONS
from repro.patterns.framework import AnalysisResult
from repro.patterns.schema import SCHEMA_VERSION

CORPUS_SCORE_RECORD = "corpus_score"


def predicted_patterns(result: AnalysisResult) -> dict[str, bool]:
    """Program-level pattern presence as the detector pipeline reports it."""
    return {
        "doall": any(lc.is_doall for lc in result.loop_classes.values()),
        "reduction": any(bool(c) for c in result.reductions.values()),
        "pipeline": bool(result.clean_pipelines()),
        "task": result.best_task_parallelism() is not None,
        "geometric": bool(result.geometric),
        "wavefront": bool(result.wavefronts),
    }


def analyze_entry(
    entry: CorpusEntry, cache=None, engine: str = "compiled"
) -> AnalysisResult:
    """Run the full detector pipeline over one corpus program."""
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.patterns.engine import analyze
    from repro.service.jobs import build_call_args

    program = parse_program(entry.source)
    validate_program(program)
    args = build_call_args(entry.arg_specs, seed=0)
    return analyze(program, entry.entry, [args], cache=cache, engine=engine)


def score_corpus(
    suite: CorpusSuite,
    predictions: dict[str, dict[str, bool]],
) -> dict[str, Any]:
    """Join *predictions* (program name -> presence dict) against truth.

    Returns the versioned score document: per-detector confusion counts
    with precision/recall/F1/accuracy, plus every individual mismatch
    (program, dimension, truth, predicted) for debugging.
    """
    per: dict[str, dict[str, int]] = {
        dim: {"tp": 0, "fp": 0, "fn": 0, "tn": 0} for dim in PATTERN_DIMENSIONS
    }
    mismatches: list[dict[str, Any]] = []
    scored = 0
    for entry in suite.entries:
        pred = predictions.get(entry.name)
        if pred is None:
            continue
        scored += 1
        for dim in PATTERN_DIMENSIONS:
            truth = bool(entry.truth[dim])
            guess = bool(pred.get(dim, False))
            cell = per[dim]
            if truth and guess:
                cell["tp"] += 1
            elif truth and not guess:
                cell["fn"] += 1
            elif guess:
                cell["fp"] += 1
            else:
                cell["tn"] += 1
            if truth != guess:
                mismatches.append(
                    {
                        "program": entry.name,
                        "template": entry.template,
                        "dimension": dim,
                        "truth": truth,
                        "predicted": guess,
                    }
                )
    detectors: dict[str, dict[str, Any]] = {}
    for dim, cell in per.items():
        tp, fp, fn, tn = cell["tp"], cell["fp"], cell["fn"], cell["tn"]
        total = tp + fp + fn + tn
        # Undefined metrics are reported as null, not defaulted: an
        # all-negative corpus has no positive predictions or truths, and
        # pretending precision is 1.0 there would let a detector that never
        # fires look perfect.  ``format_table`` renders None as ``-`` and
        # the csv writer as an empty cell.
        detectors[dim] = {
            **cell,
            "precision": tp / (tp + fp) if tp + fp else None,
            "recall": tp / (tp + fn) if tp + fn else None,
            "f1": 2 * tp / (2 * tp + fp + fn) if 2 * tp + fp + fn else None,
            "accuracy": (tp + tn) / total if total else None,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "record": CORPUS_SCORE_RECORD,
        "corpus": suite.name,
        "corpus_digest": suite.corpus_digest,
        "programs": scored,
        "detectors": detectors,
        "mismatches": mismatches,
    }


def score_table(score: dict[str, Any]) -> str:
    """Render the score document as the text confusion table."""
    from repro.reporting.tables import format_table

    rows = []
    for dim in PATTERN_DIMENSIONS:
        d = score["detectors"][dim]
        rows.append(
            [
                dim,
                d["tp"], d["fp"], d["fn"], d["tn"],
                d["precision"], d["recall"], d["f1"], d["accuracy"],
            ]
        )
    title = (
        f"Corpus score: {score['corpus']} "
        f"({score['programs']} programs)"
    )
    text = format_table(
        ["detector", "tp", "fp", "fn", "tn", "precision", "recall", "f1", "accuracy"],
        rows,
        title=title,
    )
    if score["mismatches"]:
        lines = [text, "", "Mismatches:"]
        for m in score["mismatches"]:
            lines.append(
                f"  {m['program']} [{m['template']}] {m['dimension']}: "
                f"truth={m['truth']} predicted={m['predicted']}"
            )
        return "\n".join(lines)
    return text


def score_csv(score: dict[str, Any]) -> str:
    """Render the per-detector table as CSV text."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["detector", "tp", "fp", "fn", "tn", "precision", "recall", "f1", "accuracy"]
    )
    for dim in PATTERN_DIMENSIONS:
        d = score["detectors"][dim]
        writer.writerow(
            [dim, d["tp"], d["fp"], d["fn"], d["tn"],
             d["precision"], d["recall"], d["f1"], d["accuracy"]]
        )
    return buf.getvalue()


def score_entries(
    suite: CorpusSuite,
    entries: Iterable[CorpusEntry] | None = None,
    cache=None,
    engine: str = "compiled",
) -> dict[str, Any]:
    """Analyze (or re-use *cache*) every corpus entry and score the suite."""
    predictions: dict[str, dict[str, bool]] = {}
    for entry in entries if entries is not None else suite.entries:
        result = analyze_entry(entry, cache=cache, engine=engine)
        predictions[entry.name] = predicted_patterns(result)
    return score_corpus(suite, predictions)
