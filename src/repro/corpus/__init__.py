"""Labeled generated-program corpus: deterministic MiniC program generation
with ground-truth pattern labels, registry/service integration, and a
scoring layer joining detector output against the labels.

The corpus promotes the seeded generative machinery proven in the
metamorphic test suite into a first-class subsystem (ROADMAP item 4):

* :mod:`repro.corpus.templates` — :class:`~repro.lang.builder.ProgramBuilder`
  templates for each pattern shape (do-all, reduction, pipeline, task,
  geometric, wavefront), each stamped with the ground truth it constructs;
* :mod:`repro.corpus.transforms` — the semantics-preserving source
  transforms (renaming, dead statements) the metamorphic tests proved
  pattern-invariant;
* :mod:`repro.corpus.generate` — the deterministic seeded generator behind
  ``repro corpus generate``;
* :mod:`repro.corpus.labels` — versioned label / manifest records,
  content-addressed by source digest;
* :mod:`repro.corpus.suite` — registration of a generated corpus as a
  sweepable workload suite (``analyze_registry``, service ``bench``/
  ``sweep`` jobs, and campaigns all see corpus programs as ordinary
  benchmarks);
* :mod:`repro.corpus.score` — ``repro corpus score``: per-detector
  precision/recall/confusion against the ground truth.
"""

from repro.corpus.generate import generate_corpus, generate_programs
from repro.corpus.labels import CORPUS_LABEL_RECORD, CORPUS_MANIFEST_RECORD
from repro.corpus.score import (
    predicted_patterns,
    score_corpus,
    score_csv,
    score_entries,
    score_table,
)
from repro.corpus.suite import load_corpus, register_corpus, unregister_corpus

__all__ = [
    "CORPUS_LABEL_RECORD",
    "CORPUS_MANIFEST_RECORD",
    "generate_corpus",
    "generate_programs",
    "load_corpus",
    "predicted_patterns",
    "register_corpus",
    "score_corpus",
    "score_csv",
    "score_entries",
    "score_table",
    "unregister_corpus",
]
