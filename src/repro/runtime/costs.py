"""LLVM-IR-like instruction cost model.

The paper counts LLVM IR instructions per region (for hotspot ranking, PET
node weights, and the task-parallelism estimated-speedup metric).  Our
interpreter charges these approximate per-operation costs instead; only the
*relative* weights matter for the reproduced metrics.
"""

from __future__ import annotations

#: Scalar/array load.
LOAD = 1
#: Scalar/array store.
STORE = 1
#: Arithmetic or logical binary operation.
ARITH = 1
#: Comparison.
COMPARE = 1
#: Unary operation.
UNARY = 1
#: Conditional/unconditional branch (if, loop back-edge, loop exit test).
BRANCH = 1
#: Address computation per index dimension (GEP-like).
INDEX = 1
#: Call/return overhead of a user function (prologue + epilogue).
CALL = 2
#: Return instruction.
RETURN = 1
