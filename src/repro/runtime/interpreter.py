"""Tree-walking, instrumented interpreter for MiniC.

The interpreter is the reproduction's stand-in for the paper's
LLVM-instrumented native execution: it runs the program with concrete inputs
while reporting memory accesses, region transitions, loop iterations, and an
IR-like cost to an attached :class:`~repro.runtime.events.Sink`.

Semantics notes
---------------
* ``int``/``int`` division truncates toward zero and ``%`` follows C sign
  rules.
* Scalar locals declared inside a loop body behave like stack slots: the cell
  (and hence the address) is allocated once per *function activation* and
  reused across iterations, so the profiler observes the same WAR/WAW
  patterns DiscoPoP sees — and can prove privatization.
* Function namespaces are flat per activation; redeclaring a name in
  *disjoint* scopes is fine, but MiniC does not support using an outer
  variable after an inner scope shadowed it.
* ``&``-reference parameters share the caller's scalar cell; array parameters
  share the caller's array.  Aliasing is therefore visible to the profiler.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import InterpreterError, StepLimitExceeded
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
)
from repro.runtime import costs
from repro.runtime.events import (
    EV_COST,
    EV_ENTER_FUNC,
    EV_ENTER_LOOP,
    EV_EXIT_FUNC,
    EV_EXIT_LOOP,
    EV_ITER,
    EV_READ,
    EV_STMT,
    EV_WRITE,
    Sink,
)
from repro.runtime.intrinsics import INTRINSICS
from repro.runtime.sites import get_site_table
from repro.runtime.values import AddressSpace, ArrayValue, ScalarCell

# Cost constants hoisted to module level: attribute lookups on the `costs`
# module are measurable in the per-expression hot path.
_LOAD = costs.LOAD
_STORE = costs.STORE
_ARITH = costs.ARITH
_COMPARE = costs.COMPARE
_UNARY = costs.UNARY
_BRANCH = costs.BRANCH
_INDEX = costs.INDEX
_CALL = costs.CALL
_RETURN = costs.RETURN

#: Flush the event buffer to the sink once it reaches this many events.
#: Checked at statement granularity, so the buffer can overshoot by one
#: statement's worth of events — never unboundedly.
EVENT_CHUNK = 8192

_CMP_OPS = frozenset(("==", "!=", "<", "<=", ">", ">="))


def build_globals(
    program: Program, space: AddressSpace
) -> dict[str, ScalarCell | ArrayValue]:
    """Allocate and initialize the program's global variables.

    Shared by the tree-walking interpreter and the closure compiler so both
    engines resolve identical global storage (addresses included — both
    allocate globals first from a fresh :class:`AddressSpace`).
    """
    globals_: dict[str, ScalarCell | ArrayValue] = {}

    def const_expr(expr: Expr) -> int | float:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return -const_expr(expr.operand)
        if isinstance(expr, BinOp):
            left = const_expr(expr.left)
            right = const_expr(expr.right)
            return Interpreter._apply_binop(expr.op, left, right, expr.line)
        if isinstance(expr, VarRef):
            slot = globals_.get(expr.name)
            if isinstance(slot, ScalarCell):
                return slot.value
        raise InterpreterError("global initializer must be constant", line=expr.line)

    for decl in program.globals:
        if decl.dims:
            extents = [const_expr(d) for d in decl.dims]
            globals_[decl.name] = ArrayValue(decl.type, extents, space, name=decl.name)
        else:
            value: int | float = 0 if decl.type == "int" else 0.0
            if decl.init is not None:
                value = const_expr(decl.init)
                value = int(value) if decl.type == "int" else float(value)
            globals_[decl.name] = ScalarCell(
                addr=space.alloc(1), value=value, name=decl.name
            )
    return globals_


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass(slots=True)
class _Frame:
    """One function activation: flat name table plus per-decl-site cells."""

    func: Function
    vars: dict[str, ScalarCell | ArrayValue] = field(default_factory=dict)
    decl_slots: dict[int, ScalarCell | ArrayValue] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one interpreted run."""

    value: Any
    total_cost: int
    arrays: dict[str, np.ndarray]
    scalars: dict[str, int | float]
    globals: dict[str, Any]


def _c_int_div(a: int, b: int, line: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero", line=line)
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_int_mod(a: int, b: int, line: int) -> int:
    if b == 0:
        raise InterpreterError("integer modulo by zero", line=line)
    r = abs(a) % abs(b)
    return -r if a < 0 else r


class Interpreter:
    """Executes a MiniC :class:`Program`, reporting events to a sink."""

    def __init__(
        self,
        program: Program,
        sink: Sink | None = None,
        max_cost: int = 500_000_000,
    ) -> None:
        self.program = program
        self.sink = sink
        self.max_cost = max_cost
        self.space = AddressSpace()
        self.globals: dict[str, ScalarCell | ArrayValue] = {}
        self.total_cost = 0
        self._acc_line = -1
        self._acc_cost = 0
        self._next_activation = 0
        self._functions = {f.name: f for f in program.functions}
        # Buffered event fast path: instead of one sink method call per
        # event, tagged tuples accumulate here and flush to the sink in
        # chunks (order preserved).  Unused when no sink is attached.
        self._events: list[tuple] = []
        if sink is not None:
            sink.set_site_table(get_site_table(program))
        self._init_globals()

    # ------------------------------------------------------------------
    # cost / event plumbing
    # ------------------------------------------------------------------

    def _charge(self, line: int, amount: int) -> None:
        self.total_cost += amount
        if self.total_cost > self.max_cost:
            raise StepLimitExceeded(
                f"execution exceeded the cost budget of {self.max_cost} instructions"
            )
        if self.sink is None:
            return
        if line != self._acc_line:
            self._flush()
            self._acc_line = line
        self._acc_cost += amount

    def _flush(self) -> None:
        if self.sink is not None and self._acc_cost:
            self._events.append((EV_COST, self._acc_line, self._acc_cost))
        self._acc_cost = 0

    def _flush_events(self) -> None:
        if self._events:
            self.sink.consume_batch(self._events)
            self._events.clear()

    def _new_activation(self) -> int:
        self._next_activation += 1
        return self._next_activation

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _init_globals(self) -> None:
        self.globals = build_globals(self.program, self.space)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, entry: str, args: Sequence[Any] = ()) -> RunResult:
        """Call *entry* with Python *args*, returning a :class:`RunResult`.

        Array arguments may be numpy arrays or (nested) lists and are copied
        into fresh :class:`ArrayValue` storage; their final contents are
        exposed in ``RunResult.arrays`` keyed by parameter name.  Scalars are
        passed by value; ``&``-reference scalar parameters receive a fresh
        cell whose final value appears in ``RunResult.scalars``.
        """
        if entry not in self._functions:
            raise InterpreterError(f"no function named {entry!r}")
        func = self._functions[entry]
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{entry}() expects {len(func.params)} arguments, got {len(args)}"
            )
        bound: list[ScalarCell | ArrayValue | int | float] = []
        arrays: dict[str, ArrayValue] = {}
        ref_cells: dict[str, ScalarCell] = {}
        for param, arg in zip(func.params, args):
            if param.is_array:
                if isinstance(arg, ArrayValue):
                    value = arg
                else:
                    arr = np.asarray(
                        arg, dtype=np.int64 if param.type == "int" else np.float64
                    )
                    if arr.ndim != param.array_rank:
                        raise InterpreterError(
                            f"argument for {param.name!r} has rank {arr.ndim}, "
                            f"expected {param.array_rank}"
                        )
                    value = ArrayValue.from_numpy(arr, self.space, name=param.name)
                arrays[param.name] = value
                bound.append(value)
            elif param.by_ref:
                cell = ScalarCell(
                    addr=self.space.alloc(1),
                    value=int(arg) if param.type == "int" else float(arg),
                    name=param.name,
                )
                ref_cells[param.name] = cell
                bound.append(cell)
            else:
                bound.append(int(arg) if param.type == "int" else float(arg))

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 40_000))
        try:
            value = self._invoke(func, bound, call_line=func.line)
        finally:
            sys.setrecursionlimit(old_limit)
        self._flush()
        if self.sink is not None:
            self._flush_events()
            self.sink.finish()
        return RunResult(
            value=value,
            total_cost=self.total_cost,
            arrays={name: a.to_numpy() for name, a in arrays.items()},
            scalars={name: c.value for name, c in ref_cells.items()},
            globals={
                name: (slot.to_numpy() if isinstance(slot, ArrayValue) else slot.value)
                for name, slot in self.globals.items()
            },
        )

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _invoke(
        self,
        func: Function,
        bound: list[ScalarCell | ArrayValue | int | float],
        call_line: int,
    ) -> Any:
        frame = _Frame(func=func)
        self._charge(call_line, _CALL)
        self._flush()
        activation = self._new_activation()
        if self.sink is not None:
            events = self._events
            if len(events) >= EVENT_CHUNK:
                self._flush_events()  # clears in place; `events` stays bound
            events.append((EV_ENTER_FUNC, func.region_id, activation, call_line))
            # Anchor the new activation's site at the signature line so the
            # parameter stores below are not attributed to the call site.
            events.append((EV_STMT, func.line))
        try:
            for param, value in zip(func.params, bound):
                if param.is_array or param.by_ref:
                    frame.vars[param.name] = value  # shared storage
                else:
                    cell = ScalarCell(
                        addr=self.space.alloc(1), value=value, name=param.name
                    )
                    frame.vars[param.name] = cell
                    if self.sink is not None:
                        self._events.append(
                            (EV_WRITE, cell.addr, param._sid)
                        )
                    self._charge(func.line, _STORE)
            result: Any = None
            try:
                self._exec_body(func.body, frame)
            except _ReturnSignal as sig:
                result = sig.value
            self._charge(func.line, _RETURN)
            return result
        finally:
            self._flush()
            if self.sink is not None:
                self._events.append((EV_EXIT_FUNC, func.region_id, activation))

    def _call(self, call: Call, frame: _Frame) -> Any:
        if call.name in INTRINSICS:
            spec = INTRINSICS[call.name]
            values = [self._eval(a, frame) for a in call.args]
            self._charge(call.line, spec.cost)
            try:
                return spec.fn(*values)
            except (ValueError, OverflowError, ZeroDivisionError) as exc:
                raise InterpreterError(
                    f"intrinsic {call.name}() failed: {exc}", line=call.line
                ) from exc
        func = self._functions.get(call.name)
        if func is None:
            raise InterpreterError(f"call to unknown function {call.name!r}", line=call.line)
        if len(call.args) != len(func.params):
            raise InterpreterError(
                f"{call.name}() expects {len(func.params)} args, got {len(call.args)}",
                line=call.line,
            )
        bound: list[ScalarCell | ArrayValue | int | float] = []
        for param, arg in zip(func.params, call.args):
            if param.is_array:
                if not isinstance(arg, VarRef):
                    raise InterpreterError(
                        f"array argument for {param.name!r} must be an array name",
                        line=call.line,
                    )
                slot = self._lookup(arg.name, frame, arg.line)
                if not isinstance(slot, ArrayValue):
                    raise InterpreterError(
                        f"{arg.name!r} is not an array", line=arg.line
                    )
                if slot.rank != param.array_rank:
                    raise InterpreterError(
                        f"array {arg.name!r} has rank {slot.rank}, parameter "
                        f"{param.name!r} expects {param.array_rank}",
                        line=call.line,
                    )
                bound.append(slot)
            elif param.by_ref:
                if not isinstance(arg, VarRef):
                    raise InterpreterError(
                        f"reference argument for {param.name!r} must be a variable",
                        line=call.line,
                    )
                slot = self._lookup(arg.name, frame, arg.line)
                if not isinstance(slot, ScalarCell):
                    raise InterpreterError(
                        f"{arg.name!r} is not a scalar", line=arg.line
                    )
                bound.append(slot)
            else:
                value = self._eval(arg, frame)
                bound.append(int(value) if param.type == "int" else float(value))
        return self._invoke(func, bound, call_line=call.line)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _exec_body(self, body: list[Stmt], frame: _Frame) -> None:
        for stmt in body:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: Stmt, frame: _Frame) -> None:
        if self.sink is not None:
            events = self._events
            if len(events) >= EVENT_CHUNK:
                self._flush_events()  # clears in place; `events` stays bound
            events.append((EV_STMT, stmt.line))
        kind = type(stmt)
        if kind is Assign:
            self._exec_assign(stmt, frame)
        elif kind is VarDecl:
            self._exec_decl(stmt, frame)
        elif kind is If:
            cond = self._eval(stmt.cond, frame)
            self._charge(stmt.line, _BRANCH)
            if cond:
                self._exec_body(stmt.then_body, frame)
            else:
                self._exec_body(stmt.else_body, frame)
        elif kind is For:
            self._exec_for(stmt, frame)
        elif kind is While:
            self._exec_while(stmt, frame)
        elif kind is Return:
            value = None if stmt.value is None else self._eval(stmt.value, frame)
            raise _ReturnSignal(value)
        elif kind is ExprStmt:
            self._eval(stmt.expr, frame)
        elif kind is Break:
            raise _BreakSignal()
        elif kind is Continue:
            raise _ContinueSignal()
        else:  # pragma: no cover - exhaustiveness guard
            raise InterpreterError(f"unknown statement {stmt!r}", line=stmt.line)

    def _exec_decl(self, decl: VarDecl, frame: _Frame) -> None:
        slot = frame.decl_slots.get(decl.stmt_id)
        if slot is None:
            if decl.dims:
                extents = [int(self._eval(d, frame)) for d in decl.dims]
                slot = ArrayValue(decl.type, extents, self.space, name=decl.name)
            else:
                slot = ScalarCell(
                    addr=self.space.alloc(1),
                    value=0 if decl.type == "int" else 0.0,
                    name=decl.name,
                )
            frame.decl_slots[decl.stmt_id] = slot
        frame.vars[decl.name] = slot
        if decl.init is not None and isinstance(slot, ScalarCell):
            value = self._eval(decl.init, frame)
            slot.value = int(value) if decl.type == "int" else float(value)
            if self.sink is not None:
                self._events.append((EV_WRITE, slot.addr, decl._sid))
            self._charge(decl.line, _STORE)

    def _exec_assign(self, stmt: Assign, frame: _Frame) -> None:
        target = stmt.target
        line = stmt.line
        slot = self._lookup(target.name, frame, line)
        if isinstance(target, ArrayLV):
            if not isinstance(slot, ArrayValue):
                raise InterpreterError(f"{target.name!r} is not an array", line=line)
            indices = [int(self._eval(ix, frame)) for ix in target.indices]
            self._charge(line, _INDEX * len(indices))
            flat = slot.flat_index(indices, line=line)
            addr = slot.base + flat
            if stmt.op == "=":
                value = self._eval(stmt.value, frame)
            else:
                current = slot.data[flat]
                if self.sink is not None:
                    self._events.append((EV_READ, addr, stmt._sid_read))
                self._charge(line, _LOAD)
                rhs = self._eval(stmt.value, frame)
                value = self._apply_binop(stmt.op[0], current, rhs, line)
                self._charge(line, _ARITH)
            slot.set(flat, value)
            if self.sink is not None:
                self._events.append((EV_WRITE, addr, stmt._sid_write))
            self._charge(line, _STORE)
        else:
            if not isinstance(slot, ScalarCell):
                raise InterpreterError(
                    f"cannot assign to array {target.name!r} without indices", line=line
                )
            if stmt.op == "=":
                value = self._eval(stmt.value, frame)
            else:
                if self.sink is not None:
                    self._events.append((EV_READ, slot.addr, stmt._sid_read))
                self._charge(line, _LOAD)
                rhs = self._eval(stmt.value, frame)
                value = self._apply_binop(stmt.op[0], slot.value, rhs, line)
                self._charge(line, _ARITH)
            if isinstance(slot.value, int) and not isinstance(value, int):
                value = int(value)
            slot.value = value
            if self.sink is not None:
                self._events.append((EV_WRITE, slot.addr, stmt._sid_write))
            self._charge(line, _STORE)

    def _exec_for(self, loop: For, frame: _Frame) -> None:
        self._flush()
        activation = self._new_activation()
        if self.sink is not None:
            self._events.append((EV_ENTER_LOOP, loop.region_id, activation, loop.line))
        trips = 0
        try:
            if loop.init is not None:
                self._exec_stmt(loop.init, frame)
            while True:
                if self.sink is not None:
                    # flush the per-line cost buffer so per-iteration cost
                    # accounting sees this iteration's charges
                    self._flush()
                    self._events.append((EV_ITER, loop.region_id, trips))
                if loop.cond is not None:
                    self._charge(loop.line, _BRANCH)
                    if not self._eval(loop.cond, frame):
                        break
                try:
                    self._exec_body(loop.body, frame)
                except _ContinueSignal:
                    pass
                except _BreakSignal:
                    trips += 1
                    break
                if loop.step is not None:
                    self._exec_stmt(loop.step, frame)
                trips += 1
        finally:
            self._flush()
            if self.sink is not None:
                self._events.append(
                    (EV_EXIT_LOOP, loop.region_id, activation, trips)
                )

    def _exec_while(self, loop: While, frame: _Frame) -> None:
        self._flush()
        activation = self._new_activation()
        if self.sink is not None:
            self._events.append((EV_ENTER_LOOP, loop.region_id, activation, loop.line))
        trips = 0
        try:
            while True:
                if self.sink is not None:
                    self._flush()
                    self._events.append((EV_ITER, loop.region_id, trips))
                self._charge(loop.line, _BRANCH)
                if not self._eval(loop.cond, frame):
                    break
                try:
                    self._exec_body(loop.body, frame)
                except _ContinueSignal:
                    pass
                except _BreakSignal:
                    trips += 1
                    break
                trips += 1
        finally:
            self._flush()
            if self.sink is not None:
                self._events.append(
                    (EV_EXIT_LOOP, loop.region_id, activation, trips)
                )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _lookup(self, name: str, frame: _Frame, line: int) -> ScalarCell | ArrayValue:
        slot = frame.vars.get(name)
        if slot is None:
            slot = self.globals.get(name)
        if slot is None:
            raise InterpreterError(f"use of undeclared variable {name!r}", line=line)
        return slot

    def _eval(self, expr: Expr, frame: _Frame) -> Any:
        # Dispatch ordered by dynamic frequency (BinOp/VarRef/IntLit dominate
        # real workloads); variable lookup is inlined on the scalar fast path.
        kind = type(expr)
        if kind is BinOp:
            op = expr.op
            if op == "&&":
                left = self._eval(expr.left, frame)
                self._charge(expr.line, _ARITH)
                if not left:
                    return 0
                return 1 if self._eval(expr.right, frame) else 0
            if op == "||":
                left = self._eval(expr.left, frame)
                self._charge(expr.line, _ARITH)
                if left:
                    return 1
                return 1 if self._eval(expr.right, frame) else 0
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            self._charge(expr.line, _COMPARE if op in _CMP_OPS else _ARITH)
            return self._apply_binop(op, left, right, expr.line)
        if kind is VarRef:
            name = expr.name
            slot = frame.vars.get(name)
            if slot is None:
                slot = self.globals.get(name)
                if slot is None:
                    raise InterpreterError(
                        f"use of undeclared variable {name!r}", line=expr.line
                    )
            if type(slot) is not ScalarCell:
                raise InterpreterError(
                    f"array {name!r} used as a scalar", line=expr.line
                )
            if self.sink is not None:
                self._events.append((EV_READ, slot.addr, expr._sid))
            self._charge(expr.line, _LOAD)
            return slot.value
        if kind is IntLit:
            return expr.value
        if kind is ArrayRef:
            slot = self._lookup(expr.name, frame, expr.line)
            if not isinstance(slot, ArrayValue):
                raise InterpreterError(f"{expr.name!r} is not an array", line=expr.line)
            indices = [int(self._eval(ix, frame)) for ix in expr.indices]
            self._charge(expr.line, _INDEX * len(indices))
            flat = slot.flat_index(indices, line=expr.line)
            if self.sink is not None:
                self._events.append(
                    (EV_READ, slot.base + flat, expr._sid)
                )
            self._charge(expr.line, _LOAD)
            return slot.data[flat]
        if kind is FloatLit:
            return expr.value
        if kind is UnaryOp:
            value = self._eval(expr.operand, frame)
            self._charge(expr.line, _UNARY)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if value else 1
            raise InterpreterError(f"unknown unary operator {expr.op!r}", line=expr.line)
        if kind is Call:
            return self._call(expr, frame)
        raise InterpreterError(f"unknown expression {expr!r}", line=getattr(expr, "line", None))

    @staticmethod
    def _apply_binop(op: str, left: Any, right: Any, line: int) -> Any:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return _c_int_div(left, right, line)
            if right == 0:
                raise InterpreterError("float division by zero", line=line)
            return left / right
        if op == "%":
            if isinstance(left, int) and isinstance(right, int):
                return _c_int_mod(left, right, line)
            raise InterpreterError("% requires integer operands", line=line)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise InterpreterError(f"unknown operator {op!r}", line=line)


def run_program(
    program: Program,
    entry: str,
    args: Sequence[Any] = (),
    sink: Sink | None = None,
    max_cost: int = 500_000_000,
) -> RunResult:
    """Convenience wrapper: build an :class:`Interpreter` and run *entry*."""
    return Interpreter(program, sink=sink, max_cost=max_cost).run(entry, args)
