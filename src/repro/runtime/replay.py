"""Reordered-execution validation of loop classifications.

A loop is do-all exactly when its iterations can run in any order.  The
profiler *infers* this from dependences; this module *checks* it
empirically: re-execute the program with one loop's iterations permuted
(reversed, shuffled, or block-interleaved as a parallel chunk schedule
would) and compare all observable outputs against the serial run.

This is the dynamic counterpart of the paper's validation-by-manual-
parallelization: if a loop the detector called do-all changes the
program's result under reordering, the classification was wrong (the tool
has a bug or the dependence coverage was insufficient for this input) —
the test suite uses this as an oracle over every registry benchmark.

Only *canonical* loops can be replayed: ``for (i = start; i <
bound; i += step)`` with a loop-invariant bound and step.  The replayer
evaluates the induction sequence once, then runs the body per value in the
requested order.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

import numpy as np

from repro.errors import InterpreterError, ReproError
from repro.lang.ast_nodes import Assign, For, IntLit, Program, VarDecl, VarLV
from repro.runtime import costs
from repro.runtime.interpreter import Interpreter, RunResult, _BreakSignal, _ContinueSignal
from repro.runtime.values import ScalarCell


class ReplayError(ReproError):
    """The requested loop cannot be replayed out of order."""


def _canonical_parts(loop: For):
    """(induction name, start expr, cond op, bound expr, step const)."""
    if isinstance(loop.init, VarDecl):
        name = loop.init.name
        start = loop.init.init
    elif isinstance(loop.init, Assign) and isinstance(loop.init.target, VarLV):
        name = loop.init.target.name
        start = loop.init.value
    else:
        raise ReplayError("loop lacks a canonical init clause")
    cond = loop.cond
    from repro.lang.ast_nodes import BinOp, VarRef

    if (
        not isinstance(cond, BinOp)
        or cond.op not in ("<", "<=", ">", ">=")
        or not isinstance(cond.left, VarRef)
        or cond.left.name != name
    ):
        raise ReplayError("loop condition is not a canonical bound test")
    step = loop.step
    if (
        not isinstance(step, Assign)
        or not isinstance(step.target, VarLV)
        or step.target.name != name
        or step.op not in ("+=", "-=")
        or not isinstance(step.value, IntLit)
    ):
        raise ReplayError("loop step is not a constant increment")
    delta = step.value.value if step.op == "+=" else -step.value.value
    if delta == 0:
        raise ReplayError("zero step")
    return name, start, cond.op, cond.right, delta


class ReplayInterpreter(Interpreter):
    """Interpreter that executes one chosen loop in a permuted order."""

    def __init__(
        self,
        program: Program,
        target_region: int,
        order: str = "reverse",
        seed: int = 0,
        chunks: int = 4,
        max_cost: int = 500_000_000,
    ) -> None:
        super().__init__(program, sink=None, max_cost=max_cost)
        region = program.regions.get(target_region)
        if region is None or region.kind != "loop":
            raise ReplayError(f"region {target_region} is not a loop")
        if not isinstance(region.node, For):
            raise ReplayError("only canonical for-loops can be replayed")
        _canonical_parts(region.node)  # fail fast on non-canonical shapes
        self.target_region = target_region
        self.order = order
        self.seed = seed
        self.chunks = chunks

    def _permute(self, values: list[int]) -> list[int]:
        if self.order == "reverse":
            return list(reversed(values))
        if self.order == "shuffle":
            rng = random.Random(self.seed)
            shuffled = list(values)
            rng.shuffle(shuffled)
            return shuffled
        if self.order == "interleave":
            # the order a cyclic P-thread schedule would interleave work in
            p = max(1, min(self.chunks, len(values)))
            out: list[int] = []
            for lane in range(p):
                out.extend(values[lane::p])
            return out
        raise ReplayError(f"unknown order {self.order!r}")

    def _exec_for(self, loop: For, frame) -> None:
        if loop.region_id != self.target_region:
            super()._exec_for(loop, frame)
            return
        name, start_expr, op, bound_expr, delta = _canonical_parts(loop)
        start = int(self._eval(start_expr, frame))
        bound = int(self._eval(bound_expr, frame))

        values: list[int] = []
        i = start
        while (
            (op == "<" and i < bound)
            or (op == "<=" and i <= bound)
            or (op == ">" and i > bound)
            or (op == ">=" and i >= bound)
        ):
            values.append(i)
            i += delta
            if len(values) > 10_000_000:  # pragma: no cover - runaway guard
                raise ReplayError("loop bound does not converge")

        # bind the induction variable exactly as the init clause would
        if isinstance(loop.init, VarDecl):
            self._exec_decl(loop.init, frame)
            cell = frame.vars[name]
        else:
            slot = self._lookup(name, frame, loop.line)
            cell = slot
        if not isinstance(cell, ScalarCell):
            raise ReplayError("induction variable is not a scalar")

        for value in self._permute(values):
            cell.value = value
            try:
                self._exec_body(loop.body, frame)
            except _ContinueSignal:
                continue
            except _BreakSignal:
                raise ReplayError(
                    "loop breaks early: iteration set is data-dependent"
                )
        # leave the induction variable past the end, like the serial loop
        if values:
            cell.value = values[-1] + delta
        else:
            cell.value = start
        self._charge(loop.line, costs.BRANCH)


def run_with_loop_order(
    program: Program,
    entry: str,
    args: Sequence[Any],
    loop_region: int,
    order: str = "reverse",
    seed: int = 0,
    chunks: int = 4,
) -> RunResult:
    """Run ``entry(*args)`` with *loop_region*'s iterations permuted."""
    interp = ReplayInterpreter(
        program, target_region=loop_region, order=order, seed=seed, chunks=chunks
    )
    return interp.run(entry, args)


def results_equal(a: RunResult, b: RunResult, atol: float = 1e-9) -> bool:
    """Observable equality of two runs: return value, arrays, ref scalars,
    and globals."""

    def close(x, y) -> bool:
        if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
            return np.allclose(x, y, atol=atol, equal_nan=True)
        if isinstance(x, float) or isinstance(y, float):
            return abs(float(x) - float(y)) <= atol * max(1.0, abs(float(x)))
        return x == y

    if (a.value is None) != (b.value is None):
        return False
    if a.value is not None and not close(a.value, b.value):
        return False
    for name in a.arrays:
        if not close(a.arrays[name], b.arrays[name]):
            return False
    for name in a.scalars:
        if not close(a.scalars[name], b.scalars[name]):
            return False
    for name in a.globals:
        if not close(a.globals[name], b.globals[name]):
            return False
    return True


def validate_doall(
    program: Program,
    entry: str,
    args: Sequence[Any],
    loop_region: int,
    orders: Sequence[str] = ("reverse", "shuffle", "interleave"),
    atol: float = 1e-9,
) -> bool:
    """Empirically check a do-all claim: the program's observable outputs
    must be identical under every reordering of the loop's iterations.

    Floating-point reductions are *not* reorder-stable in general, which is
    exactly why they are classified separately from do-all.
    """
    serial = Interpreter(program).run(entry, args)
    for order in orders:
        permuted = run_with_loop_order(
            program, entry, args, loop_region, order=order
        )
        if not results_equal(serial, permuted, atol=atol):
            return False
    return True
