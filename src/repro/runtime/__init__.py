"""Instrumented execution substrate for MiniC programs.

This package plays the role of the paper's LLVM instrumentation pass plus the
machine the profiled application ran on: a tree-walking interpreter that
executes MiniC and reports every memory access, control-region entry/exit,
loop iteration, and an LLVM-IR-like instruction cost to an attached
:class:`~repro.runtime.events.Sink`.
"""

from repro.runtime.interpreter import Interpreter, RunResult, run_program
from repro.runtime.events import Sink, MultiSink
from repro.runtime.values import ArrayValue
from repro.runtime.replay import (
    ReplayError,
    results_equal,
    run_with_loop_order,
    validate_doall,
)

__all__ = [
    "Interpreter",
    "RunResult",
    "run_program",
    "Sink",
    "MultiSink",
    "ArrayValue",
    "ReplayError",
    "results_equal",
    "run_with_loop_order",
    "validate_doall",
]
