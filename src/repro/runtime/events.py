"""Sink protocol: how the interpreter reports dynamic events.

The interpreter pushes events; sinks pull no state.  A sink receives:

* ``enter_function(region_id, activation_id, call_line)`` /
  ``exit_function(region_id, activation_id)``
* ``enter_loop(region_id, activation_id, line)`` /
  ``exit_loop(region_id, activation_id, trip_count)``
* ``loop_iteration(region_id, index)`` — *index* is the 0-based iteration
  about to execute
* ``on_stmt(line)`` — a statement at the current region level starts
* ``on_read(addr, var, line)`` / ``on_write(addr, var, line)``
* ``on_cost(line, amount)`` — IR-instruction cost accrued at *line* since
  the last flush (flushed per statement and around region transitions)

``Sink`` provides no-op defaults so concrete sinks override only what they
need; :class:`MultiSink` fans out to several sinks in order.
"""

from __future__ import annotations


class Sink:
    """Base sink with no-op handlers."""

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        pass

    def exit_function(self, region_id: int, activation_id: int) -> None:
        pass

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        pass

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        pass

    def loop_iteration(self, region_id: int, index: int) -> None:
        pass

    def on_stmt(self, line: int) -> None:
        pass

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        """*element* is True for array-element accesses (memory traffic that
        reaches DRAM); scalars are register/stack-resident."""

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        pass

    def on_cost(self, line: int, amount: int) -> None:
        pass

    def finish(self) -> None:
        """Called once when the profiled run completes."""


class MultiSink(Sink):
    """Fan-out sink delivering every event to each child in order."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        for s in self.sinks:
            s.enter_function(region_id, activation_id, call_line)

    def exit_function(self, region_id: int, activation_id: int) -> None:
        for s in self.sinks:
            s.exit_function(region_id, activation_id)

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        for s in self.sinks:
            s.enter_loop(region_id, activation_id, line)

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        for s in self.sinks:
            s.exit_loop(region_id, activation_id, trip_count)

    def loop_iteration(self, region_id: int, index: int) -> None:
        for s in self.sinks:
            s.loop_iteration(region_id, index)

    def on_stmt(self, line: int) -> None:
        for s in self.sinks:
            s.on_stmt(line)

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        for s in self.sinks:
            s.on_read(addr, var, line, element)

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        for s in self.sinks:
            s.on_write(addr, var, line, element)

    def on_cost(self, line: int, amount: int) -> None:
        for s in self.sinks:
            s.on_cost(line, amount)

    def finish(self) -> None:
        for s in self.sinks:
            s.finish()
