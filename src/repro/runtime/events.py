"""Sink protocol: how the interpreter reports dynamic events.

The interpreter pushes events; sinks pull no state.  A sink receives:

* ``enter_function(region_id, activation_id, call_line)`` /
  ``exit_function(region_id, activation_id)``
* ``enter_loop(region_id, activation_id, line)`` /
  ``exit_loop(region_id, activation_id, trip_count)``
* ``loop_iteration(region_id, index)`` — *index* is the 0-based iteration
  about to execute
* ``on_stmt(line)`` — a statement at the current region level starts
* ``on_read(addr, var, line)`` / ``on_write(addr, var, line)``
* ``on_cost(line, amount)`` — IR-instruction cost accrued at *line* since
  the last flush (flushed per statement and around region transitions)

``Sink`` provides no-op defaults so concrete sinks override only what they
need; :class:`MultiSink` fans out to several sinks in order.

Batched dispatch
----------------
Delivering one Python method call per event is the profiling pipeline's
throughput ceiling, so the interpreter does not call the per-event handlers
directly: it appends compact tagged tuples to a preallocated buffer and
flushes the buffer in chunks via :meth:`Sink.consume_batch`.  The base
implementation replays a batch through the per-event handlers, so any
existing sink keeps working unchanged; hot sinks (the profiler) override
``consume_batch`` with a loop that hoists state into locals and processes
events inline.  Event ordering within and across batches is exactly the
per-event call order.

Memory-access events do not carry ``(var, line, element)`` strings and flags
per event: the execution engines announce the program's static
:class:`~repro.runtime.sites.SiteTable` once via :meth:`Sink.set_site_table`,
and each access event then carries only its compact site id (see
``repro.runtime.sites``).  The base ``consume_batch`` resolves sids back to
``(var, line, element)`` before replaying through the per-event handlers, so
sinks written against the per-event API never see a sid.

Batch event layouts (first element is the tag)::

    (EV_READ, addr, sid)
    (EV_WRITE, addr, sid)
    (EV_STMT, line)
    (EV_COST, line, amount)
    (EV_ENTER_FUNC, region_id, activation_id, call_line)
    (EV_EXIT_FUNC, region_id, activation_id)
    (EV_ENTER_LOOP, region_id, activation_id, line)
    (EV_EXIT_LOOP, region_id, activation_id, trip_count)
    (EV_ITER, region_id, index)
"""

from __future__ import annotations

from typing import Sequence

# Event tags, ordered roughly by frequency on real workloads.
EV_READ = 0
EV_WRITE = 1
EV_COST = 2
EV_STMT = 3
EV_ITER = 4
EV_ENTER_FUNC = 5
EV_EXIT_FUNC = 6
EV_ENTER_LOOP = 7
EV_EXIT_LOOP = 8


class Sink:
    """Base sink with no-op handlers."""

    __slots__ = ("_site_table",)

    def set_site_table(self, table) -> None:
        """Announce the program's static access-site table.

        Called once by an execution engine before any events flow.  The base
        class keeps the table so :meth:`consume_batch` can resolve the sids
        in access events for per-event handlers; sinks with their own batch
        loop typically hoist the table's arrays instead.
        """
        self._site_table = table

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        pass

    def exit_function(self, region_id: int, activation_id: int) -> None:
        pass

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        pass

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        pass

    def loop_iteration(self, region_id: int, index: int) -> None:
        pass

    def on_stmt(self, line: int) -> None:
        pass

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        """*element* is True for array-element accesses (memory traffic that
        reaches DRAM); scalars are register/stack-resident."""

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        pass

    def on_cost(self, line: int, amount: int) -> None:
        pass

    def finish(self) -> None:
        """Called once when the profiled run completes."""

    def consume_batch(self, events: Sequence[tuple]) -> None:
        """Deliver a chunk of tagged event tuples in order.

        The default implementation replays the batch through the per-event
        handlers, so sinks that only override those still see every event.
        """
        on_read = self.on_read
        on_write = self.on_write
        on_cost = self.on_cost
        on_stmt = self.on_stmt
        table = getattr(self, "_site_table", None)
        s_lines = table.lines if table is not None else None
        s_vars = table.vars if table is not None else None
        s_elems = table.elements if table is not None else None
        for ev in events:
            tag = ev[0]
            if tag == EV_READ:
                sid = ev[2]
                on_read(ev[1], s_vars[sid], s_lines[sid], s_elems[sid])
            elif tag == EV_WRITE:
                sid = ev[2]
                on_write(ev[1], s_vars[sid], s_lines[sid], s_elems[sid])
            elif tag == EV_COST:
                on_cost(ev[1], ev[2])
            elif tag == EV_STMT:
                on_stmt(ev[1])
            elif tag == EV_ITER:
                self.loop_iteration(ev[1], ev[2])
            elif tag == EV_ENTER_FUNC:
                self.enter_function(ev[1], ev[2], ev[3])
            elif tag == EV_EXIT_FUNC:
                self.exit_function(ev[1], ev[2])
            elif tag == EV_ENTER_LOOP:
                self.enter_loop(ev[1], ev[2], ev[3])
            elif tag == EV_EXIT_LOOP:
                self.exit_loop(ev[1], ev[2], ev[3])
            else:  # pragma: no cover - exhaustiveness guard
                raise ValueError(f"unknown event tag {tag!r}")


class MultiSink(Sink):
    """Fan-out sink delivering every event to each child in order."""

    __slots__ = ("sinks",)

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def set_site_table(self, table) -> None:
        self._site_table = table
        for s in self.sinks:
            s.set_site_table(table)

    def enter_function(self, region_id: int, activation_id: int, call_line: int) -> None:
        for s in self.sinks:
            s.enter_function(region_id, activation_id, call_line)

    def exit_function(self, region_id: int, activation_id: int) -> None:
        for s in self.sinks:
            s.exit_function(region_id, activation_id)

    def enter_loop(self, region_id: int, activation_id: int, line: int) -> None:
        for s in self.sinks:
            s.enter_loop(region_id, activation_id, line)

    def exit_loop(self, region_id: int, activation_id: int, trip_count: int) -> None:
        for s in self.sinks:
            s.exit_loop(region_id, activation_id, trip_count)

    def loop_iteration(self, region_id: int, index: int) -> None:
        for s in self.sinks:
            s.loop_iteration(region_id, index)

    def on_stmt(self, line: int) -> None:
        for s in self.sinks:
            s.on_stmt(line)

    def on_read(self, addr: int, var: str, line: int, element: bool = False) -> None:
        for s in self.sinks:
            s.on_read(addr, var, line, element)

    def on_write(self, addr: int, var: str, line: int, element: bool = False) -> None:
        for s in self.sinks:
            s.on_write(addr, var, line, element)

    def on_cost(self, line: int, amount: int) -> None:
        for s in self.sinks:
            s.on_cost(line, amount)

    def finish(self) -> None:
        for s in self.sinks:
            s.finish()

    def consume_batch(self, events: Sequence[tuple]) -> None:
        # Deliver whole chunks to each child so hot children (profilers)
        # keep their batched fast path even behind a fan-out.
        for s in self.sinks:
            s.consume_batch(events)
