"""Built-in functions callable from MiniC code.

Intrinsics model the C math library calls that appear in the paper's
benchmarks (``sqrt`` in correlation/kmeans, ``fabs`` in ludcmp, ...).  Each
intrinsic has a fixed cost in IR-instruction units, charged by the
interpreter on top of argument-evaluation cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class IntrinsicSpec:
    """A built-in function: fixed *arity* (``None`` = variadic) and *cost*."""

    name: str
    arity: int | None
    cost: int
    fn: Callable


def _c_div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    return a / b


def _imod(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return -r if a < 0 else r


INTRINSICS: dict[str, IntrinsicSpec] = {
    spec.name: spec
    for spec in (
        IntrinsicSpec("sqrt", 1, 8, math.sqrt),
        IntrinsicSpec("fabs", 1, 2, abs),
        IntrinsicSpec("abs", 1, 2, abs),
        IntrinsicSpec("exp", 1, 10, math.exp),
        IntrinsicSpec("log", 1, 10, math.log),
        IntrinsicSpec("sin", 1, 10, math.sin),
        IntrinsicSpec("cos", 1, 10, math.cos),
        IntrinsicSpec("floor", 1, 2, lambda x: float(math.floor(x))),
        IntrinsicSpec("ceil", 1, 2, lambda x: float(math.ceil(x))),
        IntrinsicSpec("pow", 2, 12, lambda x, y: float(x) ** float(y)),
        IntrinsicSpec("min", 2, 2, min),
        IntrinsicSpec("max", 2, 2, max),
        IntrinsicSpec("toint", 1, 1, lambda x: int(x)),
        IntrinsicSpec("tofloat", 1, 1, lambda x: float(x)),
    )
}
