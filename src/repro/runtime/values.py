"""Runtime value model: scalar cells and addressable arrays.

Every scalar variable binding owns a :class:`ScalarCell` with a unique
address; by-reference parameters share the caller's cell, so the dynamic
dependence profiler naturally sees aliasing through reference parameters —
this is what lets reduction detection work across function boundaries
(Listing 9, ``sum_module``).

Arrays occupy a contiguous address range ``[base, base + size)``; the element
``A[i][j]`` lives at ``base + i*ncols + j`` (row-major), matching how the
paper's profiler identifies memory locations by address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import InterpreterError


class AddressSpace:
    """Monotonic address allocator shared by one interpreter run."""

    def __init__(self) -> None:
        self._next = 0x1000

    def alloc(self, size: int) -> int:
        base = self._next
        self._next += size
        return base


@dataclass(slots=True)
class ScalarCell:
    """A scalar variable's storage: one address, one value."""

    addr: int
    value: int | float
    name: str


class ArrayValue:
    """A dense row-major array of ``int`` or ``float`` elements."""

    __slots__ = ("dtype", "shape", "data", "base", "name", "_strides")

    def __init__(
        self,
        dtype: str,
        shape: Sequence[int],
        space: AddressSpace,
        name: str = "",
        fill: int | float | None = None,
    ) -> None:
        if dtype not in ("int", "float"):
            raise InterpreterError(f"bad array dtype {dtype!r}")
        self.dtype = dtype
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise InterpreterError(f"non-positive array extent in {name!r}: {self.shape}")
        size = 1
        for s in self.shape:
            size *= s
        if fill is None:
            fill = 0 if dtype == "int" else 0.0
        self.data: list[int | float] = [fill] * size
        self.base = space.alloc(size)
        self.name = name
        strides = []
        acc = 1
        for s in reversed(self.shape):
            strides.append(acc)
            acc *= s
        self._strides = tuple(reversed(strides))

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def flat_index(self, indices: Sequence[int], line: int = 0) -> int:
        """Row-major flat offset of *indices*, bounds-checked."""
        if len(indices) != len(self.shape):
            raise InterpreterError(
                f"array {self.name!r} expects {len(self.shape)} indices, got {len(indices)}",
                line=line,
            )
        flat = 0
        for ix, extent, stride in zip(indices, self.shape, self._strides):
            ix = int(ix)
            if ix < 0 or ix >= extent:
                raise InterpreterError(
                    f"index {ix} out of bounds for extent {extent} of array {self.name!r}",
                    line=line,
                )
            flat += ix * stride
        return flat

    def addr_of(self, flat: int) -> int:
        return self.base + flat

    def get(self, flat: int) -> int | float:
        return self.data[flat]

    def set(self, flat: int, value: int | float) -> None:
        self.data[flat] = int(value) if self.dtype == "int" else float(value)

    # -- conversion helpers ------------------------------------------------

    @classmethod
    def from_numpy(
        cls, arr: np.ndarray, space: AddressSpace, name: str = ""
    ) -> "ArrayValue":
        dtype = "int" if np.issubdtype(arr.dtype, np.integer) else "float"
        out = cls(dtype, arr.shape, space, name=name)
        flat = arr.ravel(order="C")
        if dtype == "int":
            out.data = [int(v) for v in flat]
        else:
            out.data = [float(v) for v in flat]
        return out

    @classmethod
    def from_list(
        cls, values: Iterable, dtype: str, space: AddressSpace, name: str = ""
    ) -> "ArrayValue":
        arr = np.asarray(list(values), dtype=np.int64 if dtype == "int" else np.float64)
        return cls.from_numpy(arr, space, name=name)

    def to_numpy(self) -> np.ndarray:
        dtype = np.int64 if self.dtype == "int" else np.float64
        return np.asarray(self.data, dtype=dtype).reshape(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayValue({self.name!r}, {self.dtype}, shape={self.shape}, base={self.base:#x})"
