"""Static access-site table for MiniC programs.

Every memory-access event the interpreter can emit originates at one of a
small, statically known set of AST positions — a ``VarRef`` read, an
``ArrayRef`` element read, the read/write halves of an assignment, a scalar
declaration's initializing store, or a by-value parameter store.  The
profiler only ever needs the ``(line, var, element)`` triple of an access,
never the expression itself, so this module indexes those positions once per
program into a :class:`SiteTable` and tags each AST node with its site id
(``_sid``).  The interpreter and the closure compiler then emit compact
``(tag, addr, sid)`` event tuples instead of re-packing the same strings and
flags into every event, and the profiler's dependence summarizer keys its
per-site stride-run descriptors by sid.

The table also answers one static question the profiler exploits:
:attr:`SiteTable.alias_free`.  MiniC has exactly one aliasing mechanism —
array and ``&``-reference parameters share the caller's storage.  If every
such argument is passed under the *same name* as the parameter that receives
it (``f(A)`` into ``float A[]``), then every address in the program is only
ever accessed under a single variable name, and the profiler's per-iteration
first-touch bookkeeping can skip work for variables whose ``read_first``
classification is already decided (see ``repro.profiling.profiler``).
Programs that rename storage across a call boundary simply run with the
skip disabled — the analysis is a pure go-faster flag, never a semantics
change.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    Call,
    Program,
    VarDecl,
    VarRef,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)


class SiteTable:
    """Parallel arrays describing each static access site.

    ``lines[sid]``, ``vars[sid]``, ``writes[sid]`` and ``elements[sid]``
    give the source line, variable name, direction, and array-element flag
    of site ``sid``.  Sites past ``n_static`` are *pseudo sites* allocated
    at runtime for events delivered through the legacy per-event ``Sink``
    API (which carries ``(line, var, element)`` instead of a sid).
    """

    __slots__ = ("lines", "vars", "writes", "elements", "alias_free", "n_static", "_pseudo")

    def __init__(self) -> None:
        self.lines: list[int] = []
        self.vars: list[str] = []
        self.writes: list[bool] = []
        self.elements: list[bool] = []
        self.alias_free = True
        self.n_static = 0
        self._pseudo: dict[tuple[int, str, bool, bool], int] = {}

    def _add(self, line: int, var: str, write: bool, element: bool) -> int:
        sid = len(self.lines)
        self.lines.append(line)
        self.vars.append(var)
        self.writes.append(write)
        self.elements.append(element)
        return sid

    def pseudo_sid(self, line: int, var: str, write: bool, element: bool) -> int:
        """A (cached) site id for an event that arrived without one.

        Pseudo sites make the per-event ``Sink`` path and hand-driven sinks
        work against the same bookkeeping as the batched sid path.
        """
        key = (line, var, write, element)
        sid = self._pseudo.get(key)
        if sid is None:
            sid = self._add(line, var, write, element)
            self._pseudo[key] = sid
        return sid


def _check_alias_freedom(program: Program, table: SiteTable) -> None:
    """``alias_free`` iff shared storage never changes name across a call.

    By-value scalars copy, and every declaration allocates fresh storage, so
    the only way one address gets two names is an array or ``&``-reference
    argument whose name differs from the receiving parameter's.
    """
    funcs = {f.name: f for f in program.functions}
    for func in program.functions:
        for stmt in walk_stmts(func.body):
            for root in stmt_exprs(stmt):
                for expr in walk_exprs(root):
                    if type(expr) is not Call:
                        continue
                    callee = funcs.get(expr.name)
                    if callee is None:
                        continue  # intrinsic or unknown: no shared storage
                    if len(expr.args) != len(callee.params):
                        table.alias_free = False
                        return
                    for param, arg in zip(callee.params, expr.args):
                        if not (param.is_array or param.by_ref):
                            continue
                        if type(arg) is not VarRef or arg.name != param.name:
                            table.alias_free = False
                            return


def build_site_table(program: Program) -> SiteTable:
    """Index every static access site and tag the AST nodes with sids."""
    table = SiteTable()
    for func in program.functions:
        for param in func.params:
            if not (param.is_array or param.by_ref):
                # by-value parameter store, attributed to the signature line
                param._sid = table._add(func.line, param.name, True, False)
        for stmt in walk_stmts(func.body):
            kind = type(stmt)
            if kind is VarDecl:
                if stmt.init is not None and not stmt.dims:
                    stmt._sid = table._add(stmt.line, stmt.name, True, False)
            elif kind is Assign:
                element = type(stmt.target) is ArrayLV
                # the read half only fires for compound ops, but a sid is
                # cheap and the compiler picks the variant it needs
                stmt._sid_read = table._add(stmt.line, stmt.target.name, False, element)
                stmt._sid_write = table._add(stmt.line, stmt.target.name, True, element)
            for root in stmt_exprs(stmt):
                for expr in walk_exprs(root):
                    ekind = type(expr)
                    if ekind is VarRef:
                        expr._sid = table._add(expr.line, expr.name, False, False)
                    elif ekind is ArrayRef:
                        expr._sid = table._add(expr.line, expr.name, False, True)
    table.n_static = len(table.lines)
    _check_alias_freedom(program, table)
    return table


def get_site_table(program: Program) -> SiteTable:
    """The program's :class:`SiteTable`, built once and cached on it."""
    table = getattr(program, "_site_table", None)
    if table is None:
        table = build_site_table(program)
        program._site_table = table
    return table
