"""Process-parallel registry analysis with per-program fault isolation.

Table III re-runs the whole interpret → profile → detect → simulate stack
for every registry program; the runs are completely independent, so this
module fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Guarantees:

* **Deterministic ordering** — results come back in the order the names
  were given (registry order by default), independent of worker completion
  order: futures are submitted individually and reassembled by index.
* **Parallel ≡ serial** — each worker parses its program from source and
  calls the analysis engine directly, bypassing every in-process cache a
  forked child might inherit; the analysis itself is deterministic, and
  :class:`BenchmarkOutcome` carries the canonical profile digest so equality
  is checkable down to the serialized profile bytes.  The guarantee holds
  for every program that succeeds on both paths.
* **Fault isolation** — a worker that raises, times out, or dies yields a
  structured :class:`FailedOutcome` record (exception type, message,
  traceback summary, attempt count) in that program's slot instead of
  aborting the sweep.  Failures are retried up to ``retries`` times with
  exponential backoff; a broken pool (e.g. an OOM-killed child taking the
  executor down with :class:`BrokenProcessPool`) degrades to in-process
  serial execution for every program still unresolved, so completed work
  is never forfeited.
* **Compact results** — workers return plain-data summaries (labels,
  pipeline coefficients, simulated speedups, digests, evidence counts), not
  multi-megabyte :class:`AnalysisResult` objects, keeping pickling off the
  critical path.
* **Versioned records** — outcomes and failures serialize through
  ``to_dict``/``from_dict`` stamped with the analysis ``schema_version``
  (see :mod:`repro.patterns.schema`), the same document convention the
  CLI's ``--json`` modes emit; :func:`outcome_from_dict` dispatches on the
  ``"failed"`` marker.

An optional shared profile cache directory lets workers reuse on-disk
profiles (writes are atomic, so concurrent workers are safe).
"""

from __future__ import annotations

import functools
import os
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.logs import JsonLogger

#: Exception message length kept in failure records.
_MESSAGE_LIMIT = 300

#: Traceback frames kept in failure records (innermost last).
_TRACEBACK_FRAMES = 3


class AnalysisTimeout(RuntimeError):
    """One program's analysis exceeded the per-program timeout."""


@dataclass(frozen=True)
class BenchmarkOutcome:
    """Picklable summary of one benchmark's end-to-end analysis."""

    name: str
    suite: str
    loc: int
    label: str
    primary_share: float
    best_speedup: float
    best_threads: int
    #: one (loop_x, loop_y, a, b, efficiency) tuple per detected pipeline
    pipelines: tuple[tuple[int, int, float, float, float], ...]
    #: sha256 of the canonical profile JSON — byte-level profile identity
    profile_digest: str
    #: accepted/rejected candidate counts from the detection evidence trace
    evidence_accepted: int = 0
    evidence_rejected: int = 0

    #: discriminator shared with :class:`FailedOutcome`
    ok = True

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-compatible record (the analysis schema version)."""
        from repro.patterns.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "suite": self.suite,
            "loc": self.loc,
            "label": self.label,
            "primary_share": self.primary_share,
            "best_speedup": self.best_speedup,
            "best_threads": self.best_threads,
            "pipelines": [list(p) for p in self.pipelines],
            "profile_digest": self.profile_digest,
            "evidence_accepted": self.evidence_accepted,
            "evidence_rejected": self.evidence_rejected,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchmarkOutcome":
        """Rebuild an outcome from :meth:`to_dict`; rejects other versions."""
        from repro.patterns.schema import SCHEMA_VERSION

        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported outcome schema version {version!r}")
        if data.get("failed"):
            raise ValueError("failure record passed to BenchmarkOutcome.from_dict")
        return cls(
            name=data["name"],
            suite=data["suite"],
            loc=data["loc"],
            label=data["label"],
            primary_share=data["primary_share"],
            best_speedup=data["best_speedup"],
            best_threads=data["best_threads"],
            pipelines=tuple(tuple(p) for p in data["pipelines"]),
            profile_digest=data["profile_digest"],
            evidence_accepted=data.get("evidence_accepted", 0),
            evidence_rejected=data.get("evidence_rejected", 0),
        )


@dataclass(frozen=True)
class FailedOutcome:
    """Structured record of one program whose analysis did not complete.

    Fills the program's slot in :func:`analyze_registry` results so a
    partial sweep still reports every requested name exactly once.  The
    record is an *extension* of the outcome document convention: it carries
    the same ``schema_version`` plus a ``"failed": true`` marker, so
    ``table3 --json`` consumers can mix the two row kinds safely (unknown
    keys are already tolerated by the schema's loaders).
    """

    name: str
    #: exception class name (``"AnalysisTimeout"`` for per-program timeouts)
    error_type: str
    message: str
    #: innermost frames, rendered ``file:line in func``; parallel failures
    #: quote the worker-side traceback the executor forwarded
    traceback_summary: str
    #: total runs attempted (1 + retries consumed)
    attempts: int

    #: discriminator shared with :class:`BenchmarkOutcome`
    ok = False

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-compatible failure record."""
        from repro.patterns.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "failed": True,
            "name": self.name,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_summary": self.traceback_summary,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailedOutcome":
        """Rebuild a failure record from :meth:`to_dict`."""
        from repro.patterns.schema import SCHEMA_VERSION

        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported outcome schema version {version!r}")
        if not data.get("failed"):
            raise ValueError("success record passed to FailedOutcome.from_dict")
        return cls(
            name=data["name"],
            error_type=data["error_type"],
            message=data["message"],
            traceback_summary=data["traceback_summary"],
            attempts=data["attempts"],
        )


def outcome_from_dict(data: dict[str, Any]) -> "BenchmarkOutcome | FailedOutcome":
    """Decode either record kind, dispatching on the ``"failed"`` marker."""
    if data.get("failed"):
        return FailedOutcome.from_dict(data)
    return BenchmarkOutcome.from_dict(data)


def _summarize_traceback(exc: BaseException) -> str:
    """Condense *exc*'s traceback to its innermost frames.

    Exceptions re-raised from a worker process carry the remote traceback
    only as a ``_RemoteTraceback`` cause string; prefer its ``File`` lines
    so the summary points into the worker's code, not the executor's.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        lines = [ln.strip() for ln in str(cause).splitlines() if ln.strip().startswith("File ")]
        if lines:
            return " <- ".join(reversed(lines[-_TRACEBACK_FRAMES:]))
    frames = traceback.extract_tb(exc.__traceback__)[-_TRACEBACK_FRAMES:]
    return " <- ".join(
        f"{os.path.basename(f.filename)}:{f.lineno} in {f.name}"
        for f in reversed(frames)
    ) or "<no traceback>"


def failure_record(name: str, exc: BaseException, attempts: int) -> FailedOutcome:
    return FailedOutcome(
        name=name,
        error_type=type(exc).__name__,
        message=str(exc)[:_MESSAGE_LIMIT],
        traceback_summary=_summarize_traceback(exc),
        attempts=attempts,
    )


def outcome_from_analysis(spec, result, sim_outcome) -> BenchmarkOutcome:
    """Condense one benchmark's analysis + simulation into an outcome."""
    from repro.patterns.engine import primary_pattern_share, summarize_patterns
    from repro.profiling.serialize import profile_digest

    trace = result.trace
    return BenchmarkOutcome(
        name=spec.name,
        suite=spec.suite,
        loc=spec.loc,
        label=summarize_patterns(result),
        primary_share=primary_pattern_share(result),
        best_speedup=sim_outcome.best_speedup,
        best_threads=sim_outcome.best_threads,
        pipelines=tuple(
            (p.loop_x, p.loop_y, p.a, p.b, p.efficiency) for p in result.pipelines
        ),
        profile_digest=profile_digest(result.profile),
        evidence_accepted=len(trace.accepted()) if trace is not None else 0,
        evidence_rejected=len(trace.rejected()) if trace is not None else 0,
    )


def analyze_one(
    name: str, cache_dir: str | None = None, engine: str = "compiled"
) -> BenchmarkOutcome:
    """Analyze one registry benchmark from scratch; used as the pool worker.

    Deliberately avoids ``registry.analyze_benchmark`` (its ``lru_cache``
    would be inherited by forked workers and could mask real recomputation)
    and re-parses the program from its source text.  *engine* selects the
    execution engine for the instrumented runs; outcomes (including the
    profile digest) are identical across engines.
    """
    from repro.bench_programs.registry import get_benchmark
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.patterns.engine import analyze
    from repro.sim import plan_and_simulate

    spec = get_benchmark(name)
    program = parse_program(spec.source)
    validate_program(program)
    cache = None
    if cache_dir is not None:
        from repro.profiling.cache import ProfileCache

        cache = ProfileCache(root=cache_dir)
    result = analyze(
        program,
        spec.entry,
        spec.arg_sets(),
        hotspot_threshold=spec.hotspot_threshold,
        min_pairs=spec.min_pairs,
        cache=cache,
        engine=engine,
    )
    return outcome_from_analysis(spec, result, plan_and_simulate(result))


def call_with_timeout(
    analyze_fn: Callable[[str, str | None], BenchmarkOutcome],
    name: str,
    cache_dir: str | None,
    timeout: float | None,
) -> BenchmarkOutcome:
    """Run ``analyze_fn(name, cache_dir)``, bounded by a SIGALRM timer.

    The timer measures pure execution time (it starts only once the call is
    actually running — queue wait in a busy pool never counts) and fires as
    :class:`AnalysisTimeout`, which frees the worker slot for the next
    program.  Signals only work on the main thread of a process; off the
    main thread (or without SIGALRM) the call runs unbounded.
    """
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return analyze_fn(name, cache_dir)

    def _on_alarm(signum, frame):
        raise AnalysisTimeout(f"analysis of {name!r} exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return analyze_fn(name, cache_dir)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _pool_task(analyze_fn, name: str, cache_dir: str | None, timeout: float | None):
    """Top-level (picklable) worker entry: one program, timeout-bounded."""
    return call_with_timeout(analyze_fn, name, cache_dir, timeout)


def _backoff_delay(backoff: float, attempt: int) -> float:
    """Exponential backoff before re-running *attempt* (1-based)."""
    return backoff * (2 ** (attempt - 1))


def default_max_workers(n_tasks: int | None = None) -> int:
    """Process-pool sizing shared by the sweep and the service's
    ``process`` backend: the machine's CPU count, capped by the number of
    tasks when known, never below one."""
    workers = os.cpu_count() or 1
    if n_tasks is not None:
        workers = min(max(0, n_tasks), workers)
    return max(1, workers)


def run_one(
    name: str,
    cache_dir: str | None = None,
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    analyze_fn: Callable[[str, str | None], Any] = analyze_one,
    prior_attempts: int = 0,
    log: "JsonLogger | None" = None,
) -> "BenchmarkOutcome | FailedOutcome | Any":
    """Submit-one-program entry point with the sweep's fault semantics.

    Runs ``analyze_fn(name, cache_dir)`` under the same timeout / retry /
    failure-record policy :func:`analyze_registry` applies per program, but
    for a single submission — the building block the analysis service's
    executor and the serial sweep path share.  Never raises: after
    ``1 + retries`` attempts (counting *prior_attempts* already consumed,
    e.g. by a broken pool) the exhausted exception comes back as a
    structured :class:`FailedOutcome`.

    *log* is an optional :class:`repro.obs.logs.JsonLogger` (typically
    already bound to a job/correlation id by the caller); each retry and
    the final failure emit a structured record through it.
    """
    attempts = prior_attempts
    while True:
        attempts += 1
        try:
            return call_with_timeout(analyze_fn, name, cache_dir, timeout)
        except Exception as exc:
            if attempts <= retries:
                if log is not None:
                    log.warning(
                        "run.retry",
                        name=name,
                        attempt=attempts,
                        error_type=type(exc).__name__,
                        message=str(exc)[:_MESSAGE_LIMIT],
                    )
                time.sleep(_backoff_delay(backoff, attempts))
                continue
            record = failure_record(name, exc, attempts)
            if log is not None:
                log.error(
                    "run.failed",
                    name=name,
                    attempts=attempts,
                    error_type=record.error_type,
                    message=record.message,
                )
            return record


def _analyze_serial(
    names: Sequence[str],
    indices: Sequence[int],
    results: dict[int, "BenchmarkOutcome | FailedOutcome"],
    attempts: dict[int, int],
    cache_dir: str | None,
    analyze_fn,
    timeout: float | None,
    retries: int,
    backoff: float,
    fail_fast: bool,
) -> None:
    """Resolve *indices* in-process, honoring retry/timeout/fail-fast.

    Shared by the ``parallel=False`` path (all indices) and the broken-pool
    degradation path (whatever the pool left unresolved); attempts already
    consumed by the pool count against each program's retry budget.
    """
    for i in indices:
        results[i] = run_one(
            names[i],
            cache_dir,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            analyze_fn=analyze_fn,
            prior_attempts=attempts.get(i, 0),
        )
        if fail_fast and isinstance(results[i], FailedOutcome):
            return


def _analyze_parallel(
    names: Sequence[str],
    max_workers: int,
    cache_dir: str | None,
    analyze_fn,
    timeout: float | None,
    retries: int,
    backoff: float,
    fail_fast: bool,
    results: dict[int, "BenchmarkOutcome | FailedOutcome"],
    attempts: dict[int, int],
) -> None:
    """Fan *names* over a process pool with per-future fault isolation.

    Raises :class:`BrokenProcessPool` (after shutting the pool down) when
    the executor itself dies; the caller degrades to the serial path for
    everything still missing from *results*.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    pending: dict[Future, int] = {}

    def submit(i: int) -> None:
        attempts[i] = attempts.get(i, 0) + 1
        pending[pool.submit(_pool_task, analyze_fn, names[i], cache_dir, timeout)] = i

    try:
        for i in range(len(names)):
            submit(i)
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            stop = False
            for fut in done:
                i = pending.pop(fut)
                try:
                    results[i] = fut.result()
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    if attempts[i] <= retries:
                        time.sleep(_backoff_delay(backoff, attempts[i]))
                        submit(i)
                        continue
                    results[i] = failure_record(names[i], exc, attempts[i])
                    if fail_fast:
                        stop = True
            if stop:
                for fut in pending:
                    fut.cancel()
                pending.clear()
    finally:
        # A worker that outlived its timeout may still hold a slot; don't
        # block result delivery on it.
        pool.shutdown(wait=False, cancel_futures=True)


def analyze_registry(
    names: Sequence[str] | None = None,
    max_workers: int | None = None,
    cache_dir: str | None = None,
    parallel: bool = True,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    fail_fast: bool = False,
    analyze_fn: Callable[[str, str | None], BenchmarkOutcome] = analyze_one,
    engine: str = "compiled",
) -> list["BenchmarkOutcome | FailedOutcome"]:
    """Analyze registry benchmarks, optionally across worker processes.

    Results are returned in the order of *names* (registry order when None)
    whichever path runs.  ``parallel=False`` runs the identical per-program
    code in this process — the reference for equality testing.

    *engine* selects the execution engine for the instrumented runs; a
    non-default value is forwarded to *analyze_fn* as an ``engine`` keyword
    (custom ``analyze_fn`` callables that never see a non-default engine
    are unaffected).

    Fault tolerance: a program whose analysis raises or exceeds *timeout*
    seconds occupies its result slot as a :class:`FailedOutcome` after
    ``1 + retries`` attempts (exponential backoff, ``backoff * 2**n``
    seconds between runs); the rest of the sweep is unaffected.  With
    ``fail_fast=True`` the sweep stops at the first exhausted failure and
    returns only the entries resolved by then (still in *names* order).
    If the pool itself breaks mid-sweep, every unresolved program is re-run
    serially in this process — completed outcomes are kept either way.
    """
    if names is None:
        from repro.bench_programs.registry import all_benchmarks

        names = [spec.name for spec in all_benchmarks()]
    if not names:
        return []
    if engine != "compiled":
        # functools.partial of a top-level function stays picklable, so the
        # wrapped callable crosses the process-pool boundary intact.
        analyze_fn = functools.partial(analyze_fn, engine=engine)

    results: dict[int, BenchmarkOutcome | FailedOutcome] = {}
    attempts: dict[int, int] = {}
    if parallel:
        if max_workers is None:
            max_workers = default_max_workers(len(names))
        try:
            _analyze_parallel(
                names, max_workers, cache_dir, analyze_fn,
                timeout, retries, backoff, fail_fast, results, attempts,
            )
        except BrokenProcessPool:
            unresolved = [i for i in range(len(names)) if i not in results]
            _analyze_serial(
                names, unresolved, results, attempts, cache_dir,
                analyze_fn, timeout, retries, backoff, fail_fast,
            )
    else:
        _analyze_serial(
            names, range(len(names)), results, attempts, cache_dir,
            analyze_fn, timeout, retries, backoff, fail_fast,
        )
    return [results[i] for i in sorted(results)]
