"""Process-parallel registry analysis.

Table III re-runs the whole interpret → profile → detect → simulate stack
for every registry program; the runs are completely independent, so this
module fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Guarantees:

* **Deterministic ordering** — results come back in the order the names
  were given (registry order by default), independent of worker completion
  order (``Executor.map`` semantics).
* **Parallel ≡ serial** — each worker parses its program from source and
  calls the analysis engine directly, bypassing every in-process cache a
  forked child might inherit; the analysis itself is deterministic, and
  :class:`BenchmarkOutcome` carries the canonical profile digest so equality
  is checkable down to the serialized profile bytes.
* **Compact results** — workers return plain-data summaries (labels,
  pipeline coefficients, simulated speedups, digests, evidence counts), not
  multi-megabyte :class:`AnalysisResult` objects, keeping pickling off the
  critical path.
* **Versioned records** — outcomes serialize through
  :meth:`BenchmarkOutcome.to_dict`/``from_dict`` stamped with the analysis
  ``schema_version`` (see :mod:`repro.patterns.schema`), the same document
  convention the CLI's ``--json`` modes emit.

An optional shared profile cache directory lets workers reuse on-disk
profiles (writes are atomic, so concurrent workers are safe).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class BenchmarkOutcome:
    """Picklable summary of one benchmark's end-to-end analysis."""

    name: str
    suite: str
    loc: int
    label: str
    primary_share: float
    best_speedup: float
    best_threads: int
    #: one (loop_x, loop_y, a, b, efficiency) tuple per detected pipeline
    pipelines: tuple[tuple[int, int, float, float, float], ...]
    #: sha256 of the canonical profile JSON — byte-level profile identity
    profile_digest: str
    #: accepted/rejected candidate counts from the detection evidence trace
    evidence_accepted: int = 0
    evidence_rejected: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-compatible record (the analysis schema version)."""
        from repro.patterns.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "suite": self.suite,
            "loc": self.loc,
            "label": self.label,
            "primary_share": self.primary_share,
            "best_speedup": self.best_speedup,
            "best_threads": self.best_threads,
            "pipelines": [list(p) for p in self.pipelines],
            "profile_digest": self.profile_digest,
            "evidence_accepted": self.evidence_accepted,
            "evidence_rejected": self.evidence_rejected,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchmarkOutcome":
        """Rebuild an outcome from :meth:`to_dict`; rejects other versions."""
        from repro.patterns.schema import SCHEMA_VERSION

        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported outcome schema version {version!r}")
        return cls(
            name=data["name"],
            suite=data["suite"],
            loc=data["loc"],
            label=data["label"],
            primary_share=data["primary_share"],
            best_speedup=data["best_speedup"],
            best_threads=data["best_threads"],
            pipelines=tuple(tuple(p) for p in data["pipelines"]),
            profile_digest=data["profile_digest"],
            evidence_accepted=data.get("evidence_accepted", 0),
            evidence_rejected=data.get("evidence_rejected", 0),
        )


def outcome_from_analysis(spec, result, sim_outcome) -> BenchmarkOutcome:
    """Condense one benchmark's analysis + simulation into an outcome."""
    from repro.patterns.engine import primary_pattern_share, summarize_patterns
    from repro.profiling.serialize import profile_digest

    trace = result.trace
    return BenchmarkOutcome(
        name=spec.name,
        suite=spec.suite,
        loc=spec.loc,
        label=summarize_patterns(result),
        primary_share=primary_pattern_share(result),
        best_speedup=sim_outcome.best_speedup,
        best_threads=sim_outcome.best_threads,
        pipelines=tuple(
            (p.loop_x, p.loop_y, p.a, p.b, p.efficiency) for p in result.pipelines
        ),
        profile_digest=profile_digest(result.profile),
        evidence_accepted=len(trace.accepted()) if trace is not None else 0,
        evidence_rejected=len(trace.rejected()) if trace is not None else 0,
    )


def analyze_one(name: str, cache_dir: str | None = None) -> BenchmarkOutcome:
    """Analyze one registry benchmark from scratch; used as the pool worker.

    Deliberately avoids ``registry.analyze_benchmark`` (its ``lru_cache``
    would be inherited by forked workers and could mask real recomputation)
    and re-parses the program from its source text.
    """
    from repro.bench_programs.registry import get_benchmark
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.patterns.engine import analyze
    from repro.sim import plan_and_simulate

    spec = get_benchmark(name)
    program = parse_program(spec.source)
    validate_program(program)
    cache = None
    if cache_dir is not None:
        from repro.profiling.cache import ProfileCache

        cache = ProfileCache(root=cache_dir)
    result = analyze(
        program,
        spec.entry,
        spec.arg_sets(),
        hotspot_threshold=spec.hotspot_threshold,
        min_pairs=spec.min_pairs,
        cache=cache,
    )
    return outcome_from_analysis(spec, result, plan_and_simulate(result))


def analyze_registry(
    names: Sequence[str] | None = None,
    max_workers: int | None = None,
    cache_dir: str | None = None,
    parallel: bool = True,
) -> list[BenchmarkOutcome]:
    """Analyze registry benchmarks, optionally across worker processes.

    Results are returned in the order of *names* (registry order when None)
    whichever path runs.  ``parallel=False`` runs the identical per-program
    code in this process — the reference for equality testing.
    """
    if names is None:
        from repro.bench_programs.registry import all_benchmarks

        names = [spec.name for spec in all_benchmarks()]
    if not parallel:
        return [analyze_one(name, cache_dir) for name in names]
    if max_workers is None:
        max_workers = min(len(names), os.cpu_count() or 1) or 1
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(analyze_one, names, [cache_dir] * len(names)))
